//! Run one seeded mbTLS session through the network simulator with a
//! `JsonLinesSink` attached, validate every emitted line as JSON, and
//! print the trace to stdout.
//!
//! Used by `scripts/telemetry_smoke.sh` as the end-to-end check that
//! the telemetry pipeline produces well-formed, virtual-time-stamped
//! output.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, NetChain};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::time::Duration;
use mbtls_netsim::{FaultConfig, Network};
use mbtls_telemetry::{validate_json_line, JsonLinesSink, SharedSink};

/// A `Write` target the bin keeps a handle to after the sink is moved
/// into the shared telemetry layer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        Some(arg) => {
            let parsed = match arg.strip_prefix("0x").or_else(|| arg.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => arg.parse(),
            };
            match parsed {
                Ok(seed) => seed,
                Err(_) => {
                    eprintln!("usage: telemetry_trace [seed]  (decimal or 0x-prefixed hex)");
                    std::process::exit(2);
                }
            }
        }
        None => 0x7E1E,
    };

    let tb = Testbed::new(seed);
    let buf = SharedBuf::default();
    let sink = SharedSink::new(JsonLinesSink::new(buf.clone()));

    let mut client_cfg = tb.client_config();
    client_cfg.telemetry = Some(sink.clone());
    let mut server_cfg = tb.server_config();
    server_cfg.telemetry = Some(sink.clone());
    let mut mbox_cfg = tb.middlebox_config(&tb.mbox_code);
    mbox_cfg.telemetry = Some(sink.clone());

    let client = MbClientSession::new(
        Arc::new(client_cfg),
        "server.example",
        CryptoRng::from_seed(seed + 1),
    );
    let server = MbServerSession::new(Arc::new(server_cfg), CryptoRng::from_seed(seed + 2));
    let mb = Middlebox::new(mbox_cfg, CryptoRng::from_seed(seed + 3));
    let chain = Chain::new(Box::new(client), vec![Box::new(mb)], Box::new(server));

    let mut net = Network::new(seed);
    let latencies = [Duration::from_millis(10), Duration::from_millis(15)];
    let faults = [FaultConfig::none(), FaultConfig::none()];
    let mut nc = NetChain::new(&mut net, chain, &latencies, &faults);
    nc.set_telemetry(sink.clone());

    let timing = nc
        .run_session(b"GET / HTTP/1.1\r\n\r\n", 4096, Duration::from_secs(60))
        .expect("session completes");
    sink.flush();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        match validate_json_line(line) {
            Ok(_) => lines += 1,
            Err(e) => {
                eprintln!("line {}: invalid JSON ({e}): {line}", i + 1);
                std::process::exit(1);
            }
        }
        println!("{line}");
    }
    eprintln!(
        "telemetry_trace: seed={seed:#x} events={lines} handshake={:.1}ms transfer={:.1}ms — all lines valid JSON",
        timing.handshake.as_millis_f64(),
        timing.transfer.as_millis_f64(),
    );
}

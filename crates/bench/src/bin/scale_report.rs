//! Emit `BENCH_scale.json` — the session-host capacity regression
//! artifact.
//!
//! Usage:
//!
//! ```text
//! scale_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs tiny fleets (sub-second) so `scripts/check.sh` can
//! gate on the harness working end to end; numbers from a smoke run
//! are noisy and flagged `"smoke": true` in the JSON. Full runs
//! (`scripts/bench_report.sh`) measure fleets of 10 000, 100 000, and
//! 1 000 000 sessions, each at 1/2/4/8 shards (the max-shard-wall
//! cores-vs-throughput model; see `scale.rs`). A full run takes
//! hours, so the artifact is rewritten after every completed fleet
//! size — a partially-written file is always valid JSON covering the
//! tiers measured so far.
//!
//! The binary installs a counting global allocator so the
//! steady-state allocation metric measures the real shard loop; the
//! library crate stays allocator-agnostic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mbtls_bench::scale::{
    bench_scale_point_over, determinism_probe, ScaleReport, SteadyStateShard, SHARD_CURVE,
};

/// `System` wrapped with an allocation counter. Only counts calls to
/// `alloc`/`realloc` — frees are irrelevant to the "allocations per
/// record" metric.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations per application record over `exchanges` steady-state
/// round trips of a warmed-up single-session shard `k` (each exchange
/// is two records: one request, one response).
fn measure_allocs_per_record(k: u16, exchanges: u64) -> f64 {
    let mut steady = SteadyStateShard::warmed_up(k, 8);
    // One extra pump after warm-up so any lazily-grown buffer
    // (first-use capacity bumps) settles before counting.
    steady.pump_exchanges(2);
    let before = alloc_count();
    steady.pump_exchanges(exchanges);
    (alloc_count() - before) as f64 / (exchanges * 2) as f64
}

fn write_artifact(out_path: &str, report: &ScaleReport) {
    let json = report.to_json();
    std::fs::write(out_path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: scale_report [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    // Fleet sizes: smoke proves the harness end to end; full runs
    // measure the capacity curve the ISSUE asks for. Smoke keeps a
    // shortened shard curve that still crosses the 4-shard point the
    // speedup gate reads.
    let fleets: &[usize] = if smoke { &[8, 24] } else { &[10_000, 100_000, 1_000_000] };
    let curve: &[u16] = if smoke { &[1, 2, 4] } else { SHARD_CURVE };
    let determinism_sessions = if smoke { 16 } else { 10_000 };
    let determinism_shards: u16 = 4;
    let alloc_exchanges: u64 = if smoke { 8 } else { 256 };
    let alloc_shards: u16 = 4;
    let seed = 0xC0_FFEE;

    // Fast metrics first, so even the first artifact write carries
    // the allocation and determinism verdicts.
    let allocs_per_record_per_shard: Vec<f64> =
        (0..alloc_shards).map(|k| measure_allocs_per_record(k, alloc_exchanges)).collect();
    eprintln!(
        "allocs/record per shard: {:?}",
        allocs_per_record_per_shard.iter().map(|a| format!("{a:.3}")).collect::<Vec<_>>()
    );
    let (_, determinism_identical) =
        determinism_probe(determinism_sessions, determinism_shards, seed);
    eprintln!(
        "determinism ({determinism_sessions} sessions, {determinism_shards} shards): {}",
        if determinism_identical { "bit-identical" } else { "DIVERGED" }
    );

    let mut report = ScaleReport {
        smoke,
        points: Vec::new(),
        allocs_per_record_per_shard,
        determinism_seed: seed,
        determinism_sessions,
        determinism_shards,
        determinism_identical,
    };
    write_artifact(&out_path, &report);

    for &n in fleets {
        eprintln!("measuring fleet n={n} over shard curve {curve:?}...");
        report.points.push(bench_scale_point_over(n, seed, curve));
        // Rewrite after every tier: a multi-hour full run leaves a
        // valid artifact behind even if interrupted.
        write_artifact(&out_path, &report);
        eprintln!("wrote {out_path} ({} tiers)", report.points.len());
    }

    println!("{}", report.to_json());
    eprintln!("wrote {out_path}");
}

//! Emit `BENCH_scale.json` — the session-host capacity regression
//! artifact.
//!
//! Usage:
//!
//! ```text
//! scale_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs tiny fleets (sub-second) so `scripts/check.sh` can
//! gate on the harness working end to end; numbers from a smoke run
//! are noisy and flagged `"smoke": true` in the JSON. Full runs
//! (`scripts/bench_report.sh`) measure fleets of 100, 1 000, and
//! 10 000 sessions.
//!
//! The binary installs a counting global allocator so the
//! steady-state allocation metric measures the real host loop; the
//! library crate stays allocator-agnostic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mbtls_bench::scale::{
    bench_scale_point, determinism_probe, ScaleReport, SteadyStateHost,
};

/// `System` wrapped with an allocation counter. Only counts calls to
/// `alloc`/`realloc` — frees are irrelevant to the "allocations per
/// record" metric.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations per application record over `exchanges` steady-state
/// round trips of the warmed-up single-session host (each exchange is
/// two records: one request, one response).
fn measure_allocs_per_record(exchanges: u64) -> f64 {
    let mut steady = SteadyStateHost::warmed_up(8);
    // One extra pump after warm-up so any lazily-grown buffer
    // (first-use capacity bumps) settles before counting.
    steady.pump_exchanges(2);
    let before = alloc_count();
    steady.pump_exchanges(exchanges);
    (alloc_count() - before) as f64 / (exchanges * 2) as f64
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: scale_report [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    // Fleet sizes: smoke proves the harness end to end; full runs
    // measure the capacity curve the ISSUE asks for.
    let fleets: &[usize] = if smoke { &[8, 24] } else { &[100, 1_000, 10_000] };
    let determinism_sessions = if smoke { 8 } else { 100 };
    let alloc_exchanges: u64 = if smoke { 8 } else { 256 };
    let seed = 0xC0_FFEE;

    let points = fleets.iter().map(|&n| bench_scale_point(n, seed)).collect();
    let allocs_per_record_steady = measure_allocs_per_record(alloc_exchanges);
    let (_, determinism_identical) = determinism_probe(determinism_sessions, seed);

    let report = ScaleReport {
        smoke,
        points,
        allocs_per_record_steady,
        determinism_seed: seed,
        determinism_sessions,
        determinism_identical,
    };

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("wrote {out_path}");
}

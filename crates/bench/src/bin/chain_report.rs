//! Emit `BENCH_chain.json` — the read-only fast path and
//! service-function-chain performance artifact.
//!
//! Usage:
//!
//! ```text
//! chain_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs a tiny measurement budget (sub-second) so
//! `scripts/check.sh` can gate on the harness working end to end;
//! numbers from a smoke run are noisy and flagged `"smoke": true` in
//! the JSON. Full runs (`scripts/bench_report.sh`) use a budget large
//! enough for stable throughput figures.
//!
//! The binary installs a counting global allocator so the read-only
//! steady-state metric measures the real forward path; the library
//! crate stays allocator-agnostic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mbtls_bench::chain::{
    bench_amortized, bench_chains, bench_per_hop, ChainReport, SteadyStateReadOnly,
};
use mbtls_bench::report::RECORD_LEN;

/// `System` wrapped with an allocation counter. Only counts calls to
/// `alloc`/`realloc` — frees are irrelevant to the "allocations per
/// record" metric.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations per record through a read-only middlebox on aliased
/// keys at steady state. The fast path touches only reused buffers,
/// so this must come out 0.
fn measure_read_only_allocs(records: usize) -> f64 {
    let mut pipeline = SteadyStateReadOnly::warmed_up();
    // One extra pump after warm-up so any lazily-grown buffer
    // (first-use capacity bumps) settles before counting.
    pipeline.pump(2);
    let before = alloc_count();
    pipeline.pump(records);
    (alloc_count() - before) as f64 / records as f64
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_chain.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chain_report [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    // Measurement budgets: smoke proves the harness; full runs give
    // stable numbers. Chain runs are bounded by handshake cost, so
    // the exchange count stays modest even in full mode.
    let per_hop_budget = if smoke { 4 * RECORD_LEN } else { 48 * 1024 * 1024 };
    let exchanges = if smoke { 2 } else { 64 };
    let alloc_records = if smoke { 4 } else { 64 };

    let per_hop = bench_per_hop(per_hop_budget);
    let read_only_speedup = {
        let get = |name: &str| {
            per_hop
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.mb_per_s)
                .unwrap_or(0.0)
        };
        let reseal = get("middlebox_open_reseal");
        if reseal > 0.0 {
            get("middlebox_read_only_forward") / reseal
        } else {
            0.0
        }
    };
    let (chains, determinism) = bench_chains(exchanges, 0xC8A1_2026);
    let (amortized, amortized_det) = bench_amortized(smoke, 0xC8A1_2027);
    let determinism = if determinism == "identical" && amortized_det == "identical" {
        determinism
    } else {
        String::from("diverged")
    };
    let allocs = measure_read_only_allocs(alloc_records);

    let report = ChainReport {
        smoke,
        record_len: RECORD_LEN,
        per_hop,
        read_only_speedup,
        chains,
        amortized,
        allocs_per_record_read_only: allocs,
        determinism,
    };

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("wrote {out_path}");
}

//! Ablation — Encapsulated-record subchannel multiplexing vs separate
//! secondary TCP connections (the paper's P7 design argument, §3.4:
//! multiplexing "(1) reduces TCP state, (2) keeps all handshake
//! messages on the same path, and (3) keeps client-side middlebox
//! discovery from adding a round trip").
//!
//! The multiplexed variant is the real protocol measured in virtual
//! time; the separate-connection variant adds the TCP setup round
//! trip a fresh client→middlebox connection would cost, per
//! middlebox, plus the extra connection state.
//!
//! Run: `cargo run --release -p mbtls-bench --bin ablation_subchannel`

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, NetChain, Relay};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::time::Duration;
use mbtls_netsim::{FaultConfig, Network};

fn handshake_ms(n_mboxes: usize, link_ms: u64, seed: u64) -> f64 {
    let tb = Testbed::new(seed);
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(seed + 1),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(seed + 2));
    let mut middles: Vec<Box<dyn Relay>> = Vec::new();
    for i in 0..n_mboxes {
        middles.push(Box::new(Middlebox::new(
            tb.middlebox_config(&tb.mbox_code),
            CryptoRng::from_seed(seed + 10 + i as u64),
        )));
    }
    let chain = Chain::new(Box::new(client), middles, Box::new(server));
    let n_links = n_mboxes + 1;
    let latencies = vec![Duration::from_millis(link_ms); n_links];
    let faults = vec![FaultConfig::none(); n_links];
    let mut net = Network::new(seed);
    let mut nc = NetChain::new(&mut net, chain, &latencies, &faults);
    let timing = nc
        .run_session(b"x", 16, Duration::from_secs(60))
        .expect("session");
    timing.handshake.as_millis_f64()
}

fn main() {
    println!("Ablation: Encapsulated subchannels vs separate secondary TCP connections\n");
    println!(
        "{:<8} {:>16} {:>20} {:>12} {:>14}",
        "mboxes", "multiplexed (ms)", "separate conns (ms)", "added RTTs", "TCP conns"
    );
    let link_ms = 20u64;
    for n in 0..=3usize {
        let multiplexed = handshake_ms(n, link_ms, 0xAB1A + n as u64 * 101);
        // Separate connections: each client-side middlebox needs its
        // own TCP connection from the client before its secondary
        // handshake can start, serialized after discovery — one extra
        // client↔middlebox round trip per box (paper §3.4 point 3).
        let extra_rtt_ms = (2 * link_ms * n as u64) as f64;
        let separate = multiplexed + extra_rtt_ms;
        // TCP state: multiplexed = path links only; separate adds one
        // end-to-end connection per middlebox on both the client and
        // the middlebox.
        let conns_multiplexed = n + 1;
        let conns_separate = n + 1 + n;
        println!(
            "{:<8} {:>16.1} {:>20.1} {:>12} {:>10} vs {}",
            n,
            multiplexed,
            separate,
            n,
            conns_multiplexed,
            conns_separate
        );
    }
    println!("\nmultiplexing keeps the handshake at its TLS shape regardless of middlebox");
    println!("count; separate connections pay one extra RTT and one extra TCP connection");
    println!("per discovered middlebox.");
}

//! Figure 6 — mbTLS vs TLS session latency across inter-datacenter
//! paths.
//!
//! Twelve client-middlebox-server permutations over four regions; for
//! each path we measure (in deterministic virtual time) the handshake
//! and data-transfer durations for plain TLS through a dumb relay and
//! for mbTLS with the middlebox joining the session.
//!
//! Timings are recovered from the telemetry trace's session-phase
//! events (`SessionStart` / `SessionHandshakeDone` /
//! `SessionTransferDone`), all stamped with virtual time.

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::baseline::PureRelay;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, LegacyClient, LegacyServer, NetChain, SessionTiming};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::profiles::{figure6_paths, interdc_latency, Region};
use mbtls_netsim::time::Duration;
use mbtls_netsim::{FaultConfig, Network};
use mbtls_telemetry::Recorder;
use mbtls_tls::{ClientConnection, ServerConnection};

/// One measured path.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// "client-mbox-server" label, e.g. `"usw-use-uk"`.
    pub path: String,
    /// Plain-TLS timing (middlebox relays).
    pub tls: SessionTiming,
    /// mbTLS timing (middlebox joins).
    pub mbtls: SessionTiming,
}

/// The request/response sizes used for the "small object" fetch.
pub const REQUEST: &[u8] = b"GET /object HTTP/1.1\r\nHost: server.example\r\n\r\n";
/// Response size (bytes).
pub const RESPONSE_LEN: usize = 10 * 1024;

fn one_session(
    tb: &Testbed,
    mbtls: bool,
    c: Region,
    m: Region,
    s: Region,
    seed: u64,
) -> SessionTiming {
    let latencies = [interdc_latency(c, m), interdc_latency(m, s)];
    let faults = [FaultConfig::none(), FaultConfig::none()];
    let mut net = Network::new(seed);
    let chain = if mbtls {
        let client = MbClientSession::new(
            Arc::new(tb.client_config()),
            "server.example",
            CryptoRng::from_seed(seed + 1),
        );
        let server =
            MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(seed + 2));
        let mb = Middlebox::new(
            tb.middlebox_config(&tb.mbox_code),
            CryptoRng::from_seed(seed + 3),
        );
        Chain::new(Box::new(client), vec![Box::new(mb)], Box::new(server))
    } else {
        let mut rng = CryptoRng::from_seed(seed + 1);
        let client = LegacyClient::new(
            ClientConnection::new(
                Arc::new(mbtls_tls::config::ClientConfig::new(tb.server_trust.clone())),
                "server.example",
                &mut rng,
            ),
            rng.fork(),
        );
        let server = LegacyServer::new(
            ServerConnection::new(Arc::new(mbtls_tls::config::ServerConfig::new(
                tb.server_key.clone(),
                [6u8; 32],
            ))),
            rng.fork(),
        );
        Chain::new(
            Box::new(client),
            vec![Box::new(PureRelay::new())],
            Box::new(server),
        )
    };
    let recorder = Recorder::new();
    let mut nc = NetChain::new(&mut net, chain, &latencies, &faults);
    nc.set_telemetry(recorder.sink());
    // Charge the middlebox its handshake computation per flush: the
    // mbTLS middlebox performs a real TLS-server handshake (~0.7 ms
    // in Figure 5); the dumb relay does approximately nothing. This
    // is the source of the paper's +0.7% handshake inflation.
    nc.set_compute_delay(1, if mbtls {
        Duration::from_micros(700)
    } else {
        Duration::from_micros(5)
    });
    nc.run_session(REQUEST, RESPONSE_LEN, Duration::from_secs(120))
        .expect("session completes");
    // The returned timing is also derivable from the trace; use the
    // trace so the figure consumes telemetry end to end.
    SessionTiming::from_trace(&recorder.snapshot()).expect("trace carries session phases")
}

/// Run the full Figure 6 sweep. Virtual time is deterministic, so a
/// single trial per path reproduces the paper's means exactly; the
/// paper's error bars come from real-network noise our simulator does
/// not model.
pub fn run() -> Vec<PathResult> {
    let tb = Testbed::new(0xF16);
    figure6_paths()
        .into_iter()
        .enumerate()
        .map(|(i, (path, c, m, s))| PathResult {
            tls: one_session(&tb, false, c, m, s, 0x600 + i as u64 * 17),
            mbtls: one_session(&tb, true, c, m, s, 0x900 + i as u64 * 17),
            path,
        })
        .collect()
}

/// Mean relative handshake inflation of mbTLS over TLS across paths.
pub fn mean_handshake_inflation(results: &[PathResult]) -> f64 {
    let sum: f64 = results
        .iter()
        .map(|r| {
            let tls = r.tls.handshake.0 as f64;
            let mbtls = r.mbtls.handshake.0 as f64;
            (mbtls - tls) / tls
        })
        .sum();
    sum / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_path_works_both_protocols() {
        let tb = Testbed::new(1);
        let tls = one_session(&tb, false, Region::UsWest, Region::UsEast, Region::Uk, 10);
        let mbtls = one_session(&tb, true, Region::UsWest, Region::UsEast, Region::Uk, 20);
        // usw→use (35ms) + use→uk (40ms) = 75ms one-way. Per-hop TCP
        // setup is optimistic/concurrent (the mbTLS middlebox splits
        // the connection as the SYN passes), so the handshake costs
        // the first link's TCP round trip (2×35ms) plus the TLS 1.2
        // two round trips end-to-end (4×75ms) = 370ms.
        let expect_ms = 370.0;
        assert!((tls.handshake.as_millis_f64() - expect_ms).abs() < 30.0, "{tls:?}");
        // mbTLS within ~2% of TLS (the paper: +0.7% average), and
        // strictly above zero now that middlebox computation is
        // charged in virtual time.
        let inflation =
            (mbtls.handshake.0 as f64 - tls.handshake.0 as f64) / tls.handshake.0 as f64;
        assert!(inflation > 0.0 && inflation < 0.02, "inflation {inflation}");
        // Transfers complete.
        assert!(tls.transfer > Duration::ZERO);
        assert!(mbtls.transfer > Duration::ZERO);
    }
}

//! Figure 7 — middlebox throughput with/without encryption and
//! with/without SGX, across buffer sizes.
//!
//! Two complementary measurements:
//!
//! * [`model_sweep`] — the calibrated SGX cost model
//!   ([`mbtls_sgx::SgxCostModel`]) evaluated over the paper's buffer
//!   sizes; this reproduces the figure's absolute shape (plateaus,
//!   crossovers, enclave-vs-native deltas).
//! * [`measured_crypto_throughput`] — real AES-GCM open+seal
//!   throughput of this workspace's data plane at each buffer size,
//!   showing the record-crypto cost component with actual cycles.

use std::time::Instant;

use mbtls_core::dataplane::{fresh_hop_keys, FlowDirection, MiddleboxDataPlane};
use mbtls_crypto::rng::CryptoRng;
use mbtls_sgx::cost::{DataPathConfig, SgxCostModel, SyscallMode};
use mbtls_tls::record::{ContentType, DirectionState};
use mbtls_tls::suites::CipherSuite;

/// The paper's buffer-size sweep.
pub const BUFFER_SIZES: [usize; 6] = [512, 1024, 2048, 4096, 8192, 12 * 1024];

/// One row of the model sweep.
#[derive(Debug, Clone, Copy)]
pub struct ModelRow {
    /// Chunk size in bytes.
    pub buffer: usize,
    /// Forwarding, no enclave (Gbps).
    pub fwd_native: f64,
    /// Forwarding, enclave.
    pub fwd_enclave: f64,
    /// Decrypt+re-encrypt, no enclave.
    pub enc_native: f64,
    /// Decrypt+re-encrypt, enclave.
    pub enc_enclave: f64,
}

/// Evaluate the cost model over the sweep.
pub fn model_sweep() -> Vec<ModelRow> {
    let model = SgxCostModel::default();
    BUFFER_SIZES
        .iter()
        .map(|&buffer| ModelRow {
            buffer,
            fwd_native: model.throughput_gbps(
                buffer,
                DataPathConfig { reencrypt: false, enclave: false },
            ),
            fwd_enclave: model.throughput_gbps(
                buffer,
                DataPathConfig { reencrypt: false, enclave: true },
            ),
            enc_native: model.throughput_gbps(
                buffer,
                DataPathConfig { reencrypt: true, enclave: false },
            ),
            enc_enclave: model.throughput_gbps(
                buffer,
                DataPathConfig { reencrypt: true, enclave: true },
            ),
        })
        .collect()
}

/// The SCONE-style syscall micro-comparison the paper discusses
/// (§5.3): latency of a small-payload syscall under each strategy.
pub fn syscall_comparison(payload: usize) -> (f64, f64, f64) {
    let model = SgxCostModel::default();
    (
        model.syscall_latency_ns(payload, SyscallMode::Native),
        model.syscall_latency_ns(payload, SyscallMode::SyncEnclave),
        model.syscall_latency_ns(payload, SyscallMode::AsyncEnclave),
    )
}

/// Measure the real record decrypt+re-encrypt throughput of this
/// workspace's middlebox data plane for one chunk size, in Gbit/s.
/// `total_bytes` controls the measurement length.
pub fn measured_crypto_throughput(chunk: usize, total_bytes: usize) -> f64 {
    let mut rng = CryptoRng::from_seed(0xF17);
    let left = fresh_hop_keys(CipherSuite::EcdheAes256GcmSha384, &mut rng);
    let right = fresh_hop_keys(CipherSuite::EcdheAes256GcmSha384, &mut rng);
    let mut sender = left.seal_client_to_server().expect("keys");
    let mut mbox = MiddleboxDataPlane::new(&left, &right).expect("dataplane");

    let payload = vec![0xA5u8; chunk];
    let n_chunks = (total_bytes / chunk).max(1);
    // Pre-encrypt the sender records so only middlebox work is timed.
    let mut records = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        records.push(
            sender
                .seal_record(ContentType::ApplicationData, &payload)
                .expect("seal"),
        );
    }

    let t0 = Instant::now();
    for rec in &records {
        mbox.feed(FlowDirection::ClientToServer, rec, |_, _p| {})
            .expect("process");
        let _ = mbox.take_toward_server();
    }
    let elapsed = t0.elapsed();
    (n_chunks * chunk) as f64 * 8.0 / elapsed.as_nanos() as f64
}

/// Measure raw one-directional AES-GCM record sealing throughput
/// (Gbit/s) — the encryption cost floor.
pub fn measured_seal_throughput(chunk: usize, total_bytes: usize) -> f64 {
    let mut rng = CryptoRng::from_seed(0xF18);
    let keys = fresh_hop_keys(CipherSuite::EcdheAes256GcmSha384, &mut rng);
    let mut tx: DirectionState = keys.seal_client_to_server().expect("keys");
    let payload = vec![0x5Au8; chunk];
    let n_chunks = (total_bytes / chunk).max(1);
    let t0 = Instant::now();
    for _ in 0..n_chunks {
        let _ = tx
            .seal_record(ContentType::ApplicationData, &payload)
            .expect("seal");
    }
    let elapsed = t0.elapsed();
    (n_chunks * chunk) as f64 * 8.0 / elapsed.as_nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sweep_has_paper_shape() {
        let rows = model_sweep();
        assert_eq!(rows.len(), BUFFER_SIZES.len());
        let last = rows.last().unwrap();
        // Forward > encrypt at the plateau.
        assert!(last.fwd_native > last.enc_native);
        // Enclave within 6% of native everywhere.
        for row in &rows {
            assert!((row.fwd_native - row.fwd_enclave) / row.fwd_native < 0.06);
            assert!((row.enc_native - row.enc_enclave) / row.enc_native < 0.06);
        }
        // Monotone growth with buffer size.
        for pair in rows.windows(2) {
            assert!(pair[1].enc_enclave > pair[0].enc_enclave);
        }
    }

    #[test]
    fn measured_crypto_runs() {
        // Tiny volume to keep tests fast; the binary uses more.
        let gbps = measured_crypto_throughput(4096, 1 << 20);
        assert!(gbps > 0.0);
        let seal = measured_seal_throughput(4096, 1 << 20);
        assert!(seal > 0.0);
    }

    #[test]
    fn syscall_comparison_ordering() {
        let (native, sync, asynch) = syscall_comparison(64);
        assert!(sync > asynch, "async must beat sync from the enclave");
        assert!(asynch >= native, "async still costs at least native");
    }
}

//! The `BENCH_dataplane.json` regression reporter.
//!
//! Measures the data-plane fast path end to end — bulk AEAD
//! throughput for both GCM implementations, record-layer throughput
//! per hop, and a steady-state loop the `bench_report` binary wraps
//! with a counting allocator to prove the per-record path is
//! allocation-free. The binary serialises a [`DataplaneReport`] to
//! `BENCH_dataplane.json`; `scripts/check.sh` runs it in `--smoke`
//! mode as a regression gate. See DESIGN.md §"Data-plane fast path"
//! for how to read the numbers.

use std::time::Instant;

use mbtls_core::dataplane::{
    fresh_hop_keys, EndpointDataPlane, FlowDirection, MiddleboxDataPlane,
};
use mbtls_crypto::gcm::{AesGcm, AesGcmRef};
use mbtls_crypto::rng::CryptoRng;
use mbtls_tls::suites::CipherSuite;

/// Message size for the bulk-primitive benchmarks. 16 KiB is the TLS
/// maximum record payload and the size the ISSUE's speedup target is
/// defined at.
pub const BULK_LEN: usize = 16 * 1024;

/// Record payload used on the record path (just under the TLS
/// fragment ceiling so one send is one record).
pub const RECORD_LEN: usize = 16 * 1024 - 64;

/// One measured throughput number.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Stable snake_case metric name (JSON key).
    pub name: &'static str,
    /// Megabytes (1e6 bytes) of plaintext processed per second.
    pub mb_per_s: f64,
}

/// Everything that goes into `BENCH_dataplane.json`.
#[derive(Debug, Clone)]
pub struct DataplaneReport {
    /// True when produced by a `--smoke` run (numbers are noisy and
    /// only prove the harness works).
    pub smoke: bool,
    /// Bulk message size the primitive numbers were measured at.
    pub bulk_len: usize,
    /// Record payload size for the per-hop numbers.
    pub record_len: usize,
    /// Primitive and record-path throughputs.
    pub throughputs: Vec<Throughput>,
    /// Heap allocations per record on the endpoint seal path at
    /// steady state (counted by the binary's global allocator).
    pub allocs_per_record_endpoint: f64,
    /// Heap allocations per record on the middlebox open+reseal path.
    pub allocs_per_record_middlebox: f64,
}

impl DataplaneReport {
    /// Render as pretty-printed JSON. Hand-rolled (the workspace has
    /// no serde) but round-trips through any JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str(&format!("  \"bulk_len\": {},\n", self.bulk_len));
        out.push_str(&format!("  \"record_len\": {},\n", self.record_len));
        out.push_str("  \"throughput_mb_s\": {\n");
        for (i, t) in self.throughputs.iter().enumerate() {
            let comma = if i + 1 == self.throughputs.len() { "" } else { "," };
            out.push_str(&format!("    \"{}\": {:.2}{}\n", t.name, t.mb_per_s, comma));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"allocs_per_record_endpoint\": {:.3},\n",
            self.allocs_per_record_endpoint
        ));
        out.push_str(&format!(
            "  \"allocs_per_record_middlebox\": {:.3}\n",
            self.allocs_per_record_middlebox
        ));
        out.push('}');
        out
    }
}

fn mb_per_s(bytes: usize, elapsed: std::time::Duration) -> f64 {
    bytes as f64 / 1e6 / elapsed.as_secs_f64()
}

/// Bulk AEAD throughput for the bitsliced fast path and the reference
/// oracle, seal and open, at `BULK_LEN`-byte messages. `total_bytes`
/// is the measurement budget per metric.
pub fn bench_primitives(total_bytes: usize) -> Vec<Throughput> {
    let mut rng = CryptoRng::from_seed(0xBE9C);
    let mut key = [0u8; 32];
    rng.fill(&mut key);
    let fast = AesGcm::new(&key).expect("key");
    let slow = AesGcmRef::new(&key).expect("key");
    let nonce = [0x24u8; 12];
    let aad = [0u8; 13];
    let iters = (total_bytes / BULK_LEN).max(1);
    let warmup = (iters / 16).max(1);

    let mut out = Vec::new();

    // Fast-path seal: in place over a reused buffer, like the record
    // layer drives it. Each timed loop is preceded by an untimed
    // warm-up so the first metric doesn't absorb cold caches and
    // frequency ramp-up.
    let mut buf = vec![0u8; BULK_LEN];
    rng.fill(&mut buf);
    for _ in 0..warmup {
        let _tag = fast.seal_in_place(&nonce, &aad, &mut buf).expect("seal");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let _tag = fast.seal_in_place(&nonce, &aad, &mut buf).expect("seal");
    }
    out.push(Throughput {
        name: "aes_gcm_bitsliced_seal",
        mb_per_s: mb_per_s(iters * BULK_LEN, t0.elapsed()),
    });

    // Fast-path open: seal once, then repeatedly verify+decrypt a
    // scratch copy (decrypting restores the plaintext, so re-copy the
    // ciphertext each round; the copy cost is ~1% of the crypto).
    let mut ct = vec![0u8; BULK_LEN];
    rng.fill(&mut ct);
    let tag = fast.seal_in_place(&nonce, &aad, &mut ct).expect("seal");
    let mut scratch = vec![0u8; BULK_LEN];
    for _ in 0..warmup {
        scratch.copy_from_slice(&ct);
        fast.open_in_place(&nonce, &aad, &mut scratch, &tag).expect("open");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        scratch.copy_from_slice(&ct);
        fast.open_in_place(&nonce, &aad, &mut scratch, &tag).expect("open");
    }
    out.push(Throughput {
        name: "aes_gcm_bitsliced_open",
        mb_per_s: mb_per_s(iters * BULK_LEN, t0.elapsed()),
    });

    // Reference oracle seal, for the speedup ratio in the report.
    let mut pt = vec![0u8; BULK_LEN];
    rng.fill(&mut pt);
    for _ in 0..warmup {
        let _sealed = slow.seal(&nonce, &aad, &pt).expect("seal");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let _sealed = slow.seal(&nonce, &aad, &pt).expect("seal");
    }
    out.push(Throughput {
        name: "aes_gcm_reference_seal",
        mb_per_s: mb_per_s(iters * BULK_LEN, t0.elapsed()),
    });

    out
}

/// Record-path throughput per hop: endpoint seal (client encrypting
/// records) and middlebox forward (open + reseal). `total_bytes` is
/// the plaintext budget per metric.
pub fn bench_record_path(total_bytes: usize) -> Vec<Throughput> {
    let mut rng = CryptoRng::from_seed(0xF0B7);
    let suite = CipherSuite::EcdheAes256GcmSha384;
    let left = fresh_hop_keys(suite, &mut rng);
    let right = fresh_hop_keys(suite, &mut rng);
    let payload = vec![0xA5u8; RECORD_LEN];
    let iters = (total_bytes / RECORD_LEN).max(1);
    let warmup = (iters / 16).max(1);

    let mut out = Vec::new();

    // Endpoint seal path: send() into the internal wire buffer, then
    // drain it into a reused Vec.
    let mut client = EndpointDataPlane::for_client(&left).expect("keys");
    let mut wire = Vec::new();
    for _ in 0..warmup {
        client.send(&payload).expect("send");
        wire.clear();
        client.drain_outgoing_into(&mut wire);
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        client.send(&payload).expect("send");
        wire.clear();
        client.drain_outgoing_into(&mut wire);
    }
    out.push(Throughput {
        name: "endpoint_seal_record",
        mb_per_s: mb_per_s(iters * RECORD_LEN, t0.elapsed()),
    });

    // Middlebox forward path: one pre-sealed record opened and
    // resealed per iteration, draining into a reused Vec. Records
    // must be sealed fresh each iteration (sequence numbers), so a
    // sender runs in the loop; its cost is subtracted structurally by
    // reporting the endpoint number separately.
    let mut sender = EndpointDataPlane::for_client(&left).expect("keys");
    let mut mbox = MiddleboxDataPlane::new(&left, &right).expect("keys");
    let mut fwd = Vec::new();
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        sender.send(&payload).expect("send");
        wire.clear();
        sender.drain_outgoing_into(&mut wire);
        let t0 = Instant::now();
        mbox.feed(FlowDirection::ClientToServer, &wire, |_, _p| {})
            .expect("forward");
        fwd.clear();
        mbox.drain_toward_server_into(&mut fwd);
        total += t0.elapsed();
    }
    out.push(Throughput {
        name: "middlebox_forward_record",
        mb_per_s: mb_per_s(iters * RECORD_LEN, total),
    });

    out
}

/// A warmed-up client → server pipeline (no middlebox) whose buffers
/// have reached steady-state capacity. The `bench_report` binary
/// snapshots its allocation counter around [`Self::pump`] to count
/// endpoint allocations per record.
pub struct SteadyStateEndpoint {
    client: EndpointDataPlane,
    server: EndpointDataPlane,
    payload: Vec<u8>,
    wire: Vec<u8>,
    plain: Vec<u8>,
}

impl SteadyStateEndpoint {
    /// Build and warm up until buffer capacities stop growing.
    pub fn warmed_up() -> Self {
        let mut rng = CryptoRng::from_seed(0xA111);
        let suite = CipherSuite::EcdheAes256GcmSha384;
        let hop = fresh_hop_keys(suite, &mut rng);
        let mut pipeline = SteadyStateEndpoint {
            client: EndpointDataPlane::for_client(&hop).expect("keys"),
            server: EndpointDataPlane::for_server(&hop).expect("keys"),
            payload: vec![0x5Au8; RECORD_LEN],
            wire: Vec::new(),
            plain: Vec::new(),
        };
        for _ in 0..8 {
            pipeline.pump(1);
        }
        pipeline
    }

    /// Seal and deliver `records` full-size records through reused
    /// buffers.
    pub fn pump(&mut self, records: usize) {
        for _ in 0..records {
            self.client.send(&self.payload).expect("send");
            self.wire.clear();
            self.client.drain_outgoing_into(&mut self.wire);
            self.server.feed(&self.wire).expect("deliver");
            self.plain.clear();
            self.server.drain_plaintext_into(&mut self.plain);
            assert_eq!(self.plain.len(), RECORD_LEN, "record did not round-trip");
        }
    }
}

/// A warmed-up client → middlebox → server pipeline whose buffers
/// have reached their steady-state capacities. The `bench_report`
/// binary snapshots its allocation counter around [`Self::pump`] to
/// count allocations per record.
pub struct SteadyStatePipeline {
    client: EndpointDataPlane,
    mbox: MiddleboxDataPlane,
    server: EndpointDataPlane,
    payload: Vec<u8>,
    wire: Vec<u8>,
    fwd: Vec<u8>,
    plain: Vec<u8>,
}

impl SteadyStatePipeline {
    /// Build the pipeline and run enough records through it for every
    /// internal buffer to reach its final capacity.
    pub fn warmed_up() -> Self {
        let mut rng = CryptoRng::from_seed(0xA110);
        let suite = CipherSuite::EcdheAes256GcmSha384;
        let left = fresh_hop_keys(suite, &mut rng);
        let right = fresh_hop_keys(suite, &mut rng);
        let mut pipeline = SteadyStatePipeline {
            client: EndpointDataPlane::for_client(&left).expect("keys"),
            mbox: MiddleboxDataPlane::new(&left, &right).expect("keys"),
            server: EndpointDataPlane::for_server(&right).expect("keys"),
            payload: vec![0x5Au8; RECORD_LEN],
            wire: Vec::new(),
            fwd: Vec::new(),
            plain: Vec::new(),
        };
        for _ in 0..8 {
            pipeline.pump(1);
        }
        pipeline
    }

    /// Push `records` full-size records client → middlebox → server
    /// and drain the server's plaintext, all through reused buffers.
    pub fn pump(&mut self, records: usize) {
        for _ in 0..records {
            self.client.send(&self.payload).expect("send");
            self.wire.clear();
            self.client.drain_outgoing_into(&mut self.wire);
            self.mbox
                .feed(FlowDirection::ClientToServer, &self.wire, |_, _p| {})
                .expect("forward");
            self.fwd.clear();
            self.mbox.drain_toward_server_into(&mut self.fwd);
            self.server.feed(&self.fwd).expect("deliver");
            self.plain.clear();
            self.server.drain_plaintext_into(&mut self.plain);
            assert_eq!(self.plain.len(), RECORD_LEN, "record did not round-trip");
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_valid_json_shape() {
        let mut throughputs = bench_primitives(BULK_LEN);
        throughputs.extend(bench_record_path(RECORD_LEN));
        let report = DataplaneReport {
            smoke: true,
            bulk_len: BULK_LEN,
            record_len: RECORD_LEN,
            throughputs,
            allocs_per_record_endpoint: 0.0,
            allocs_per_record_middlebox: 0.0,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"aes_gcm_bitsliced_seal\""));
        assert!(json.contains("\"middlebox_forward_record\""));
        // Balanced braces and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }") && !json.contains(",\n}"));
    }

    #[test]
    fn steady_state_pipeline_round_trips() {
        let mut p = SteadyStatePipeline::warmed_up();
        p.pump(3);
    }
}

//! Table 2 — handshake viability across client-network types.
//!
//! For each of the 241 simulated vantage sites (matching the paper's
//! per-type counts) we run a full mbTLS handshake from the client,
//! through the site's access-network filters, through an mbTLS
//! middlebox, to a server — and record whether it succeeded. The
//! filters implement deployed-equipment behaviours (L4-only,
//! TLS-header sanity, ClientHello inspection); the paper found zero
//! networks dropping mbTLS, and the deployed-behaviour population
//! reproduces that, while a hypothetical strict normalizer
//! demonstrates what *would* block it.

use std::collections::BTreeMap;
use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, NetChain, Relay};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_core::MbError;
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::filter::{FilterAction, FilterPolicy, TlsStreamFilter};
use mbtls_netsim::profiles::{table2_population, ClientNetworkProfile, NetworkType};
use mbtls_netsim::time::Duration;
use mbtls_netsim::Network;

/// An on-path filter device: inspects both directions with
/// independent TLS stream filters and kills the connection on a Drop
/// verdict.
pub struct FilterRelay {
    c2s: TlsStreamFilter,
    s2c: TlsStreamFilter,
    out_left: Vec<u8>,
    out_right: Vec<u8>,
}

impl FilterRelay {
    /// A filter applying `policy` in both directions.
    pub fn new(policy: FilterPolicy) -> Self {
        FilterRelay {
            c2s: TlsStreamFilter::new(policy),
            s2c: TlsStreamFilter::new(policy),
            out_left: Vec::new(),
            out_right: Vec::new(),
        }
    }
}

impl Relay for FilterRelay {
    fn feed_left(&mut self, data: &[u8]) -> Result<(), MbError> {
        match self.c2s.inspect(data) {
            FilterAction::Pass => {
                self.out_right.extend_from_slice(data);
                Ok(())
            }
            FilterAction::Drop => Err(MbError::Network(
                mbtls_netsim::net::NetError::ConnectionReset,
            )),
        }
    }
    fn feed_right(&mut self, data: &[u8]) -> Result<(), MbError> {
        match self.s2c.inspect(data) {
            FilterAction::Pass => {
                self.out_left.extend_from_slice(data);
                Ok(())
            }
            FilterAction::Drop => Err(MbError::Network(
                mbtls_netsim::net::NetError::ConnectionReset,
            )),
        }
    }
    fn take_left(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out_left)
    }
    fn take_right(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out_right)
    }
}

/// Result of one site's attempt.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// The network category.
    pub network_type: NetworkType,
    /// Did the mbTLS handshake (and a small data exchange) succeed?
    pub success: bool,
    /// Filter policies on the path.
    pub filters: Vec<FilterPolicy>,
}

/// Run one site's handshake attempt.
pub fn run_site(tb: &Testbed, site: &ClientNetworkProfile, seed: u64) -> SiteResult {
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(seed + 1),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(seed + 2));
    let mb = Middlebox::new(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(seed + 3),
    );
    let mut middles: Vec<Box<dyn Relay>> = Vec::new();
    for policy in &site.filters {
        middles.push(Box::new(FilterRelay::new(*policy)));
    }
    middles.push(Box::new(mb));

    // Link plan: client → [filters...] → middlebox over the access
    // network (site latency + faults on the first link, fast links
    // between devices), middlebox → server inside the data center.
    let n_links = middles.len() + 1;
    let mut latencies = vec![Duration::from_micros(200); n_links];
    latencies[0] = site.latency;
    let mut faults = vec![mbtls_netsim::FaultConfig::none(); n_links];
    faults[0] = site.faults.clone();

    let chain = Chain::new(Box::new(client), middles, Box::new(server));
    let mut net = Network::new(seed);
    let mut nc = NetChain::new(&mut net, chain, &latencies, &faults);
    let outcome = nc.run_session(b"GET / HTTP/1.1\r\n\r\n", 2048, Duration::from_secs(120));
    SiteResult {
        network_type: site.network_type,
        success: outcome.is_ok(),
        filters: site.filters.clone(),
    }
}

/// Aggregated Table 2 output.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (type, attempted, succeeded) per category.
    pub rows: Vec<(NetworkType, usize, usize)>,
    /// Totals.
    pub total: usize,
    /// Total successes.
    pub successes: usize,
}

/// Run the full 241-site sweep (or a subset of `limit` sites for
/// quick runs).
pub fn run(seed: u64, limit: Option<usize>) -> Table2 {
    let tb = Testbed::new(seed);
    let mut rng = CryptoRng::from_seed(seed ^ 0x7AB1E2);
    let mut population = table2_population(&mut rng);
    if let Some(limit) = limit {
        population.truncate(limit);
    }
    let mut per_type: BTreeMap<&'static str, (NetworkType, usize, usize)> = BTreeMap::new();
    let mut successes = 0usize;
    for (i, site) in population.iter().enumerate() {
        let result = run_site(&tb, site, seed + 1000 + i as u64 * 31);
        let entry = per_type
            .entry(site.network_type.label())
            .or_insert((site.network_type, 0, 0));
        entry.1 += 1;
        if result.success {
            entry.2 += 1;
            successes += 1;
        }
    }
    let rows = NetworkType::ALL
        .iter()
        .filter_map(|t| per_type.get(t.label()).copied())
        .collect();
    Table2 {
        rows,
        total: population.len(),
        successes,
    }
}

/// The control experiment: the same handshake through a hypothetical
/// strict normalizer that drops unknown record content types.
pub fn strict_filter_blocks(seed: u64) -> bool {
    let tb = Testbed::new(seed);
    let site = ClientNetworkProfile {
        network_type: NetworkType::Enterprise,
        latency: Duration::from_millis(10),
        faults: mbtls_netsim::FaultConfig::none(),
        filters: vec![FilterPolicy::StrictContentTypes],
    };
    !run_site(&tb, &site, seed + 5).success
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_sites_all_succeed() {
        // A quick 12-site subset in tests; the binary runs all 241.
        let table = run(0x7AB1E, Some(12));
        assert_eq!(table.total, 12);
        assert_eq!(
            table.successes, table.total,
            "deployed-filter population must not block mbTLS"
        );
    }

    #[test]
    fn strict_normalizer_blocks_mbtls() {
        assert!(strict_filter_blocks(0x57121C7));
    }
}

//! The `BENCH_handshake.json` handshake fast-path reporter.
//!
//! Three measurements back the precomputed/batched Ed25519 work:
//!
//! 1. **Verification throughput** — single [`VerifyingKey::verify`]
//!    calls (Strauss double-scalar over the precomputed base comb)
//!    against [`verify_batch`]'s random-linear-combination equation,
//!    at several batch sizes. The acceptance floor is 2× at the best
//!    batch size.
//! 2. **Handshake CPU** — wall clock per full handshake (certificate
//!    transfer, two chain signature checks, one ServerKeyExchange
//!    check, X25519) against an abbreviated ticket-resumption
//!    handshake (no certificates, no signature checks) over
//!    zero-latency in-memory pipes, where wall ≈ CPU. The floor:
//!    resumed ≤ ¼ of full.
//! 3. **Reconnect storm** — the sharded host under the load
//!    generator's resumption-storm scenario (primed tickets, a stale
//!    cadence degrading to full handshakes, deferred checks batched
//!    per shard turn), measured with the same max-shard-wall model as
//!    `scale.rs`, against an all-full-handshake baseline at every
//!    shard count.
//!
//! A double-run determinism probe (storm config, batching on) proves
//! the merged telemetry trace stays bit-identical — batching changes
//! *when* checks are paid, never the outcome or the schedule.

use std::sync::Arc;
use std::time::Instant;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::ed25519::{verify_batch, BatchItem, Signature, SigningKey, VerifyingKey};
use mbtls_crypto::rng::CryptoRng;
use mbtls_host::{Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, Shard, Workload};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::merge_shard_traces;

use crate::scale::trace_fingerprint;

/// Shard counts for the storm curve (matches `scale.rs`).
pub const STORM_SHARD_CURVE: &[u16] = &[1, 2, 4, 8];

/// One verification-throughput row at one batch size.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Signatures per batch.
    pub batch: usize,
    /// Individual `verify` calls per second over the same items.
    pub single_verifies_per_s: f64,
    /// Verifications per second through `verify_batch`.
    pub batched_verifies_per_s: f64,
    /// `batched / single`.
    pub speedup: f64,
}

/// Full-vs-resumed handshake CPU comparison.
#[derive(Debug, Clone)]
pub struct HandshakeCpu {
    /// Microseconds per full handshake (certificates + signatures).
    pub full_us: f64,
    /// Microseconds per abbreviated ticket-resumption handshake.
    pub resumed_us: f64,
    /// `resumed / full` (acceptance ceiling 0.25).
    pub resumed_over_full: f64,
}

/// One storm-vs-baseline row at one shard count.
#[derive(Debug, Clone)]
pub struct StormRun {
    /// Shards in this configuration.
    pub shards: u16,
    /// Modeled handshakes/s with every session doing a full
    /// handshake (max-shard-wall model).
    pub full_handshakes_per_s: f64,
    /// Modeled handshakes/s under the resumption storm (primed
    /// tickets, stale cadence, batched deferred checks).
    pub storm_handshakes_per_s: f64,
    /// Fraction of storm handshakes that actually resumed (the rest
    /// hit the stale cadence and degraded to full flights).
    pub storm_resumed_share: f64,
}

/// Everything that goes into `BENCH_handshake.json`.
#[derive(Debug, Clone)]
pub struct HandshakeReport {
    /// True when produced by a `--smoke` run (tiny iteration counts;
    /// numbers only prove the harness works).
    pub smoke: bool,
    /// Verification throughput, one row per batch size, ascending.
    pub verify: Vec<VerifyRow>,
    /// Full-vs-resumed handshake CPU.
    pub cpu: HandshakeCpu,
    /// Storm curve, one row per shard count, ascending.
    pub storm: Vec<StormRun>,
    /// Seed of the determinism replay.
    pub determinism_seed: u64,
    /// Fleet size of the determinism replay.
    pub determinism_sessions: usize,
    /// Shard count of the determinism replay.
    pub determinism_shards: u16,
    /// True iff two storm runs with batching enabled replayed a
    /// bit-identical merged trace and identical counters.
    pub determinism_identical: bool,
}

impl HandshakeReport {
    /// Best batched-over-single speedup across the measured batch
    /// sizes (the scalar the smoke gate checks against 2.0).
    pub fn best_batch_speedup(&self) -> f64 {
        self.verify.iter().map(|r| r.speedup).fold(0.0, f64::max)
    }

    /// Render as pretty-printed JSON (hand-rolled; the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"model\": \"max_shard_wall\",\n");
        out.push_str("  \"verify\": [\n");
        for (i, row) in self.verify.iter().enumerate() {
            let comma = if i + 1 == self.verify.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&format!("      \"batch\": {},\n", row.batch));
            out.push_str(&format!(
                "      \"single_verifies_per_s\": {:.1},\n",
                row.single_verifies_per_s
            ));
            out.push_str(&format!(
                "      \"batched_verifies_per_s\": {:.1},\n",
                row.batched_verifies_per_s
            ));
            out.push_str(&format!("      \"speedup\": {:.2}\n", row.speedup));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"best_batch_speedup\": {:.2},\n", self.best_batch_speedup()));
        out.push_str("  \"handshake_cpu\": {\n");
        out.push_str(&format!("    \"full_us\": {:.1},\n", self.cpu.full_us));
        out.push_str(&format!("    \"resumed_us\": {:.1},\n", self.cpu.resumed_us));
        out.push_str(&format!(
            "    \"resumed_over_full\": {:.3}\n",
            self.cpu.resumed_over_full
        ));
        out.push_str("  },\n");
        out.push_str("  \"storm\": [\n");
        for (i, run) in self.storm.iter().enumerate() {
            let comma = if i + 1 == self.storm.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&format!("      \"shards\": {},\n", run.shards));
            out.push_str(&format!(
                "      \"full_handshakes_per_s\": {:.1},\n",
                run.full_handshakes_per_s
            ));
            out.push_str(&format!(
                "      \"storm_handshakes_per_s\": {:.1},\n",
                run.storm_handshakes_per_s
            ));
            out.push_str(&format!(
                "      \"storm_resumed_share\": {:.3}\n",
                run.storm_resumed_share
            ));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str("  \"determinism\": {\n");
        out.push_str(&format!("    \"seed\": {},\n", self.determinism_seed));
        out.push_str(&format!("    \"sessions\": {},\n", self.determinism_sessions));
        out.push_str(&format!("    \"shards\": {},\n", self.determinism_shards));
        out.push_str("    \"batching\": true,\n");
        out.push_str(&format!("    \"identical\": {}\n", self.determinism_identical));
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// Deterministic signature corpus: `n` distinct keys, messages, and
/// signatures.
fn signature_corpus(n: usize, seed: u64) -> (Vec<VerifyingKey>, Vec<Vec<u8>>, Vec<Signature>) {
    let mut rng = CryptoRng::from_seed(seed);
    let mut keys = Vec::with_capacity(n);
    let mut msgs = Vec::with_capacity(n);
    let mut sigs = Vec::with_capacity(n);
    for i in 0..n {
        let sk = SigningKey::generate(&mut rng);
        let msg = format!("handshake transcript {i}").into_bytes();
        sigs.push(sk.sign(&msg));
        keys.push(sk.verifying_key());
        msgs.push(msg);
    }
    (keys, msgs, sigs)
}

/// Measure single-vs-batched verification throughput at `batch`
/// signatures per call, repeating until at least `min_verifies`
/// verifications are timed on each side.
pub fn bench_verify_row(batch: usize, min_verifies: usize, seed: u64) -> VerifyRow {
    let (keys, msgs, sigs) = signature_corpus(batch, seed);
    let items: Vec<BatchItem<'_>> = (0..batch)
        .map(|i| BatchItem { pubkey: keys[i], msg: &msgs[i], sig: sigs[i] })
        .collect();
    let rounds = min_verifies.div_ceil(batch).max(1);

    // Untimed warm-up: the first row measured in a process otherwise
    // absorbs cold-start costs (page faults, branch history, CPU
    // frequency ramp) into its single-verify baseline and reports an
    // inflated speedup.
    for i in 0..batch {
        keys[i].verify(&msgs[i], &sigs[i]).expect("corpus signature verifies");
    }
    assert!(verify_batch(&items).all_valid(), "corpus batch verifies");

    let t0 = Instant::now();
    for _ in 0..rounds {
        for i in 0..batch {
            keys[i].verify(&msgs[i], &sigs[i]).expect("corpus signature verifies");
        }
    }
    let single_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..rounds {
        let outcome = verify_batch(&items);
        assert!(outcome.all_valid(), "corpus batch verifies");
    }
    let batched_s = t0.elapsed().as_secs_f64();

    let total = (rounds * batch) as f64;
    let single_rate = total / single_s;
    let batched_rate = total / batched_s;
    VerifyRow {
        batch,
        single_verifies_per_s: single_rate,
        batched_verifies_per_s: batched_rate,
        speedup: batched_rate / single_rate,
    }
}

/// Time `iters` handshakes over zero-latency in-memory pipes;
/// `resumed` primes the client's resumption cache first so every
/// timed handshake is abbreviated. Returns microseconds per
/// handshake.
pub fn bench_handshake_us(iters: usize, resumed: bool, seed: u64) -> f64 {
    let testbed = Testbed::new(seed);
    let server_cfg = Arc::new(testbed.server_config());
    let mut client_cfg = testbed.client_config();
    if resumed {
        let mut rng = CryptoRng::from_seed(seed ^ 0x9D1E);
        let primer = MbClientSession::new(
            Arc::new(testbed.client_config()),
            "server.example",
            rng.fork(),
        );
        let prime_server = MbServerSession::new(server_cfg.clone(), rng.fork());
        let mut chain = Chain::new(Box::new(primer), Vec::new(), Box::new(prime_server));
        chain.run_handshake().expect("priming handshake completes");
        let ticket = chain.client.resumption().expect("priming handshake yields a ticket");
        client_cfg.tls.resumption_cache.insert("server.example".to_string(), ticket);
    }
    let client_cfg = Arc::new(client_cfg);

    let mut rng = CryptoRng::from_seed(seed ^ 0xBEEF);
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let client = MbClientSession::new(client_cfg.clone(), "server.example", rng.fork());
        let server = MbServerSession::new(server_cfg.clone(), rng.fork());
        let mut chain = Chain::new(Box::new(client), Vec::new(), Box::new(server));
        let t0 = Instant::now();
        chain.run_handshake().expect("timed handshake completes");
        total += t0.elapsed();
        assert_eq!(
            chain.client.resumed(),
            resumed,
            "timed handshake must take the intended path"
        );
    }
    total.as_secs_f64() * 1e6 / iters as f64
}

/// Full-vs-resumed handshake CPU over `iters` handshakes each.
pub fn bench_handshake_cpu(iters: usize, seed: u64) -> HandshakeCpu {
    let full_us = bench_handshake_us(iters, false, seed);
    let resumed_us = bench_handshake_us(iters, true, seed);
    HandshakeCpu { full_us, resumed_us, resumed_over_full: resumed_us / full_us }
}

/// The storm scenario's load shape: handshake-dominated (one
/// exchange), no middleboxes, arrivals every 5 µs. `storm` switches
/// between the all-full baseline and the primed-ticket storm; both
/// defer signature checks so the host's batch seam is on the
/// measured path whenever checks exist.
pub fn storm_load(sessions: usize, seed: u64, storm: bool) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(5),
        middlebox_every: 0,
        latency: Duration::from_micros(200),
        workload: Workload { request_len: 256, response_len: 1024, exchanges: 1 },
        seed,
        resumption_storm: storm,
        // Every 16th reconnect arrives with a ticket the server no
        // longer honors and degrades to a full handshake.
        stale_every: if storm { 16 } else { 0 },
        defer_verify: true,
        chain_mix: mbtls_host::ChainMix::PassThrough,
        read_only_path: false,
        auth_mode: mbtls_core::MiddleboxAuthMode::SgxAttested,
    }
}

/// Drain shard `k`'s residue-class slice of an `S`-shard storm (or
/// baseline) fleet, returning `(wall, resumed, full)`.
fn drain_storm_slice(
    n: usize,
    seed: u64,
    k: u16,
    shards: u16,
    storm: bool,
) -> (std::time::Duration, u64, u64) {
    let config = HostConfig::builder().shards(1).build().expect("storm shard config is valid");
    // Untimed warm-up, same rationale as `scale.rs`: every slice is
    // measured from an equally warm process state.
    {
        let warm = storm_load(64.min(n), seed ^ 0x0D15_CA4D, storm);
        let mut shard = Shard::new(k, NetSubstrate::new(seed ^ k as u64), config.clone());
        let mut generator = LoadGenerator::slice(warm, k, shards);
        generator
            .drive(&mut shard, SimTime::ZERO.plus(Duration::from_secs(3_600)))
            .expect("storm warm-up slice drains");
    }
    let mut shard = Shard::new(k, NetSubstrate::new(seed ^ k as u64), config);
    let mut generator = LoadGenerator::slice(storm_load(n, seed, storm), k, shards);
    let t0 = Instant::now();
    generator
        .drive(&mut shard, SimTime::ZERO.plus(Duration::from_secs(3_600)))
        .expect("storm shard slice drains");
    let wall = t0.elapsed();
    let counters = shard.counters();
    assert_eq!(
        counters.completed(),
        counters.opened(),
        "every storm session must complete"
    );
    (wall, counters.handshakes_resumed(), counters.handshakes_full())
}

/// Measure the storm curve: at each shard count, the all-full
/// baseline and the resumption storm under the max-shard-wall model.
pub fn bench_storm_curve(n: usize, seed: u64, curve: &[u16]) -> Vec<StormRun> {
    let mut runs = Vec::with_capacity(curve.len());
    for &shards in curve {
        let mut walls_full = Vec::with_capacity(shards as usize);
        let mut walls_storm = Vec::with_capacity(shards as usize);
        let mut resumed = 0u64;
        let mut full = 0u64;
        for k in 0..shards {
            let (wall, _, _) = drain_storm_slice(n, seed, k, shards, false);
            walls_full.push(wall.as_secs_f64());
            let (wall, res, f) = drain_storm_slice(n, seed, k, shards, true);
            walls_storm.push(wall.as_secs_f64());
            resumed += res;
            full += f;
        }
        assert_eq!((resumed + full) as usize, n);
        let max_full = walls_full.iter().copied().fold(0.0, f64::max);
        let max_storm = walls_storm.iter().copied().fold(0.0, f64::max);
        runs.push(StormRun {
            shards,
            full_handshakes_per_s: n as f64 / max_full,
            storm_handshakes_per_s: n as f64 / max_storm,
            storm_resumed_share: resumed as f64 / n as f64,
        });
    }
    runs
}

/// Replay one seeded storm fleet (batching enabled) twice through the
/// sharded [`Host`] and check the merged traces are bit-identical and
/// the merged counters equal.
pub fn storm_determinism_probe(sessions: usize, shards: u16, seed: u64) -> (u64, bool) {
    let run = || {
        let config = HostConfig::builder()
            .shards(shards as u32)
            .build()
            .expect("probe shard config is valid");
        let mut host = Host::new(config, |k| NetSubstrate::new(seed ^ k as u64));
        let recorders = host.record_telemetry();
        let mut generator = LoadGenerator::new(storm_load(sessions, seed, true));
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(3_600)))
            .expect("determinism storm drains");
        let merged = merge_shard_traces(recorders.iter().map(|r| r.snapshot()).collect());
        (trace_fingerprint(&merged), host.counters())
    };
    let (fingerprint_a, counters_a) = run();
    let (fingerprint_b, counters_b) = run();
    (fingerprint_a, fingerprint_a == fingerprint_b && counters_a == counters_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_row_rates_are_positive_and_consistent() {
        let row = bench_verify_row(8, 16, 0xFEED);
        assert_eq!(row.batch, 8);
        assert!(row.single_verifies_per_s > 0.0);
        assert!(row.batched_verifies_per_s > 0.0);
        let ratio = row.batched_verifies_per_s / row.single_verifies_per_s;
        assert!((row.speedup - ratio).abs() < 1e-9);
    }

    #[test]
    fn resumed_handshake_is_cheaper_than_full() {
        let cpu = bench_handshake_cpu(3, 0xAB);
        assert!(cpu.full_us > 0.0);
        assert!(cpu.resumed_us > 0.0);
        assert!(
            cpu.resumed_over_full < 1.0,
            "resumption must be cheaper: {:.1} vs {:.1} µs",
            cpu.resumed_us,
            cpu.full_us
        );
    }

    #[test]
    fn storm_curve_smoke_beats_baseline() {
        let runs = bench_storm_curve(16, 0x57, &[1, 2]);
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert!(run.full_handshakes_per_s > 0.0);
            assert!(run.storm_handshakes_per_s > 0.0);
            assert!(run.storm_resumed_share > 0.5, "most storm sessions resume");
        }
    }

    #[test]
    fn storm_determinism_probe_is_identical() {
        let (fingerprint, identical) = storm_determinism_probe(8, 2, 0x77);
        assert!(identical, "seeded storm replay must be bit-identical");
        assert_ne!(fingerprint, 0);
    }

    #[test]
    fn report_json_shape_is_valid() {
        let report = HandshakeReport {
            smoke: true,
            verify: vec![bench_verify_row(4, 4, 1)],
            cpu: HandshakeCpu { full_us: 100.0, resumed_us: 20.0, resumed_over_full: 0.2 },
            storm: bench_storm_curve(8, 3, &[1]),
            determinism_seed: 3,
            determinism_sessions: 8,
            determinism_shards: 2,
            determinism_identical: true,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"verify\"",
            "\"batch\"",
            "\"single_verifies_per_s\"",
            "\"batched_verifies_per_s\"",
            "\"best_batch_speedup\"",
            "\"handshake_cpu\"",
            "\"resumed_over_full\"",
            "\"storm\"",
            "\"full_handshakes_per_s\"",
            "\"storm_handshakes_per_s\"",
            "\"determinism\"",
            "\"batching\": true",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }") && !json.contains(",\n}"));
    }
}

//! §5.1 Legacy interoperability — the "Alexa top-500" survey.
//!
//! The paper drove a modified curl through an mbTLS SOCKS proxy
//! against the top 500 Alexa sites: 385 supported HTTPS; 308
//! succeeded; the 77 failures split into 19 bad certificates, 40
//! missing AES-256-GCM, 13 redirect-handling bugs, and 5 unknown. We
//! build a synthetic population of *unmodified* TLS 1.2 servers with
//! the same defect distribution and drive an mbTLS client + header
//! proxy against every one.

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, LegacyServer};
use mbtls_core::middlebox::Middlebox;
use mbtls_crypto::rng::CryptoRng;
use mbtls_http::message::{Request, RequestParser, Response};
use mbtls_mboxes::HeaderInsertionProxy;
use mbtls_pki::cert::CertifiedKey;
use mbtls_pki::KeyUsage;
use mbtls_tls::suites::CipherSuite;
use mbtls_tls::ServerConnection;

/// Why a synthetic site fails (mirrors the paper's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteDefect {
    /// Fully working HTTPS site.
    None,
    /// Site does not serve HTTPS at all (the 500-385 gap).
    NoHttps,
    /// Invalid or expired certificate (19 in the paper).
    BadCertificate,
    /// No AES-256-GCM support — the only suite the paper's prototype
    /// spoke (40 in the paper).
    NoAes256Gcm,
    /// Redirect the proxy mishandles (13 in the paper).
    RedirectLoop,
    /// Unexplained failure (5 in the paper).
    Flaky,
}

/// One synthetic site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Rank-like identifier.
    pub name: String,
    /// Its defect class.
    pub defect: SiteDefect,
}

/// Build the 500-site population with the paper's §5.1 distribution.
pub fn population() -> Vec<Site> {
    let mut sites = Vec::with_capacity(500);
    let mut defects = Vec::with_capacity(500);
    defects.extend(std::iter::repeat_n(SiteDefect::NoHttps, 115));
    defects.extend(std::iter::repeat_n(SiteDefect::BadCertificate, 19));
    defects.extend(std::iter::repeat_n(SiteDefect::NoAes256Gcm, 40));
    defects.extend(std::iter::repeat_n(SiteDefect::RedirectLoop, 13));
    defects.extend(std::iter::repeat_n(SiteDefect::Flaky, 5));
    defects.extend(std::iter::repeat_n(SiteDefect::None, 500 - defects.len()));
    // Deterministic interleaving: spread defects across ranks.
    for (i, defect) in defects.into_iter().enumerate() {
        let rank = (i * 197) % 500; // co-prime stride shuffles ranks
        sites.push(Site {
            name: format!("site-{rank:03}.example"),
            defect,
        });
    }
    sites
}

/// Outcome classes for the survey report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Root document fetched through the proxy.
    Success,
    /// Site skipped (no HTTPS).
    NoHttps,
    /// TLS failure: certificate.
    FailedCertificate,
    /// TLS failure: no common cipher suite.
    FailedCipherSuite,
    /// HTTP-level failure (redirect mishandling).
    FailedRedirect,
    /// Unknown failure.
    FailedUnknown,
}

/// Fetch one site's root document through the mbTLS proxy.
pub fn fetch_site(tb: &Testbed, site: &Site, seed: u64) -> Outcome {
    if site.defect == SiteDefect::NoHttps {
        return Outcome::NoHttps;
    }
    if site.defect == SiteDefect::Flaky {
        // The paper could not attribute these; we model them as the
        // connection dying mid-handshake.
        return Outcome::FailedUnknown;
    }
    let mut rng = CryptoRng::from_seed(seed);

    // Issue the site's certificate: valid, or expired for the
    // bad-certificate class. Sites are ordinary *legacy TLS 1.2*
    // servers — the point of the experiment.
    let (not_before, not_after) = match site.defect {
        SiteDefect::BadCertificate => (0, 1), // long expired
        _ => (0, 10_000_000),
    };
    // The Testbed's CA is not directly accessible; re-create a CA and
    // trust store pair for the survey population.
    let mut ca = mbtls_pki::cert::CertificateAuthority::new_root(
        "Survey Web Root",
        0,
        10_000_000,
        &mut rng,
    );
    let site_key = Arc::new(CertifiedKey::issue(
        &mut ca,
        &site.name,
        &[],
        not_before,
        not_after,
        KeyUsage::Endpoint,
        &mut rng,
    ));
    let mut trust = mbtls_pki::TrustStore::new();
    trust.add_root(ca.certificate().clone());
    let trust = Arc::new(trust);

    let mut server_cfg = mbtls_tls::config::ServerConfig::new(site_key, [3u8; 32]);
    if site.defect == SiteDefect::NoAes256Gcm {
        server_cfg.suites = vec![CipherSuite::EcdheAes128GcmSha256];
    }
    let server = LegacyServer::new(ServerConnection::new(Arc::new(server_cfg)), rng.fork());

    // The mbTLS client speaks only AES-256-GCM, like the paper's
    // prototype.
    let mut client_cfg = mbtls_core::client::MbClientConfig::new(trust, tb.middlebox_trust.clone());
    client_cfg.tls.suites = vec![
        CipherSuite::EcdheAes256GcmSha384,
        CipherSuite::DheAes256GcmSha384,
    ];
    client_cfg.tls.current_time = 1_000_000;
    client_cfg.middlebox_attestation = None; // in-house proxy
    let client = MbClientSession::new(Arc::new(client_cfg), &site.name, rng.fork());
    let proxy = Middlebox::with_processor(
        {
            let mut c = tb.middlebox_config(&tb.mbox_code);
            c.attestor = None;
            c
        },
        rng.fork(),
        Box::new(HeaderInsertionProxy::new("Via", "1.1 mbtls-survey-proxy")),
    );

    let mut chain = Chain::new(Box::new(client), vec![Box::new(proxy)], Box::new(server));
    match chain.run_handshake() {
        Ok(()) => {}
        Err(mbtls_core::MbError::Tls(mbtls_tls::TlsError::Certificate(_))) => {
            return Outcome::FailedCertificate
        }
        Err(mbtls_core::MbError::Tls(mbtls_tls::TlsError::NegotiationFailed(_)))
        | Err(mbtls_core::MbError::Tls(mbtls_tls::TlsError::PeerAlert(
            mbtls_tls::alert::AlertDescription::HandshakeFailure,
        ))) => return Outcome::FailedCipherSuite,
        Err(_) => return Outcome::FailedUnknown,
    }

    // Fetch the root document.
    let req = Request::get("/", &site.name).encode();
    let Ok(got) = chain.client_to_server(&req, req.len()) else {
        return Outcome::FailedUnknown;
    };
    let mut parser = RequestParser::new();
    parser.feed(&got);
    let Ok(Some(seen)) = parser.next_request() else {
        return Outcome::FailedUnknown;
    };
    // Redirect-loop sites answer with a redirect the survey client
    // (like the paper's SOCKS shim) does not follow.
    let resp = if site.defect == SiteDefect::RedirectLoop {
        let mut r = Response::status(301, "Moved Permanently");
        r.set_header("Location", &format!("https://{}/", site.name));
        r
    } else {
        Response::ok(format!("<html>root of {}</html>", seen.header("Host").unwrap_or("?")).as_bytes())
    };
    let wire = resp.encode();
    let Ok(body) = chain.server_to_client(&wire, wire.len()) else {
        return Outcome::FailedUnknown;
    };
    if site.defect == SiteDefect::RedirectLoop {
        return Outcome::FailedRedirect;
    }
    if body.windows(4).any(|w| w == b"root") {
        Outcome::Success
    } else {
        Outcome::FailedUnknown
    }
}

/// Aggregate survey results.
#[derive(Debug, Clone, Default)]
pub struct Survey {
    /// HTTPS-capable sites attempted.
    pub https_sites: usize,
    /// Successful fetches.
    pub successes: usize,
    /// Certificate failures.
    pub bad_certs: usize,
    /// Cipher-suite failures.
    pub no_suite: usize,
    /// Redirect failures.
    pub redirects: usize,
    /// Unknown failures.
    pub unknown: usize,
}

/// Run the survey over `limit` sites (None = all 500).
pub fn run(seed: u64, limit: Option<usize>) -> Survey {
    let tb = Testbed::new(seed);
    let mut sites = population();
    if let Some(limit) = limit {
        sites.truncate(limit);
    }
    let mut survey = Survey::default();
    for (i, site) in sites.iter().enumerate() {
        match fetch_site(&tb, site, seed + 31 * i as u64) {
            Outcome::NoHttps => {}
            outcome => {
                survey.https_sites += 1;
                match outcome {
                    Outcome::Success => survey.successes += 1,
                    Outcome::FailedCertificate => survey.bad_certs += 1,
                    Outcome::FailedCipherSuite => survey.no_suite += 1,
                    Outcome::FailedRedirect => survey.redirects += 1,
                    Outcome::FailedUnknown => survey.unknown += 1,
                    Outcome::NoHttps => unreachable!(),
                }
            }
        }
    }
    survey
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_matches_paper_taxonomy() {
        let sites = population();
        assert_eq!(sites.len(), 500);
        let count = |d: SiteDefect| sites.iter().filter(|s| s.defect == d).count();
        assert_eq!(count(SiteDefect::NoHttps), 115);
        assert_eq!(count(SiteDefect::BadCertificate), 19);
        assert_eq!(count(SiteDefect::NoAes256Gcm), 40);
        assert_eq!(count(SiteDefect::RedirectLoop), 13);
        assert_eq!(count(SiteDefect::Flaky), 5);
        assert_eq!(count(SiteDefect::None), 308);
    }

    #[test]
    fn each_defect_class_produces_expected_outcome() {
        let tb = Testbed::new(0x515E);
        let cases = [
            (SiteDefect::None, Outcome::Success),
            (SiteDefect::BadCertificate, Outcome::FailedCertificate),
            (SiteDefect::NoAes256Gcm, Outcome::FailedCipherSuite),
            (SiteDefect::RedirectLoop, Outcome::FailedRedirect),
            (SiteDefect::NoHttps, Outcome::NoHttps),
            (SiteDefect::Flaky, Outcome::FailedUnknown),
        ];
        for (i, (defect, expected)) in cases.into_iter().enumerate() {
            let site = Site {
                name: format!("probe-{i}.example"),
                defect,
            };
            let outcome = fetch_site(&tb, &site, 9000 + i as u64);
            assert_eq!(outcome, expected, "{defect:?}");
        }
    }
}

//! The `BENCH_scale.json` capacity reporter.
//!
//! Where `report.rs` measures the data-plane fast path one record at
//! a time, this module measures the *host*: how many full mbTLS
//! sessions per second a sharded [`Host`] can admit, handshake,
//! serve, and retire over the network simulator, at fleet sizes of
//! 10 000, 100 000, and 1 000 000 sessions under open/close churn,
//! with a cores-vs-throughput curve at 1/2/4/8 shards per fleet.
//!
//! # The max-shard-wall throughput model
//!
//! The container this harness runs in has one CPU core, so the curve
//! cannot come from real threads. Shards share *nothing* — each owns
//! its slab, wheel, buffer pool, substrate, and clock — so an
//! S-shard deployment's wall clock is the wall clock of its slowest
//! shard. [`bench_scale_point`] therefore drives each shard's slice
//! of the fleet to completion *sequentially*, times each slice
//! separately, and models S-core throughput as
//! `N / max(per-shard wall)`. The per-shard walls are published in
//! the artifact so the model is auditable, and the JSON names the
//! model explicitly (`"model": "max_shard_wall"`).
//!
//! The `scale_report` binary wraps [`SteadyStateShard`] with a
//! counting allocator to prove every shard's per-record steady state
//! is allocation-free, and replays one seeded multi-shard run twice
//! to prove the merged telemetry trace is bit-identical.
//! `scripts/check.sh` runs the binary in `--smoke` mode as a
//! regression gate; see DESIGN.md §6f–§6g for how to read the
//! numbers.

use std::time::Instant;

use mbtls_host::{
    Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, PipeSubstrate, Shard, Workload,
};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::{merge_shard_traces, to_json_line};

/// Every load run in this module serves the same per-session
/// workload: `exchanges` request/response round trips, so one session
/// moves `exchanges * 2` application records end to end.
pub const WORKLOAD: Workload = Workload { request_len: 256, response_len: 1024, exchanges: 2 };

/// Records one session contributes to the aggregate record count
/// (each exchange is one request record plus one response record).
pub const RECORDS_PER_SESSION: u64 = WORKLOAD.exchanges as u64 * 2;

/// The shard counts measured at every fleet size.
pub const SHARD_CURVE: &[u16] = &[1, 2, 4, 8];

/// The churn profile measured at each fleet size: arrivals every 5 µs
/// of virtual time (far faster than a session's ~3 ms lifetime, so
/// hundreds of sessions are live at once per shard), one middlebox on
/// every *third* chain, 200 µs per-link latency.
///
/// The middlebox cadence is deliberately coprime to every shard count
/// in [`SHARD_CURVE`]: a cadence that shares a factor with the shard
/// stride would pin the expensive middlebox chains to a subset of
/// shards under round-robin placement (e.g. cadence 4 at 4 shards
/// puts *all* of them on shard 0), and the max-shard-wall model would
/// then measure that placement pathology instead of the architecture.
pub fn scale_load(sessions: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(5),
        middlebox_every: 3,
        latency: Duration::from_micros(200),
        workload: WORKLOAD,
        seed,
        ..LoadConfig::default()
    }
}

/// One shard-count configuration of one fleet size.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shards in this configuration.
    pub shards: u16,
    /// Wall-clock milliseconds each shard took to drain its slice,
    /// in shard order (measured sequentially; see the module docs).
    pub per_shard_wall_ms: Vec<f64>,
    /// The slowest shard's wall — the modeled S-core run time.
    pub max_shard_wall_ms: f64,
    /// Modeled completed handshakes per second:
    /// `n / max_shard_wall`.
    pub handshakes_per_s: f64,
    /// Modeled application records delivered end to end per second.
    pub records_per_s: f64,
}

/// Capacity numbers for one fleet size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Sessions opened (and required to complete) in this run.
    pub n: usize,
    /// One entry per [`SHARD_CURVE`] configuration, ascending.
    pub curve: Vec<ShardRun>,
    /// Modeled 4-shard handshake throughput over the 1-shard figure
    /// (the acceptance floor is 2.5).
    pub speedup_4_over_1: f64,
    /// Median open→handshake-done latency in virtual milliseconds
    /// (virtual time is shard-invariant, so one number per fleet).
    pub p50_handshake_ms: f64,
    /// 99th-percentile handshake latency in virtual milliseconds.
    pub p99_handshake_ms: f64,
    /// Wire bytes pushed into the substrate per session.
    pub bytes_per_session: f64,
}

/// Everything that goes into `BENCH_scale.json`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// True when produced by a `--smoke` run (tiny fleets; numbers
    /// only prove the harness works).
    pub smoke: bool,
    /// One entry per fleet size, ascending. Incomplete while a full
    /// run is still appending tiers (the binary rewrites the artifact
    /// after each fleet size).
    pub points: Vec<ScalePoint>,
    /// Heap allocations per application record in each shard's
    /// established steady state, indexed by shard (counted by the
    /// binary's global allocator; the acceptance target is 0.000 for
    /// every shard).
    pub allocs_per_record_per_shard: Vec<f64>,
    /// Seed used for the determinism replay.
    pub determinism_seed: u64,
    /// Fleet size of the determinism replay.
    pub determinism_sessions: usize,
    /// Shard count of the determinism replay.
    pub determinism_shards: u16,
    /// True iff two multi-shard runs with the same seed and schedule
    /// produced a bit-identical merged telemetry trace and identical
    /// merged counters.
    pub determinism_identical: bool,
}

impl ScaleReport {
    /// Worst per-shard steady-state allocation rate (the scalar the
    /// smoke gate checks against 0.000).
    pub fn allocs_per_record_steady(&self) -> f64 {
        self.allocs_per_record_per_shard.iter().copied().fold(0.0, f64::max)
    }

    /// Render as pretty-printed JSON. Hand-rolled (the workspace has
    /// no serde) but round-trips through any JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"model\": \"max_shard_wall\",\n");
        out.push_str("  \"sessions\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&format!("      \"n\": {},\n", p.n));
            out.push_str("      \"curve\": [\n");
            for (j, run) in p.curve.iter().enumerate() {
                let rc = if j + 1 == p.curve.len() { "" } else { "," };
                let walls: Vec<String> =
                    run.per_shard_wall_ms.iter().map(|w| format!("{w:.1}")).collect();
                out.push_str("        {\n");
                out.push_str(&format!("          \"shards\": {},\n", run.shards));
                out.push_str(&format!(
                    "          \"per_shard_wall_ms\": [{}],\n",
                    walls.join(", ")
                ));
                out.push_str(&format!(
                    "          \"max_shard_wall_ms\": {:.1},\n",
                    run.max_shard_wall_ms
                ));
                out.push_str(&format!(
                    "          \"handshakes_per_s\": {:.1},\n",
                    run.handshakes_per_s
                ));
                out.push_str(&format!("          \"records_per_s\": {:.1}\n", run.records_per_s));
                out.push_str(&format!("        }}{rc}\n"));
            }
            out.push_str("      ],\n");
            out.push_str(&format!("      \"speedup_4_over_1\": {:.2},\n", p.speedup_4_over_1));
            out.push_str(&format!("      \"p50_handshake_ms\": {:.3},\n", p.p50_handshake_ms));
            out.push_str(&format!("      \"p99_handshake_ms\": {:.3},\n", p.p99_handshake_ms));
            out.push_str(&format!("      \"bytes_per_session\": {:.1}\n", p.bytes_per_session));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ],\n");
        let allocs: Vec<String> =
            self.allocs_per_record_per_shard.iter().map(|a| format!("{a:.3}")).collect();
        out.push_str(&format!(
            "  \"allocs_per_record_steady\": {:.3},\n",
            self.allocs_per_record_steady()
        ));
        out.push_str(&format!(
            "  \"allocs_per_record_per_shard\": [{}],\n",
            allocs.join(", ")
        ));
        out.push_str("  \"determinism\": {\n");
        out.push_str(&format!("    \"seed\": {},\n", self.determinism_seed));
        out.push_str(&format!("    \"sessions\": {},\n", self.determinism_sessions));
        out.push_str(&format!("    \"shards\": {},\n", self.determinism_shards));
        out.push_str(&format!("    \"identical\": {}\n", self.determinism_identical));
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// Virtual percentile (`p` in 0..=100) over handshake latencies,
/// reported in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() - 1) * p / 100;
    sorted_ns[idx] as f64 / 1e6
}

/// Drain shard `k` of an `S`-shard deployment of the `n`-session
/// fleet: a standalone [`Shard`] reactor over its own simulator,
/// driven by the load generator's residue-class slice. Returns the
/// shard's wall clock plus its counters for aggregation.
fn drain_shard_slice(
    n: usize,
    seed: u64,
    k: u16,
    shards: u16,
) -> (std::time::Duration, u64, u64, u64, Vec<u64>) {
    let config = HostConfig::builder()
        .shards(1)
        .build()
        .expect("default shard config is valid");
    // Untimed warm-up: a miniature drain of the same shape, discarded
    // before the timer starts. Slices are measured sequentially in
    // one process, so without this the first-measured slice pays the
    // whole process's cold-start bill (first-touch page faults,
    // allocator arena growth, CPU frequency ramp) and its wall reads
    // up to 2× the others' — an artifact of measurement order, not of
    // the architecture. A prior BENCH_scale.json 8-shard row showed
    // exactly that: [6010, 3421, 2947, …] decaying to a ~2950 plateau.
    {
        let warm = scale_load(64.min(n), seed ^ 0x0D15_CA4D);
        let mut shard = Shard::new(k, NetSubstrate::new(seed ^ k as u64), config.clone());
        let mut generator = LoadGenerator::slice(warm, k, shards);
        generator
            .drive(&mut shard, SimTime::ZERO.plus(Duration::from_secs(3_600)))
            .expect("warm-up slice drains");
    }
    let mut shard = Shard::new(k, NetSubstrate::new(seed ^ k as u64), config);
    let mut generator = LoadGenerator::slice(scale_load(n, seed), k, shards);
    let t0 = Instant::now();
    generator
        .drive(&mut shard, SimTime::ZERO.plus(Duration::from_secs(3_600)))
        .expect("scale shard slice drains");
    let wall = t0.elapsed();
    let counters = shard.counters();
    (
        wall,
        counters.completed(),
        counters.exchanges_completed(),
        counters.bytes_moved(),
        counters.handshake_latencies_ns().to_vec(),
    )
}

/// Run one fleet of `n` sessions at every [`SHARD_CURVE`] shard count
/// and report the modeled cores-vs-throughput curve (see the module
/// docs for the max-shard-wall model).
pub fn bench_scale_point(n: usize, seed: u64) -> ScalePoint {
    bench_scale_point_over(n, seed, SHARD_CURVE)
}

/// [`bench_scale_point`] with an explicit shard curve (smoke runs
/// measure a shorter one).
pub fn bench_scale_point_over(n: usize, seed: u64, curve: &[u16]) -> ScalePoint {
    let mut runs = Vec::with_capacity(curve.len());
    let mut latencies: Vec<u64> = Vec::new();
    let mut bytes_per_session = 0.0;
    for &shards in curve {
        let mut walls = Vec::with_capacity(shards as usize);
        let mut completed = 0u64;
        let mut exchanges = 0u64;
        let mut bytes = 0u64;
        let mut curve_latencies: Vec<u64> = Vec::with_capacity(n);
        for k in 0..shards {
            let (wall, done, ex, moved, lat) = drain_shard_slice(n, seed, k, shards);
            walls.push(wall.as_secs_f64() * 1e3);
            completed += done;
            exchanges += ex;
            bytes += moved;
            curve_latencies.extend_from_slice(&lat);
        }
        assert_eq!(completed as usize, n, "every session must complete its workload");
        assert_eq!(curve_latencies.len(), n);
        let max_wall_ms = walls.iter().copied().fold(0.0, f64::max);
        let max_wall_s = max_wall_ms / 1e3;
        runs.push(ShardRun {
            shards,
            per_shard_wall_ms: walls,
            max_shard_wall_ms: max_wall_ms,
            handshakes_per_s: n as f64 / max_wall_s,
            records_per_s: (exchanges * 2) as f64 / max_wall_s,
        });
        if latencies.is_empty() {
            curve_latencies.sort_unstable();
            latencies = curve_latencies;
            bytes_per_session = bytes as f64 / n as f64;
        }
    }
    let rate_at = |s: u16| {
        runs.iter().find(|r| r.shards == s).map(|r| r.handshakes_per_s).unwrap_or(0.0)
    };
    let base = rate_at(curve[0]);
    let speedup_4_over_1 = if base > 0.0 { rate_at(4) / base } else { 0.0 };
    ScalePoint {
        n,
        curve: runs,
        speedup_4_over_1,
        p50_handshake_ms: percentile_ms(&latencies, 50),
        p99_handshake_ms: percentile_ms(&latencies, 99),
        bytes_per_session,
    }
}

/// FNV-1a over every telemetry event's JSON line — a trace
/// fingerprint that is equal iff the traces are bit-identical.
/// Shared with the handshake reporter's storm determinism probe.
pub(crate) fn trace_fingerprint(events: &[mbtls_telemetry::Event]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for event in events {
        for byte in to_json_line(event).bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Replay one seeded multi-shard churn run twice and check that the
/// merged telemetry traces are bit-identical and the merged counters
/// equal. Returns the merged-trace fingerprint and the verdict.
pub fn determinism_probe(sessions: usize, shards: u16, seed: u64) -> (u64, bool) {
    let run = || {
        let config = HostConfig::builder()
            .shards(shards as u32)
            .build()
            .expect("probe shard config is valid");
        let mut host = Host::new(config, |k| NetSubstrate::new(seed ^ k as u64));
        let recorders = host.record_telemetry();
        let mut generator = LoadGenerator::new(scale_load(sessions, seed));
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(3_600)))
            .expect("determinism fleet drains");
        let merged = merge_shard_traces(recorders.iter().map(|r| r.snapshot()).collect());
        (trace_fingerprint(&merged), host.counters())
    };
    let (fingerprint_a, counters_a) = run();
    let (fingerprint_b, counters_b) = run();
    (fingerprint_a, fingerprint_a == fingerprint_b && counters_a == counters_b)
}

/// A warmed-up single-session shard over in-memory pipes, parked in
/// its established phase with a deep exchange quota. `max_pump_passes
/// = 1` makes every [`Shard::step`] one bounded pump, so the
/// `scale_report` binary can snapshot its allocation counter around
/// [`Self::pump_exchanges`] and count event-loop allocations per
/// record at steady state — once per shard index, proving the
/// allocation-free property holds for every worker, not just shard 0.
pub struct SteadyStateShard {
    shard: Shard<PipeSubstrate>,
}

impl SteadyStateShard {
    /// Build a one-session shard `k` and drive it through the
    /// handshake plus `warm_exchanges` round trips, so the slab,
    /// wheel, buffer pool, ready queue, and every party's record
    /// buffers reach their final capacities.
    pub fn warmed_up(k: u16, warm_exchanges: u64) -> Self {
        let mut generator = LoadGenerator::new(LoadConfig {
            sessions: 1,
            middlebox_every: 0,
            workload: Workload { request_len: 256, response_len: 1024, exchanges: u32::MAX },
            ..scale_load(1, 0x5CA1E)
        });
        let config = HostConfig::builder()
            .max_pump_passes(1)
            .build()
            .expect("steady-state config is valid");
        let mut shard = Shard::new(k, PipeSubstrate::new(), config);
        shard.open(generator.make_spec()).expect("open steady-state session");
        let mut steady = SteadyStateShard { shard };
        steady.pump_exchanges(warm_exchanges);
        steady
    }

    /// Drive the event loop until `more` additional exchanges
    /// complete (each is one request record and one response record).
    pub fn pump_exchanges(&mut self, more: u64) {
        let target = self.shard.counters().exchanges_completed() + more;
        while self.shard.counters().exchanges_completed() < target {
            let progressed = self.shard.step().expect("steady-state step");
            assert!(progressed, "steady-state session parked before its exchange quota");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_report_is_valid_json_shape() {
        let report = ScaleReport {
            smoke: true,
            points: vec![
                bench_scale_point_over(8, 13, &[1, 2, 4]),
                bench_scale_point_over(16, 13, &[1, 2, 4]),
            ],
            allocs_per_record_per_shard: vec![0.0, 0.0],
            determinism_seed: 13,
            determinism_sessions: 8,
            determinism_shards: 2,
            determinism_identical: true,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"model\": \"max_shard_wall\""));
        assert!(json.contains("\"curve\""));
        assert!(json.contains("\"per_shard_wall_ms\""));
        assert!(json.contains("\"handshakes_per_s\""));
        assert!(json.contains("\"records_per_s\""));
        assert!(json.contains("\"speedup_4_over_1\""));
        assert!(json.contains("\"p99_handshake_ms\""));
        assert!(json.contains("\"allocs_per_record_per_shard\""));
        assert!(json.contains("\"determinism\""));
        assert!(json.contains("\"shards\": 2"));
        // Balanced braces and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }") && !json.contains(",\n}"));
    }

    #[test]
    fn scale_point_curve_covers_every_shard_count() {
        let point = bench_scale_point_over(6, 17, &[1, 2]);
        assert_eq!(point.curve.len(), 2);
        assert_eq!(point.curve[0].shards, 1);
        assert_eq!(point.curve[0].per_shard_wall_ms.len(), 1);
        assert_eq!(point.curve[1].shards, 2);
        assert_eq!(point.curve[1].per_shard_wall_ms.len(), 2);
        for run in &point.curve {
            assert!(run.max_shard_wall_ms > 0.0);
            assert!(run.handshakes_per_s > 0.0);
            assert!(
                run.per_shard_wall_ms.iter().all(|&w| w <= run.max_shard_wall_ms),
                "max wall dominates every shard"
            );
        }
    }

    #[test]
    fn determinism_probe_verdict_holds_multi_shard() {
        let (fingerprint, identical) = determinism_probe(6, 2, 29);
        assert!(identical, "seeded sharded replay must be bit-identical");
        assert_ne!(fingerprint, 0);
    }

    #[test]
    fn steady_state_shard_keeps_exchanging_on_any_worker() {
        for k in [0u16, 3] {
            let mut steady = SteadyStateShard::warmed_up(k, 4);
            steady.pump_exchanges(3);
        }
    }
}


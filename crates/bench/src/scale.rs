//! The `BENCH_scale.json` capacity reporter.
//!
//! Where `report.rs` measures the data-plane fast path one record at
//! a time, this module measures the *host*: how many full mbTLS
//! sessions per second a single [`SessionHost`] event loop can admit,
//! handshake, serve, and retire over the network simulator, at fleet
//! sizes of 100, 1 000, and 10 000 sessions under open/close churn.
//! The `scale_report` binary wraps [`SteadyStateHost`] with a
//! counting allocator to prove the host's per-record steady state is
//! allocation-free, and replays one seeded run twice to prove the
//! whole stack is deterministic. `scripts/check.sh` runs the binary
//! in `--smoke` mode as a regression gate; see DESIGN.md §6f for how
//! to read the numbers.

use std::time::Instant;

use mbtls_host::{
    HostConfig, LoadConfig, LoadGenerator, NetSubstrate, PipeSubstrate, SessionHost, Workload,
};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::{to_json_line, Recorder};

/// Every load run in this module serves the same per-session
/// workload: `exchanges` request/response round trips, so one session
/// moves `exchanges * 2` application records end to end.
pub const WORKLOAD: Workload = Workload { request_len: 256, response_len: 1024, exchanges: 2 };

/// Records one session contributes to the aggregate record count
/// (each exchange is one request record plus one response record).
pub const RECORDS_PER_SESSION: u64 = WORKLOAD.exchanges as u64 * 2;

/// The churn profile measured at each fleet size: arrivals every 5 µs
/// of virtual time (far faster than a session's ~3 ms lifetime, so
/// hundreds of sessions are live at once), one middlebox on every
/// fourth chain, 200 µs per-link latency.
pub fn scale_load(sessions: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(5),
        middlebox_every: 4,
        latency: Duration::from_micros(200),
        workload: WORKLOAD,
        seed,
    }
}

/// Capacity numbers for one fleet size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Sessions opened (and required to complete) in this run.
    pub n: usize,
    /// Completed handshakes per wall-clock second, churn included
    /// (session construction, slab admission, timer arming).
    pub handshakes_per_s: f64,
    /// Application records delivered end to end per wall-clock
    /// second, aggregated over the whole fleet.
    pub records_per_s: f64,
    /// Median open→handshake-done latency in virtual milliseconds.
    pub p50_handshake_ms: f64,
    /// 99th-percentile handshake latency in virtual milliseconds.
    pub p99_handshake_ms: f64,
    /// Wire bytes pushed into the substrate per session.
    pub bytes_per_session: f64,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
}

/// Everything that goes into `BENCH_scale.json`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// True when produced by a `--smoke` run (tiny fleets; numbers
    /// only prove the harness works).
    pub smoke: bool,
    /// One entry per fleet size, ascending.
    pub points: Vec<ScalePoint>,
    /// Heap allocations per application record in the host's
    /// established steady state (counted by the binary's global
    /// allocator; the acceptance target is 0).
    pub allocs_per_record_steady: f64,
    /// Seed used for the determinism replay.
    pub determinism_seed: u64,
    /// Fleet size of the determinism replay.
    pub determinism_sessions: usize,
    /// True iff two runs with the same seed and schedule produced a
    /// bit-identical telemetry trace and identical counters.
    pub determinism_identical: bool,
}

impl ScaleReport {
    /// Render as pretty-printed JSON. Hand-rolled (the workspace has
    /// no serde) but round-trips through any JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"sessions\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&format!("      \"n\": {},\n", p.n));
            out.push_str(&format!("      \"handshakes_per_s\": {:.1},\n", p.handshakes_per_s));
            out.push_str(&format!("      \"records_per_s\": {:.1},\n", p.records_per_s));
            out.push_str(&format!("      \"p50_handshake_ms\": {:.3},\n", p.p50_handshake_ms));
            out.push_str(&format!("      \"p99_handshake_ms\": {:.3},\n", p.p99_handshake_ms));
            out.push_str(&format!("      \"bytes_per_session\": {:.1},\n", p.bytes_per_session));
            out.push_str(&format!("      \"wall_ms\": {:.1}\n", p.wall_ms));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"allocs_per_record_steady\": {:.3},\n",
            self.allocs_per_record_steady
        ));
        out.push_str("  \"determinism\": {\n");
        out.push_str(&format!("    \"seed\": {},\n", self.determinism_seed));
        out.push_str(&format!("    \"sessions\": {},\n", self.determinism_sessions));
        out.push_str(&format!("    \"identical\": {}\n", self.determinism_identical));
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// Virtual percentile (`p` in 0..=100) over handshake latencies,
/// reported in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() - 1) * p / 100;
    sorted_ns[idx] as f64 / 1e6
}

/// Run one fleet of `n` sessions through a [`SessionHost`] over the
/// network simulator under churn, and report wall-clock capacity and
/// virtual-time latency numbers.
pub fn bench_scale_point(n: usize, seed: u64) -> ScalePoint {
    let config = scale_load(n, seed);
    let mut generator = LoadGenerator::new(config);
    let mut host = SessionHost::new(NetSubstrate::new(seed), HostConfig::default());
    let t0 = Instant::now();
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(3_600)))
        .expect("scale fleet drains");
    let wall = t0.elapsed();
    let counters = host.counters();
    assert_eq!(counters.completed as usize, n, "every session must complete its workload");
    assert_eq!(counters.handshake_latencies_ns.len(), n);

    let mut latencies = counters.handshake_latencies_ns.clone();
    latencies.sort_unstable();
    let wall_s = wall.as_secs_f64();
    ScalePoint {
        n,
        handshakes_per_s: n as f64 / wall_s,
        records_per_s: (counters.exchanges_completed * 2) as f64 / wall_s,
        p50_handshake_ms: percentile_ms(&latencies, 50),
        p99_handshake_ms: percentile_ms(&latencies, 99),
        bytes_per_session: counters.bytes_moved as f64 / n as f64,
        wall_ms: wall_s * 1e3,
    }
}

/// FNV-1a over every telemetry event's JSON line — a trace
/// fingerprint that is equal iff the traces are bit-identical.
fn trace_fingerprint(events: &[mbtls_telemetry::Event]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for event in events {
        for byte in to_json_line(event).bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Replay one seeded churn run twice and check that the telemetry
/// traces are bit-identical and the counters equal. Returns the trace
/// fingerprint and the verdict.
pub fn determinism_probe(sessions: usize, seed: u64) -> (u64, bool) {
    let run = || {
        let recorder = Recorder::new();
        let mut generator = LoadGenerator::new(scale_load(sessions, seed));
        let mut host = SessionHost::new(NetSubstrate::new(seed), HostConfig::default());
        host.set_telemetry(recorder.sink());
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(3_600)))
            .expect("determinism fleet drains");
        (trace_fingerprint(&recorder.snapshot()), host.counters().clone())
    };
    let (fingerprint_a, counters_a) = run();
    let (fingerprint_b, counters_b) = run();
    (fingerprint_a, fingerprint_a == fingerprint_b && counters_a == counters_b)
}

/// A warmed-up single-session host over in-memory pipes, parked in
/// its established phase with a deep exchange quota. `max_pump_passes
/// = 1` makes every [`SessionHost::step`] one bounded pump, so the
/// `scale_report` binary can snapshot its allocation counter around
/// [`Self::pump_exchanges`] and count host-loop allocations per
/// record at steady state.
pub struct SteadyStateHost {
    host: SessionHost<PipeSubstrate>,
}

impl SteadyStateHost {
    /// Build a one-session host and drive it through the handshake
    /// plus `warm_exchanges` round trips, so the slab, wheel, buffer
    /// pool, ready queue, and every party's record buffers reach
    /// their final capacities.
    pub fn warmed_up(warm_exchanges: u64) -> Self {
        let mut generator = LoadGenerator::new(LoadConfig {
            sessions: 1,
            middlebox_every: 0,
            workload: Workload { request_len: 256, response_len: 1024, exchanges: u32::MAX },
            ..scale_load(1, 0x5CA1E)
        });
        let mut host = SessionHost::new(
            PipeSubstrate::new(),
            HostConfig { max_pump_passes: 1, ..HostConfig::default() },
        );
        host.open(generator.make_spec()).expect("open steady-state session");
        let mut steady = SteadyStateHost { host };
        steady.pump_exchanges(warm_exchanges);
        steady
    }

    /// Drive the event loop until `more` additional exchanges
    /// complete (each is one request record and one response record).
    pub fn pump_exchanges(&mut self, more: u64) {
        let target = self.host.counters().exchanges_completed + more;
        while self.host.counters().exchanges_completed < target {
            let progressed = self.host.step().expect("steady-state step");
            assert!(progressed, "steady-state session parked before its exchange quota");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_report_is_valid_json_shape() {
        let report = ScaleReport {
            smoke: true,
            points: vec![bench_scale_point(4, 13), bench_scale_point(8, 13)],
            allocs_per_record_steady: 0.0,
            determinism_seed: 13,
            determinism_sessions: 4,
            determinism_identical: true,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"handshakes_per_s\""));
        assert!(json.contains("\"records_per_s\""));
        assert!(json.contains("\"p99_handshake_ms\""));
        assert!(json.contains("\"determinism\""));
        // Balanced braces and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }") && !json.contains(",\n}"));
    }

    #[test]
    fn determinism_probe_verdict_holds() {
        let (fingerprint, identical) = determinism_probe(5, 29);
        assert!(identical, "seeded replay must be bit-identical");
        assert_ne!(fingerprint, 0);
    }

    #[test]
    fn steady_state_host_keeps_exchanging() {
        let mut steady = SteadyStateHost::warmed_up(4);
        steady.pump_exchanges(3);
    }
}

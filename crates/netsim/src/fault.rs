//! Seeded fault injection for links.
//!
//! Mirrors the fault options smoltcp's examples expose (drop chance,
//! corrupt chance, rate limiting), adapted to a reliable-stream world:
//! a dropped or checksum-corrupted segment is *recovered* by the
//! transport (we model TCP), so its effect is added retransmission
//! delay rather than data loss. Undetected corruption — the case TLS
//! record MACs exist for — is delivered only through the adversary
//! API, never by random faults.

use mbtls_crypto::rng::CryptoRng;

use crate::time::{Duration, SimTime};

/// Fault configuration for one link direction.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability a segment is dropped (then retransmitted).
    pub drop_chance: f64,
    /// Probability a segment is corrupted in a checksum-detectable
    /// way (then retransmitted).
    pub corrupt_chance: f64,
    /// Retransmission timeout charged per recovered segment.
    pub rto: Duration,
    /// Maximum consecutive retransmissions before the connection is
    /// declared dead.
    pub max_retries: u32,
    /// Silent-loss window `[start, end)`: every write scheduled inside
    /// it vanishes without retransmission or reset — the path
    /// blackholes traffic and neither endpoint learns anything. This
    /// is the one fault the retransmitting-transport model cannot
    /// recover from, so it is what handshake timeout logic must catch.
    pub blackhole: Option<(SimTime, SimTime)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            rto: Duration::from_millis(200),
            max_retries: 8,
            blackhole: None,
        }
    }
}

impl FaultConfig {
    /// A lossless link.
    pub fn none() -> Self {
        Self::default()
    }

    /// A lossy link with the given drop probability.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultConfig {
            drop_chance,
            ..Self::default()
        }
    }

    /// An otherwise-lossless link that silently discards everything
    /// written during `[start, end)`.
    pub fn blackhole_window(start: SimTime, end: SimTime) -> Self {
        FaultConfig {
            blackhole: Some((start, end)),
            ..Self::default()
        }
    }
}

/// Outcome of pushing one segment through the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Extra delay accumulated by retransmissions.
    pub extra_delay: Duration,
    /// Number of retransmissions that occurred.
    pub retries: u32,
    /// True if the segment exceeded `max_retries` (connection dead).
    pub gave_up: bool,
}

/// Stateful per-link fault injector.
pub struct FaultInjector {
    config: FaultConfig,
    rng: CryptoRng,
    /// Total segments pushed through the injector.
    pub segments: u64,
    /// Segments dropped at least once.
    pub dropped: u64,
    /// Segments corrupted (checksum-detected) at least once.
    pub corrupted: u64,
    /// Writes swallowed whole by the blackhole window.
    pub blackholed: u64,
}

impl FaultInjector {
    /// Build from config and a forked RNG.
    pub fn new(config: FaultConfig, rng: CryptoRng) -> Self {
        FaultInjector {
            config,
            rng,
            segments: 0,
            dropped: 0,
            corrupted: 0,
            blackholed: 0,
        }
    }

    /// True if a write at `now` falls inside the configured blackhole
    /// window and must be silently discarded. Counts the swallow.
    pub fn swallow(&mut self, now: SimTime) -> bool {
        match self.config.blackhole {
            Some((start, end)) if now >= start && now < end => {
                self.blackholed += 1;
                true
            }
            _ => false,
        }
    }

    /// Run one segment through the loss model. Each attempt may be
    /// dropped or corrupted; every failed attempt costs one RTO.
    pub fn apply(&mut self) -> FaultOutcome {
        self.segments += 1;
        let mut retries = 0u32;
        loop {
            let roll = self.rng.gen_f64();
            if roll < self.config.drop_chance {
                self.dropped += 1;
            } else if roll < self.config.drop_chance + self.config.corrupt_chance {
                self.corrupted += 1;
            } else {
                return FaultOutcome {
                    extra_delay: self.config.rto.times(u64::from(retries)),
                    retries,
                    gave_up: false,
                };
            }
            retries += 1;
            if retries > self.config.max_retries {
                return FaultOutcome {
                    extra_delay: self.config.rto.times(u64::from(retries)),
                    retries,
                    gave_up: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_never_delays() {
        let mut inj = FaultInjector::new(FaultConfig::none(), CryptoRng::from_seed(1));
        for _ in 0..1000 {
            let out = inj.apply();
            assert_eq!(out.extra_delay, Duration::ZERO);
            assert_eq!(out.retries, 0);
            assert!(!out.gave_up);
        }
        assert_eq!(inj.dropped, 0);
    }

    #[test]
    fn lossy_link_retries_and_recovers() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.15), CryptoRng::from_seed(2));
        let mut any_retry = false;
        for _ in 0..1000 {
            let out = inj.apply();
            if out.retries > 0 {
                any_retry = true;
                assert_eq!(out.extra_delay, Duration::from_millis(200).times(u64::from(out.retries)));
            }
        }
        assert!(any_retry);
        assert!(inj.dropped > 50, "expected ~15% drops, got {}", inj.dropped);
        assert!(inj.dropped < 400);
    }

    #[test]
    fn hopeless_link_gives_up() {
        let cfg = FaultConfig {
            drop_chance: 1.0,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, CryptoRng::from_seed(3));
        let out = inj.apply();
        assert!(out.gave_up);
        assert_eq!(out.retries, 4);
    }

    #[test]
    fn corruption_counted_separately() {
        let cfg = FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.3,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, CryptoRng::from_seed(4));
        for _ in 0..500 {
            inj.apply();
        }
        assert!(inj.corrupted > 50);
        assert_eq!(inj.dropped, 0);
    }

    #[test]
    fn blackhole_window_is_half_open() {
        let cfg = FaultConfig::blackhole_window(SimTime(100), SimTime(200));
        let mut inj = FaultInjector::new(cfg, CryptoRng::from_seed(5));
        assert!(!inj.swallow(SimTime(99)));
        assert!(inj.swallow(SimTime(100)));
        assert!(inj.swallow(SimTime(199)));
        assert!(!inj.swallow(SimTime(200)));
        assert_eq!(inj.blackholed, 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig::lossy(0.2), CryptoRng::from_seed(seed));
            (0..100).map(|_| inj.apply().retries).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

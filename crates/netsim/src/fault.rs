//! Seeded fault injection for links.
//!
//! Mirrors the fault options smoltcp's examples expose (drop chance,
//! corrupt chance, rate limiting), adapted to a reliable-stream world:
//! a dropped or checksum-corrupted segment is *recovered* by the
//! transport (we model TCP), so its effect is added retransmission
//! delay rather than data loss. Undetected corruption — the case TLS
//! record MACs exist for — is delivered only through the adversary
//! API, never by random faults.

use mbtls_crypto::rng::CryptoRng;

use crate::time::Duration;

/// Fault configuration for one link direction.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability a segment is dropped (then retransmitted).
    pub drop_chance: f64,
    /// Probability a segment is corrupted in a checksum-detectable
    /// way (then retransmitted).
    pub corrupt_chance: f64,
    /// Retransmission timeout charged per recovered segment.
    pub rto: Duration,
    /// Maximum consecutive retransmissions before the connection is
    /// declared dead.
    pub max_retries: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            rto: Duration::from_millis(200),
            max_retries: 8,
        }
    }
}

impl FaultConfig {
    /// A lossless link.
    pub fn none() -> Self {
        Self::default()
    }

    /// A lossy link with the given drop probability.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultConfig {
            drop_chance,
            ..Self::default()
        }
    }
}

/// Outcome of pushing one segment through the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Extra delay accumulated by retransmissions.
    pub extra_delay: Duration,
    /// Number of retransmissions that occurred.
    pub retries: u32,
    /// True if the segment exceeded `max_retries` (connection dead).
    pub gave_up: bool,
}

/// Stateful per-link fault injector.
pub struct FaultInjector {
    config: FaultConfig,
    rng: CryptoRng,
    /// Total segments pushed through the injector.
    pub segments: u64,
    /// Segments dropped at least once.
    pub dropped: u64,
    /// Segments corrupted (checksum-detected) at least once.
    pub corrupted: u64,
}

impl FaultInjector {
    /// Build from config and a forked RNG.
    pub fn new(config: FaultConfig, rng: CryptoRng) -> Self {
        FaultInjector {
            config,
            rng,
            segments: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Run one segment through the loss model. Each attempt may be
    /// dropped or corrupted; every failed attempt costs one RTO.
    pub fn apply(&mut self) -> FaultOutcome {
        self.segments += 1;
        let mut retries = 0u32;
        loop {
            let roll = self.rng.gen_f64();
            if roll < self.config.drop_chance {
                self.dropped += 1;
            } else if roll < self.config.drop_chance + self.config.corrupt_chance {
                self.corrupted += 1;
            } else {
                return FaultOutcome {
                    extra_delay: self.config.rto.times(u64::from(retries)),
                    retries,
                    gave_up: false,
                };
            }
            retries += 1;
            if retries > self.config.max_retries {
                return FaultOutcome {
                    extra_delay: self.config.rto.times(u64::from(retries)),
                    retries,
                    gave_up: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_never_delays() {
        let mut inj = FaultInjector::new(FaultConfig::none(), CryptoRng::from_seed(1));
        for _ in 0..1000 {
            let out = inj.apply();
            assert_eq!(out.extra_delay, Duration::ZERO);
            assert_eq!(out.retries, 0);
            assert!(!out.gave_up);
        }
        assert_eq!(inj.dropped, 0);
    }

    #[test]
    fn lossy_link_retries_and_recovers() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.15), CryptoRng::from_seed(2));
        let mut any_retry = false;
        for _ in 0..1000 {
            let out = inj.apply();
            if out.retries > 0 {
                any_retry = true;
                assert_eq!(out.extra_delay, Duration::from_millis(200).times(u64::from(out.retries)));
            }
        }
        assert!(any_retry);
        assert!(inj.dropped > 50, "expected ~15% drops, got {}", inj.dropped);
        assert!(inj.dropped < 400);
    }

    #[test]
    fn hopeless_link_gives_up() {
        let cfg = FaultConfig {
            drop_chance: 1.0,
            max_retries: 3,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, CryptoRng::from_seed(3));
        let out = inj.apply();
        assert!(out.gave_up);
        assert_eq!(out.retries, 4);
    }

    #[test]
    fn corruption_counted_separately() {
        let cfg = FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.3,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, CryptoRng::from_seed(4));
        for _ in 0..500 {
            inj.apply();
        }
        assert!(inj.corrupted > 50);
        assert_eq!(inj.dropped, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultConfig::lossy(0.2), CryptoRng::from_seed(seed));
            (0..100).map(|_| inj.apply().retries).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

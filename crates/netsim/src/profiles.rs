//! Experiment topologies: the Table 2 client-network population and
//! the Figure 6 inter-datacenter latency matrix.

use crate::fault::FaultConfig;
use crate::filter::FilterPolicy;
use crate::time::Duration;
use mbtls_crypto::rng::CryptoRng;

/// The network categories from the paper's Table 2, with the number
/// of distinct vantage sites measured in each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkType {
    /// Corporate networks with managed egress.
    Enterprise,
    /// Campus networks.
    University,
    /// Home broadband.
    Residential,
    /// Public Wi-Fi.
    Public,
    /// Cellular carriers.
    Mobile,
    /// Web-hosting providers.
    Hosting,
    /// Colocation facilities.
    Colocation,
    /// Cloud data centers.
    DataCenter,
    /// Networks whois could not classify.
    Uncategorized,
}

impl NetworkType {
    /// All categories in Table 2 order.
    pub const ALL: [NetworkType; 9] = [
        NetworkType::Enterprise,
        NetworkType::University,
        NetworkType::Residential,
        NetworkType::Public,
        NetworkType::Mobile,
        NetworkType::Hosting,
        NetworkType::Colocation,
        NetworkType::DataCenter,
        NetworkType::Uncategorized,
    ];

    /// Number of distinct sites of this type in the paper's Table 2.
    pub fn site_count(self) -> usize {
        match self {
            NetworkType::Enterprise => 6,
            NetworkType::University => 11,
            NetworkType::Residential => 34,
            NetworkType::Public => 1,
            NetworkType::Mobile => 2,
            NetworkType::Hosting => 56,
            NetworkType::Colocation => 35,
            NetworkType::DataCenter => 19,
            NetworkType::Uncategorized => 77,
        }
    }

    /// Human-readable label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            NetworkType::Enterprise => "Enterprise",
            NetworkType::University => "University",
            NetworkType::Residential => "Residential",
            NetworkType::Public => "Public",
            NetworkType::Mobile => "Mobile",
            NetworkType::Hosting => "Hosting",
            NetworkType::Colocation => "Colocation Services",
            NetworkType::DataCenter => "Data Center",
            NetworkType::Uncategorized => "Uncategorized",
        }
    }
}

/// One simulated client network for the viability experiment.
#[derive(Debug, Clone)]
pub struct ClientNetworkProfile {
    /// Category (Table 2 row).
    pub network_type: NetworkType,
    /// One-way latency from this network to the data center hosting
    /// the middlebox and server.
    pub latency: Duration,
    /// Link fault characteristics.
    pub faults: FaultConfig,
    /// Filters deployed on the path out of this network. Drawn from
    /// the behaviours observed in deployed equipment — none of which
    /// drop unknown TLS record types (the paper's Table 2 finding).
    pub filters: Vec<FilterPolicy>,
}

/// Deployed-filter mix per network type: (policy, weight). Enterprise
/// and university networks inspect more; residential and hosting
/// networks mostly don't.
fn filter_mix(t: NetworkType) -> &'static [(FilterPolicy, f64)] {
    use FilterPolicy::*;
    match t {
        NetworkType::Enterprise => &[(ClientHelloInspect, 0.6), (TlsHeaderSanity, 0.3), (PortOnly, 0.1)],
        NetworkType::University => &[(ClientHelloInspect, 0.4), (TlsHeaderSanity, 0.3), (PortOnly, 0.3)],
        NetworkType::Residential => &[(PortOnly, 0.8), (TlsHeaderSanity, 0.2)],
        NetworkType::Public => &[(ClientHelloInspect, 0.5), (TlsHeaderSanity, 0.5)],
        NetworkType::Mobile => &[(TlsHeaderSanity, 0.6), (ClientHelloInspect, 0.4)],
        NetworkType::Hosting => &[(PortOnly, 0.9), (TlsHeaderSanity, 0.1)],
        NetworkType::Colocation => &[(PortOnly, 0.8), (TlsHeaderSanity, 0.2)],
        NetworkType::DataCenter => &[(PortOnly, 0.95), (TlsHeaderSanity, 0.05)],
        NetworkType::Uncategorized => &[(PortOnly, 0.6), (TlsHeaderSanity, 0.25), (ClientHelloInspect, 0.15)],
    }
}

/// Latency range (one-way, ms) per network type.
fn latency_range_ms(t: NetworkType) -> (u64, u64) {
    match t {
        NetworkType::Enterprise => (5, 40),
        NetworkType::University => (5, 50),
        NetworkType::Residential => (10, 80),
        NetworkType::Public => (15, 90),
        NetworkType::Mobile => (30, 120),
        NetworkType::Hosting => (2, 60),
        NetworkType::Colocation => (2, 50),
        NetworkType::DataCenter => (1, 40),
        NetworkType::Uncategorized => (5, 150),
    }
}

/// Loss probability per network type (per segment).
fn drop_chance(t: NetworkType) -> f64 {
    match t {
        NetworkType::Mobile => 0.01,
        NetworkType::Residential | NetworkType::Public => 0.005,
        NetworkType::Uncategorized => 0.003,
        _ => 0.001,
    }
}

/// Generate the full 241-site population matching Table 2's counts.
pub fn table2_population(rng: &mut CryptoRng) -> Vec<ClientNetworkProfile> {
    let mut sites = Vec::with_capacity(241);
    for t in NetworkType::ALL {
        for _ in 0..t.site_count() {
            let (lo, hi) = latency_range_ms(t);
            let latency = Duration::from_millis(lo + rng.gen_range(hi - lo + 1));
            // Draw 1-2 filters from the type's mix.
            let n_filters = 1 + usize::from(rng.gen_f64() < 0.3);
            let mut filters = Vec::with_capacity(n_filters);
            for _ in 0..n_filters {
                filters.push(weighted_pick(filter_mix(t), rng));
            }
            sites.push(ClientNetworkProfile {
                network_type: t,
                latency,
                faults: FaultConfig::lossy(drop_chance(t)),
                filters,
            });
        }
    }
    sites
}

fn weighted_pick(mix: &[(FilterPolicy, f64)], rng: &mut CryptoRng) -> FilterPolicy {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_f64() * total;
    for (policy, w) in mix {
        if roll < *w {
            return *policy;
        }
        roll -= w;
    }
    mix.last().unwrap().0
}

/// The four Azure regions used in the paper's Figure 6 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Azure Australia.
    Australia,
    /// Azure US West.
    UsWest,
    /// Azure US East.
    UsEast,
    /// Azure UK.
    Uk,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 4] = [Region::Australia, Region::UsWest, Region::UsEast, Region::Uk];

    /// Short label used in the figure's path names.
    pub fn label(self) -> &'static str {
        match self {
            Region::Australia => "au",
            Region::UsWest => "usw",
            Region::UsEast => "use",
            Region::Uk => "uk",
        }
    }
}

/// One-way inter-datacenter latency, milliseconds. Values are of the
/// order measured between Azure regions (public RTT measurements /2).
pub fn interdc_latency(a: Region, b: Region) -> Duration {
    use Region::*;
    let ms = match (a, b) {
        (Australia, Australia) | (UsWest, UsWest) | (UsEast, UsEast) | (Uk, Uk) => 1,
        (Australia, UsWest) | (UsWest, Australia) => 70,
        (Australia, UsEast) | (UsEast, Australia) => 100,
        (Australia, Uk) | (Uk, Australia) => 140,
        (UsWest, UsEast) | (UsEast, UsWest) => 35,
        (UsWest, Uk) | (Uk, UsWest) => 70,
        (UsEast, Uk) | (Uk, UsEast) => 40,
    };
    Duration::from_millis(ms)
}

/// All 12 client-middlebox-server permutations over distinct regions
/// ... but matching the paper's figure, the 12 ordered triples with no
/// two VMs in the same DC, keyed by their "client-mbox-server" label.
pub fn figure6_paths() -> Vec<(String, Region, Region, Region)> {
    let mut out = Vec::new();
    for c in Region::ALL {
        for m in Region::ALL {
            for s in Region::ALL {
                if c != m && m != s && c != s {
                    out.push((
                        format!("{}-{}-{}", c.label(), m.label(), s.label()),
                        c,
                        m,
                        s,
                    ));
                }
            }
        }
    }
    // 4*3*2 = 24 ordered triples; the paper plots 12 (each unordered
    // client/server pair once). Keep the 12 where the client label
    // sorts before the server label to match the figure's x-axis
    // density, then sort by total path latency like the figure.
    out.retain(|(_, c, _, s)| c.label() <= s.label());
    out.sort_by_key(|(_, c, m, s)| interdc_latency(*c, *m).0 + interdc_latency(*m, *s).0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_matches_table2_counts() {
        let mut rng = CryptoRng::from_seed(1);
        let pop = table2_population(&mut rng);
        assert_eq!(pop.len(), 241);
        for t in NetworkType::ALL {
            let n = pop.iter().filter(|p| p.network_type == t).count();
            assert_eq!(n, t.site_count(), "{:?}", t);
        }
    }

    #[test]
    fn population_never_uses_strict_filters() {
        // The paper observed zero networks dropping mbTLS handshakes;
        // accordingly the deployed-filter population excludes the
        // hypothetical strict policy.
        let mut rng = CryptoRng::from_seed(2);
        for site in table2_population(&mut rng) {
            assert!(!site.filters.contains(&FilterPolicy::StrictContentTypes));
            assert!(!site.filters.is_empty());
        }
    }

    #[test]
    fn latencies_in_declared_ranges() {
        let mut rng = CryptoRng::from_seed(3);
        for site in table2_population(&mut rng) {
            let (lo, hi) = latency_range_ms(site.network_type);
            let ms = site.latency.0 / 1_000_000;
            assert!(ms >= lo && ms <= hi, "{:?}: {ms}ms", site.network_type);
        }
    }

    #[test]
    fn interdc_matrix_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(interdc_latency(a, b), interdc_latency(b, a));
            }
        }
    }

    #[test]
    fn figure6_has_twelve_paths() {
        let paths = figure6_paths();
        assert_eq!(paths.len(), 12);
        // All distinct regions within each path.
        for (_, c, m, s) in &paths {
            assert_ne!(c, m);
            assert_ne!(m, s);
            assert_ne!(c, s);
        }
        // Sorted by total latency (non-decreasing).
        let totals: Vec<u64> = paths
            .iter()
            .map(|(_, c, m, s)| interdc_latency(*c, *m).0 + interdc_latency(*m, *s).0)
            .collect();
        assert!(totals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_population() {
        let mut r1 = CryptoRng::from_seed(9);
        let mut r2 = CryptoRng::from_seed(9);
        let p1 = table2_population(&mut r1);
        let p2 = table2_population(&mut r2);
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.filters, b.filters);
        }
    }
}

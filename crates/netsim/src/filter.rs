//! TLS-aware on-path filter models for the Table 2 handshake-viability
//! experiment.
//!
//! The paper asks whether real-world firewalls, traffic normalizers,
//! and IDSes drop mbTLS handshakes, which carry a new TLS extension
//! (MiddleboxSupport) and new record content types (Encapsulated = 30,
//! KeyMaterial = 31, MiddleboxAnnouncement = 32). The finding was that
//! none of 241 networks blocked them — deployed filters either don't
//! inspect TLS past the ClientHello or tolerate unknown record types,
//! as the TLS spec requires endpoints (and therefore well-behaved
//! normalizers) to.
//!
//! This module models the filter behaviours that exist in practice so
//! the experiment exercises the same compatibility surface:
//!
//! * [`FilterPolicy::PortOnly`] — L4 firewall; never looks inside.
//! * [`FilterPolicy::TlsHeaderSanity`] — checks the record layer is
//!   structurally valid TLS (version plausibility, length bounds) but
//!   passes unknown content types.
//! * [`FilterPolicy::ClientHelloInspect`] — parses the ClientHello
//!   (SNI-filter style), ignoring unknown extensions per RFC 5246.
//! * [`FilterPolicy::StrictContentTypes`] — a hypothetical normalizer
//!   that drops unknown content types. *Not observed in the paper's
//!   measurements*; included so tests can show what over-strict
//!   filtering would do.

/// Filter verdict for a chunk of stream data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Forward the bytes.
    Pass,
    /// Kill the connection.
    Drop,
}

/// Filter behaviour class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterPolicy {
    /// Layer-4 only: allow 443, never inspect payloads.
    PortOnly,
    /// Validate TLS record headers; tolerate unknown content types.
    TlsHeaderSanity,
    /// Parse the ClientHello, skipping unknown extensions.
    ClientHelloInspect,
    /// Drop records whose content type is not a legacy TLS type
    /// (20..=23). Hypothetical worst case.
    StrictContentTypes,
}

/// Maximum TLS record payload (2^14 plus AEAD expansion allowance,
/// per RFC 5246 §6.2.3).
const MAX_RECORD_LEN: usize = (1 << 14) + 2048;

/// A stateful stream filter: feed it the bytes flowing in one
/// direction; it reassembles TLS records and applies its policy.
pub struct TlsStreamFilter {
    policy: FilterPolicy,
    buf: Vec<u8>,
    /// Records inspected so far.
    pub records_seen: u64,
    /// True once the filter decided to kill the connection.
    pub dropped: bool,
    /// True after the first ClientHello was parsed (for
    /// `ClientHelloInspect`, later records are passed through).
    saw_client_hello: bool,
}

impl TlsStreamFilter {
    /// New filter with the given policy.
    pub fn new(policy: FilterPolicy) -> Self {
        TlsStreamFilter {
            policy,
            buf: Vec::new(),
            records_seen: 0,
            dropped: false,
            saw_client_hello: false,
        }
    }

    /// The policy this filter applies.
    pub fn policy(&self) -> FilterPolicy {
        self.policy
    }

    /// Inspect the next bytes in the stream. Returns the action for
    /// this chunk; once `Drop` is returned the filter stays dropped.
    pub fn inspect(&mut self, data: &[u8]) -> FilterAction {
        if self.dropped {
            return FilterAction::Drop;
        }
        if self.policy == FilterPolicy::PortOnly {
            return FilterAction::Pass;
        }
        self.buf.extend_from_slice(data);
        while self.buf.len() >= 5 {
            let content_type = self.buf[0];
            let version_major = self.buf[1];
            let length = usize::from(u16::from_be_bytes([self.buf[3], self.buf[4]]));
            // Structural sanity applied by every inspecting policy.
            if version_major != 3 || length > MAX_RECORD_LEN {
                self.dropped = true;
                return FilterAction::Drop;
            }
            if self.buf.len() < 5 + length {
                break; // incomplete record; wait for more bytes
            }
            self.records_seen += 1;
            let payload: Vec<u8> = self.buf[5..5 + length].to_vec();
            self.buf.drain(..5 + length);

            match self.policy {
                FilterPolicy::PortOnly => unreachable!("handled above"),
                FilterPolicy::TlsHeaderSanity => {
                    // Unknown content types tolerated (RFC-required
                    // behaviour for conservative normalizers).
                }
                FilterPolicy::ClientHelloInspect => {
                    if !self.saw_client_hello && content_type == 22 {
                        if !client_hello_parses(&payload) {
                            self.dropped = true;
                            return FilterAction::Drop;
                        }
                        self.saw_client_hello = true;
                    }
                }
                FilterPolicy::StrictContentTypes => {
                    if !(20..=23).contains(&content_type) {
                        self.dropped = true;
                        return FilterAction::Drop;
                    }
                }
            }
        }
        FilterAction::Pass
    }
}

/// Minimal ClientHello structural parse: handshake type 1, internally
/// consistent lengths, extensions block walkable (unknown extension
/// types are fine). Models SNI-extracting middleboxes.
fn client_hello_parses(payload: &[u8]) -> bool {
    // Handshake header: type(1) + length(3).
    if payload.len() < 4 || payload[0] != 1 {
        // Not a ClientHello: a conservative filter passes it.
        return true;
    }
    let hs_len = usize::from(payload[1]) << 16 | usize::from(payload[2]) << 8 | usize::from(payload[3]);
    if payload.len() < 4 + hs_len {
        // Spans records; real SNI filters give up and pass.
        return true;
    }
    let body = &payload[4..4 + hs_len];
    // client_version(2) random(32) session_id(1+n).
    if body.len() < 35 {
        return false;
    }
    let mut at = 34;
    let sid_len = usize::from(body[at]);
    at += 1 + sid_len;
    // cipher_suites(2+n).
    if body.len() < at + 2 {
        return false;
    }
    let cs_len = usize::from(u16::from_be_bytes([body[at], body[at + 1]]));
    at += 2 + cs_len;
    // compression(1+n).
    if body.len() < at + 1 {
        return false;
    }
    let comp_len = usize::from(body[at]);
    at += 1 + comp_len;
    if body.len() == at {
        return true; // no extensions
    }
    // extensions(2+n), each: type(2) len(2) data.
    if body.len() < at + 2 {
        return false;
    }
    let ext_total = usize::from(u16::from_be_bytes([body[at], body[at + 1]]));
    at += 2;
    if body.len() != at + ext_total {
        return false;
    }
    let mut walked = 0usize;
    while walked < ext_total {
        if ext_total - walked < 4 {
            return false;
        }
        let elen = usize::from(u16::from_be_bytes([body[at + walked + 2], body[at + walked + 3]]));
        walked += 4 + elen;
    }
    walked == ext_total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a TLS record with the given content type.
    fn record(ct: u8, payload: &[u8]) -> Vec<u8> {
        let mut r = vec![ct, 3, 3];
        r.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        r.extend_from_slice(payload);
        r
    }

    /// A structurally valid minimal ClientHello with one unknown
    /// extension (mimicking MiddleboxSupport).
    fn client_hello_with_unknown_extension() -> Vec<u8> {
        let mut body = vec![3u8, 3];
        body.extend_from_slice(&[0u8; 32]); // random
        body.push(0); // empty session id
        body.extend_from_slice(&[0, 2, 0x13, 0x01]); // one cipher suite
        body.extend_from_slice(&[1, 0]); // null compression
        // extensions: one unknown type 0xff77 with 3 bytes.
        body.extend_from_slice(&[0, 7, 0xff, 0x77, 0, 3, 9, 9, 9]);
        let mut hs = vec![1u8];
        hs.push(0);
        hs.extend_from_slice(&(body.len() as u16).to_be_bytes());
        hs.extend_from_slice(&body);
        record(22, &hs)
    }

    #[test]
    fn port_only_passes_anything() {
        let mut f = TlsStreamFilter::new(FilterPolicy::PortOnly);
        assert_eq!(f.inspect(b"complete garbage, not TLS at all"), FilterAction::Pass);
    }

    #[test]
    fn header_sanity_passes_new_content_types() {
        let mut f = TlsStreamFilter::new(FilterPolicy::TlsHeaderSanity);
        // mbTLS record types: 30 (Encapsulated), 31, 32.
        for ct in [30u8, 31, 32] {
            assert_eq!(f.inspect(&record(ct, b"payload")), FilterAction::Pass, "ct {ct}");
        }
        assert_eq!(f.records_seen, 3);
    }

    #[test]
    fn header_sanity_drops_non_tls() {
        let mut f = TlsStreamFilter::new(FilterPolicy::TlsHeaderSanity);
        // Version byte wrong.
        assert_eq!(f.inspect(&[22, 9, 9, 0, 1, 0]), FilterAction::Drop);
        assert!(f.dropped);
    }

    #[test]
    fn header_sanity_drops_oversized_records() {
        let mut f = TlsStreamFilter::new(FilterPolicy::TlsHeaderSanity);
        let mut bad = vec![23u8, 3, 3];
        bad.extend_from_slice(&0xFFFFu16.to_be_bytes());
        assert_eq!(f.inspect(&bad), FilterAction::Drop);
    }

    #[test]
    fn client_hello_inspect_tolerates_unknown_extensions() {
        let mut f = TlsStreamFilter::new(FilterPolicy::ClientHelloInspect);
        assert_eq!(
            f.inspect(&client_hello_with_unknown_extension()),
            FilterAction::Pass
        );
        // Later mbTLS records also pass.
        assert_eq!(f.inspect(&record(30, b"encapsulated")), FilterAction::Pass);
    }

    #[test]
    fn client_hello_inspect_drops_malformed_hello() {
        let mut f = TlsStreamFilter::new(FilterPolicy::ClientHelloInspect);
        // Claims extensions length beyond the body.
        let mut body = vec![3u8, 3];
        body.extend_from_slice(&[0u8; 32]);
        body.push(0);
        body.extend_from_slice(&[0, 2, 0x13, 0x01]);
        body.extend_from_slice(&[1, 0]);
        body.extend_from_slice(&[0, 99]); // bogus extensions length
        let mut hs = vec![1u8, 0];
        hs.extend_from_slice(&(body.len() as u16).to_be_bytes());
        hs.extend_from_slice(&body);
        assert_eq!(f.inspect(&record(22, &hs)), FilterAction::Drop);
    }

    #[test]
    fn strict_filter_would_block_mbtls() {
        let mut f = TlsStreamFilter::new(FilterPolicy::StrictContentTypes);
        assert_eq!(f.inspect(&record(22, b"hello")), FilterAction::Pass);
        assert_eq!(f.inspect(&record(30, b"encapsulated")), FilterAction::Drop);
    }

    #[test]
    fn partial_records_buffered_across_chunks() {
        let mut f = TlsStreamFilter::new(FilterPolicy::TlsHeaderSanity);
        let rec = record(22, &[0u8; 100]);
        assert_eq!(f.inspect(&rec[..3]), FilterAction::Pass);
        assert_eq!(f.records_seen, 0);
        assert_eq!(f.inspect(&rec[3..50]), FilterAction::Pass);
        assert_eq!(f.inspect(&rec[50..]), FilterAction::Pass);
        assert_eq!(f.records_seen, 1);
    }

    #[test]
    fn drop_is_sticky() {
        let mut f = TlsStreamFilter::new(FilterPolicy::StrictContentTypes);
        assert_eq!(f.inspect(&record(30, b"x")), FilterAction::Drop);
        assert_eq!(f.inspect(&record(23, b"fine")), FilterAction::Drop);
    }
}

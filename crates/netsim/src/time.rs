//! Virtual time: nanosecond-resolution instants and durations.

/// A point in virtual time, nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant plus span.
    pub fn plus(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Span since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// As floating-point milliseconds (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// As floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Sum of spans.
    pub fn plus(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }

    /// Scale by an integer factor.
    pub fn times(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO.plus(Duration::from_millis(5));
        assert_eq!(t.0, 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
        assert_eq!(Duration::from_micros(3).plus(Duration::from_nanos(2)).0, 3_002);
        assert_eq!(Duration::from_millis(2).times(3), Duration::from_millis(6));
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(1).0, 1_000_000_000);
        assert!((SimTime(1_500_000).as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((Duration::from_millis(250).as_millis_f64() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }
}

//! Nodes, links, and reliable stream connections.
//!
//! The simulator owns all connection state in arenas; experiment code
//! holds plain `Copy` handles ([`NodeId`], [`ConnId`]) and moves bytes
//! with [`Network::send`] / [`Network::recv`]. Virtual time advances
//! explicitly via [`Network::advance_to`] or by asking for the next
//! interesting instant with [`Network::next_event_time`], so driver
//! loops are simple deterministic fixpoints.
//!
//! Adversary capabilities from the paper's threat model (§3.1) are
//! first-class: any connection can be tapped (observe every chunk),
//! injected into, tampered with, or cut — the Table 1 attacks are
//! built from these hooks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mbtls_crypto::rng::CryptoRng;
use mbtls_telemetry::{EventKind, Party, SharedSink};

use crate::fault::{FaultConfig, FaultInjector};
use crate::time::{Duration, SimTime};

/// Handle to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Handle to a bidirectional stream connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub usize);

/// Which direction of a connection, from the perspective of the node
/// that initiated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Initiator → acceptor.
    AtoB,
    /// Acceptor → initiator.
    BtoA,
}

/// One in-flight chunk of stream data.
#[derive(Debug, Clone)]
struct Chunk {
    deliver_at: SimTime,
    data: Vec<u8>,
}

/// One-shot in-flight mutation registered by the adversary API.
type TamperFn = Box<dyn FnOnce(&mut Vec<u8>) + Send>;

/// What happened to a chunk inside [`Pipe::write`] — reported so the
/// network can emit telemetry (the pipe itself has no [`ConnId`]).
#[derive(Debug, Clone, Copy, Default)]
struct WriteReport {
    /// The fault model charged retransmission delay (a drop).
    fault_delayed: bool,
    /// A registered tamper hook mutated the chunk.
    tampered: bool,
    /// The chunk fell into a blackhole window: silently discarded,
    /// no retransmission, no reset.
    blackholed: bool,
    /// When the queued chunk will become deliverable (absent if the
    /// write queued nothing — empty data or blackholed).
    deliver_at: Option<SimTime>,
}

/// One direction of a connection: a latency/bandwidth pipe with
/// in-order delivery, fault-induced delays, and adversary hooks.
struct Pipe {
    latency: Duration,
    /// Bytes per virtual second; `None` = unlimited.
    bandwidth_bps: Option<u64>,
    /// Earliest time the next chunk may be scheduled to finish
    /// serializing (models link occupancy).
    next_free: SimTime,
    in_flight: VecDeque<Chunk>,
    delivered: Vec<u8>,
    faults: FaultInjector,
    /// Copies of every chunk, if tapped.
    tap: Option<Vec<(SimTime, Vec<u8>)>>,
    /// One-shot tamper functions applied to the next written chunk.
    tamper_queue: VecDeque<TamperFn>,
    /// Total payload bytes written.
    bytes_written: u64,
    closed: bool,
}

impl Pipe {
    fn new(latency: Duration, bandwidth_bps: Option<u64>, faults: FaultInjector) -> Self {
        Pipe {
            latency,
            bandwidth_bps,
            next_free: SimTime::ZERO,
            in_flight: VecDeque::new(),
            delivered: Vec::new(),
            faults,
            tap: None,
            tamper_queue: VecDeque::new(),
            bytes_written: 0,
            closed: false,
        }
    }

    fn write(
        &mut self,
        now: SimTime,
        mut data: Vec<u8>,
        earliest: SimTime,
    ) -> Result<WriteReport, NetError> {
        let mut report = WriteReport::default();
        if self.closed {
            return Err(NetError::ConnectionClosed);
        }
        if data.is_empty() {
            return Ok(report);
        }
        if let Some(tamper) = self.tamper_queue.pop_front() {
            tamper(&mut data);
            report.tampered = true;
        }
        self.bytes_written += data.len() as u64;
        if let Some(tap) = &mut self.tap {
            tap.push((now, data.clone()));
        }
        // Blackhole window: the sender's transport believes the bytes
        // left (they count as written and a tap sees them), but
        // nothing is ever queued for delivery and no error surfaces.
        if self.faults.swallow(now) {
            report.blackholed = true;
            return Ok(report);
        }
        // Fault model: per-MSS segment delays accumulate.
        let mut fault_delay = Duration::ZERO;
        let nsegs = data.len().div_ceil(1460).max(1);
        for _ in 0..nsegs {
            let outcome = self.faults.apply();
            fault_delay = fault_delay.plus(outcome.extra_delay);
            if outcome.gave_up {
                self.closed = true;
                return Err(NetError::ConnectionReset);
            }
        }
        report.fault_delayed = fault_delay > Duration::ZERO;
        let start = now.max(self.next_free).max(earliest);
        let serialize = match self.bandwidth_bps {
            Some(bps) => Duration((data.len() as u64 * 1_000_000_000).div_ceil(bps)),
            None => Duration::ZERO,
        };
        let departed = start.plus(serialize);
        self.next_free = departed;
        let deliver_at = departed.plus(self.latency).plus(fault_delay);
        // In-order delivery: never before the previous chunk.
        let deliver_at = match self.in_flight.back() {
            Some(prev) => deliver_at.max(prev.deliver_at),
            None => deliver_at,
        };
        self.in_flight.push_back(Chunk { deliver_at, data });
        report.deliver_at = Some(deliver_at);
        Ok(report)
    }

    /// Move everything due by `now` into the delivered buffer.
    fn poll(&mut self, now: SimTime) {
        while let Some(front) = self.in_flight.front() {
            if front.deliver_at <= now {
                let chunk = self.in_flight.pop_front().unwrap();
                self.delivered.extend_from_slice(&chunk.data);
            } else {
                break;
            }
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        self.in_flight.front().map(|c| c.deliver_at)
    }
}

/// A bidirectional connection between two nodes.
struct Conn {
    a: NodeId,
    b: NodeId,
    a_to_b: Pipe,
    b_to_a: Pipe,
    /// When the transport handshake completes and data may flow.
    established_at: SimTime,
    /// Slot released via [`Network::release_conn`] and awaiting
    /// reuse: every operation on the handle reports `BadHandle`.
    retired: bool,
}

/// Errors surfaced to endpoint drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The connection was closed by a filter, adversary, or fault
    /// collapse.
    ConnectionReset,
    /// Write on a closed connection.
    ConnectionClosed,
    /// Unknown handle.
    BadHandle,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetError::ConnectionReset => "connection reset",
            NetError::ConnectionClosed => "connection closed",
            NetError::BadHandle => "bad handle",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for NetError {}

/// A node: a name plus bookkeeping (nodes are pure endpoints; all
/// state machines live in the experiment code).
struct Node {
    name: String,
    /// Slot released via [`Network::release_node`] and awaiting reuse.
    retired: bool,
}

/// The simulator.
pub struct Network {
    nodes: Vec<Node>,
    conns: Vec<Conn>,
    now: SimTime,
    rng: CryptoRng,
    /// Default one-way latency used when none is specified.
    pub default_latency: Duration,
    telemetry: Option<SharedSink>,
    /// Min-heap of candidate `(deliver_at, sequence, conn index)`
    /// delivery instants, pushed on every queued write and validated
    /// lazily: an entry whose connection no longer has a chunk due
    /// exactly at that instant is stale (already delivered) and is
    /// discarded on pop. Keeps [`Network::next_event_time`] O(log n)
    /// per call instead of scanning every pipe — the difference
    /// between a 2-party test and a host multiplexing thousands of
    /// sessions. The sequence number makes equal-time pops explicit:
    /// ties break by *send order*, never by heap-internal layout, so
    /// a sharded host merging per-shard traces sees one well-defined
    /// delivery order by construction.
    event_heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Monotonic sequence stamped onto heap entries at push time.
    event_seq: u64,
    /// Released node slots awaiting reuse (LIFO).
    node_free: Vec<usize>,
    /// Released connection slots awaiting reuse (LIFO).
    conn_free: Vec<usize>,
}

impl Network {
    /// Fresh network with a seed for fault randomness.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            conns: Vec::new(),
            now: SimTime::ZERO,
            rng: CryptoRng::from_seed(seed),
            default_latency: Duration::from_micros(50),
            telemetry: None,
            event_heap: BinaryHeap::new(),
            event_seq: 0,
            node_free: Vec::new(),
            conn_free: Vec::new(),
        }
    }

    /// Push a delivery candidate, stamping the next sequence number
    /// so same-instant events pop in send order.
    fn push_event(&mut self, t: SimTime, conn: usize) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.event_heap.push(Reverse((t, seq, conn)));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Attach a telemetry sink. Link events are emitted through it,
    /// and its clock is kept in lock-step with virtual time so every
    /// event in the simulation carries a virtual timestamp.
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        sink.clock().set_ns(self.now.0);
        self.telemetry = Some(sink);
    }

    fn emit(&self, kind: EventKind) {
        if let Some(t) = &self.telemetry {
            t.emit(Party::Network, kind);
        }
    }

    /// Add a node, reusing a released slot when one is available.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        if let Some(idx) = self.node_free.pop() {
            self.nodes[idx].name = name.to_string();
            self.nodes[idx].retired = false;
            return NodeId(idx);
        }
        self.nodes.push(Node {
            name: name.to_string(),
            retired: false,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Release a node slot for reuse. The caller must have released
    /// every connection touching the node first; the handle must not
    /// be used again. Keeps node-arena memory bounded by the
    /// *concurrent* population rather than the all-time total — at a
    /// million hosted sessions the difference between a working run
    /// and an OOM.
    pub fn release_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0) {
            if !n.retired {
                n.retired = true;
                n.name = String::new();
                self.node_free.push(node.0);
            }
        }
    }

    /// A node's name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Open a connection with explicit parameters. Data written
    /// before the TCP-style handshake completes is queued and departs
    /// at establishment (one RTT after `connect`).
    pub fn connect_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: Duration,
        bandwidth_bps: Option<u64>,
        faults: FaultConfig,
    ) -> ConnId {
        let fi_ab = FaultInjector::new(faults.clone(), self.rng.fork());
        let fi_ba = FaultInjector::new(faults, self.rng.fork());
        // TCP 3WHS: SYN (latency) + SYN-ACK (latency); the initiator
        // may send data with the final ACK, so the first byte can
        // depart one RTT after connect.
        let established_at = self.now.plus(latency.times(2));
        let conn = Conn {
            a,
            b,
            a_to_b: Pipe::new(latency, bandwidth_bps, fi_ab),
            b_to_a: Pipe::new(latency, bandwidth_bps, fi_ba),
            established_at,
            retired: false,
        };
        if let Some(idx) = self.conn_free.pop() {
            self.conns[idx] = conn;
            return ConnId(idx);
        }
        self.conns.push(conn);
        ConnId(self.conns.len() - 1)
    }

    /// Release a connection slot for reuse. In-flight and delivered
    /// data is dropped; the handle must not be used again (every
    /// operation on it reports [`NetError::BadHandle`] until the slot
    /// is handed out by a later connect). Stale heap entries naming
    /// the slot are discarded lazily: the retired pipes report no
    /// next event, and a reused slot's own writes push fresh entries,
    /// so delivery scheduling stays exact across recycling.
    pub fn release_conn(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(conn.0) {
            if !c.retired {
                c.retired = true;
                // Inert placeholder pipes (fixed-seed injector so the
                // shared fault RNG stream is left untouched).
                let inert = || {
                    Pipe::new(
                        Duration::ZERO,
                        None,
                        FaultInjector::new(FaultConfig::none(), CryptoRng::from_seed(0)),
                    )
                };
                c.a_to_b = inert();
                c.b_to_a = inert();
                self.conn_free.push(conn.0);
            }
        }
    }

    /// Open a connection with default latency, unlimited bandwidth,
    /// and no faults.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> ConnId {
        self.connect_with(a, b, self.default_latency, None, FaultConfig::none())
    }

    fn pipe_mut(&mut self, conn: ConnId, dir: Dir) -> Result<&mut Pipe, NetError> {
        let conn = self.conns.get_mut(conn.0).ok_or(NetError::BadHandle)?;
        if conn.retired {
            return Err(NetError::BadHandle);
        }
        Ok(match dir {
            Dir::AtoB => &mut conn.a_to_b,
            Dir::BtoA => &mut conn.b_to_a,
        })
    }

    fn live_conn(&self, conn: ConnId) -> Result<&Conn, NetError> {
        match self.conns.get(conn.0) {
            Some(c) if !c.retired => Ok(c),
            _ => Err(NetError::BadHandle),
        }
    }

    /// Send bytes from `from`'s side of the connection.
    pub fn send(&mut self, conn: ConnId, from: NodeId, data: &[u8]) -> Result<(), NetError> {
        self.send_with_delay(conn, from, data, Duration::ZERO)
    }

    /// Send bytes whose departure is additionally delayed by
    /// `compute` — models sender-side processing time (e.g. middlebox
    /// handshake computation) without a separate CPU scheduler.
    pub fn send_with_delay(
        &mut self,
        conn: ConnId,
        from: NodeId,
        data: &[u8],
        compute: Duration,
    ) -> Result<(), NetError> {
        let now = self.now;
        let c = self.live_conn(conn)?;
        let dir = if from == c.a {
            Dir::AtoB
        } else if from == c.b {
            Dir::BtoA
        } else {
            return Err(NetError::BadHandle);
        };
        let earliest = c.established_at.max(now.plus(compute));
        let report = self.pipe_mut(conn, dir)?.write(now, data.to_vec(), earliest)?;
        if let Some(t) = report.deliver_at {
            self.push_event(t, conn.0);
        }
        self.emit(EventKind::LinkSend { conn: conn.0 as u64, bytes: data.len() as u64 });
        if report.tampered {
            self.emit(EventKind::LinkCorrupt { conn: conn.0 as u64 });
        }
        if report.fault_delayed || report.blackholed {
            self.emit(EventKind::LinkDrop { conn: conn.0 as u64, bytes: data.len() as u64 });
        }
        Ok(())
    }

    /// Receive all bytes available to `to` on this connection at the
    /// current time.
    pub fn recv(&mut self, conn: ConnId, to: NodeId) -> Result<Vec<u8>, NetError> {
        let now = self.now;
        let c = self.live_conn(conn)?;
        let dir = if to == c.b {
            Dir::AtoB
        } else if to == c.a {
            Dir::BtoA
        } else {
            return Err(NetError::BadHandle);
        };
        let closed_check = {
            let pipe = self.pipe_mut(conn, dir)?;
            pipe.poll(now);
            let data = std::mem::take(&mut pipe.delivered);
            if data.is_empty() && pipe.closed {
                Err(NetError::ConnectionReset)
            } else {
                Ok(data)
            }
        };
        if let Ok(data) = &closed_check {
            if !data.is_empty() {
                self.emit(EventKind::LinkDeliver {
                    conn: conn.0 as u64,
                    bytes: data.len() as u64,
                });
            }
        }
        closed_check
    }

    /// The earliest future instant at which any in-flight data becomes
    /// deliverable, or `None` if the network is quiescent.
    ///
    /// Backed by a lazily-maintained min-heap: delivered chunks leave
    /// stale heap entries behind, which are discarded on pop, so the
    /// amortized cost is O(log writes) rather than O(connections).
    /// Takes `&mut self` only to prune those stale entries — the
    /// answer is the same one [`Network::next_event_time_scan`] would
    /// compute by walking every pipe.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, seq, idx))) = self.event_heap.peek() {
            let actual = self.conns.get(idx).filter(|c| !c.retired).and_then(|c| {
                match (c.a_to_b.next_event(), c.b_to_a.next_event()) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, None) => x,
                    (None, y) => y,
                }
            });
            match actual {
                Some(a) if a == t => return Some(t.max(self.now)),
                // Earlier than every heap entry can't normally happen
                // (each queued chunk pushed its own entry), but requeue
                // defensively so the heap never under-reports.
                Some(a) if a < t => {
                    self.event_heap.pop();
                    self.event_heap.push(Reverse((a, seq, idx)));
                }
                // Stale: that chunk was already delivered.
                _ => {
                    self.event_heap.pop();
                }
            }
        }
        None
    }

    /// Pop one connection that has data deliverable at or before the
    /// current time, or `None` when nothing is due yet. Multi-session
    /// drivers use this to learn *which* connection a time advance
    /// made readable without scanning all of them; the caller must
    /// then drain the connection with [`Network::recv`], otherwise
    /// later [`Network::next_event_time`] calls may under-report (the
    /// popped entry is gone from the heap). The same connection may be
    /// returned once per undrained chunk.
    pub fn pop_due(&mut self) -> Option<ConnId> {
        while let Some(&Reverse((t, _seq, idx))) = self.event_heap.peek() {
            if t > self.now {
                return None;
            }
            self.event_heap.pop();
            let due = self.conns.get(idx).is_some_and(|c| {
                !c.retired
                    && (c.a_to_b.next_event().is_some_and(|x| x <= self.now)
                        || c.b_to_a.next_event().is_some_and(|x| x <= self.now))
            });
            if due {
                return Some(ConnId(idx));
            }
        }
        None
    }

    /// Reference implementation of [`Network::next_event_time`]: an
    /// O(connections) scan over every pipe. Kept as the oracle the
    /// heap path is equivalence-tested against.
    #[cfg(test)]
    fn next_event_time_scan(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for conn in self.conns.iter().filter(|c| !c.retired) {
            for pipe in [&conn.a_to_b, &conn.b_to_a] {
                if let Some(t) = pipe.next_event() {
                    let t = t.max(self.now);
                    best = Some(match best {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
        }
        best
    }

    /// Advance virtual time (never backwards).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
        if let Some(tl) = &self.telemetry {
            tl.clock().set_ns(self.now.0);
        }
    }

    /// Advance by a span.
    pub fn advance_by(&mut self, d: Duration) {
        self.now = self.now.plus(d);
        if let Some(tl) = &self.telemetry {
            tl.clock().set_ns(self.now.0);
        }
    }

    // ----- adversary / measurement hooks (threat model §3.1) -----

    /// Start recording every chunk on one direction.
    pub fn tap(&mut self, conn: ConnId, dir: Dir) {
        if let Ok(pipe) = self.pipe_mut(conn, dir) {
            if pipe.tap.is_none() {
                pipe.tap = Some(Vec::new());
            }
        }
    }

    /// Read the tap (copies of chunks with their send timestamps).
    pub fn tap_contents(&mut self, conn: ConnId, dir: Dir) -> Vec<(SimTime, Vec<u8>)> {
        match self.pipe_mut(conn, dir) {
            Ok(pipe) => pipe.tap.clone().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// Inject raw bytes into the stream toward the receiver of `dir`
    /// (the adversary writes into the TCP stream).
    pub fn inject(&mut self, conn: ConnId, dir: Dir, data: &[u8]) -> Result<(), NetError> {
        let now = self.now;
        let c = self.live_conn(conn)?;
        let earliest = c.established_at;
        let report = self.pipe_mut(conn, dir)?.write(now, data.to_vec(), earliest)?;
        if let Some(t) = report.deliver_at {
            self.push_event(t, conn.0);
        }
        self.emit(EventKind::LinkSend { conn: conn.0 as u64, bytes: data.len() as u64 });
        if report.tampered {
            self.emit(EventKind::LinkCorrupt { conn: conn.0 as u64 });
        }
        Ok(())
    }

    /// Register a one-shot tamper applied to the next chunk written
    /// in `dir` (the adversary flips bits in flight).
    pub fn tamper_next(
        &mut self,
        conn: ConnId,
        dir: Dir,
        f: impl FnOnce(&mut Vec<u8>) + Send + 'static,
    ) {
        if let Ok(pipe) = self.pipe_mut(conn, dir) {
            pipe.tamper_queue.push_back(Box::new(f));
        }
    }

    /// Cut a connection (both directions).
    pub fn reset(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(conn.0) {
            c.a_to_b.closed = true;
            c.b_to_a.closed = true;
        }
    }

    /// Total payload bytes written in `dir` (for meter-style checks).
    pub fn bytes_written(&mut self, conn: ConnId, dir: Dir) -> u64 {
        self.pipe_mut(conn, dir).map(|p| p.bytes_written).unwrap_or(0)
    }

    /// The two endpoints of a connection (initiator, acceptor).
    pub fn conn_endpoints(&self, conn: ConnId) -> Option<(NodeId, NodeId)> {
        self.conns.get(conn.0).filter(|c| !c.retired).map(|c| (c.a, c.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, NodeId, NodeId) {
        let mut n = Network::new(42);
        let a = n.add_node("client");
        let b = n.add_node("server");
        (n, a, b)
    }

    #[test]
    fn bytes_flow_after_latency() {
        let (mut n, a, b) = net();
        let conn = n.connect_with(a, b, Duration::from_millis(10), None, FaultConfig::none());
        n.send(conn, a, b"hello").unwrap();
        // Not yet: handshake (20ms) + latency (10ms) = 30ms.
        n.advance_to(SimTime(29_000_000));
        assert!(n.recv(conn, b).unwrap().is_empty());
        n.advance_to(SimTime(30_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"hello");
        // Reading again yields nothing.
        assert!(n.recv(conn, b).unwrap().is_empty());
    }

    #[test]
    fn in_order_delivery_across_writes() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.send(conn, a, b"first ").unwrap();
        n.send(conn, a, b"second").unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"first second");
    }

    #[test]
    fn duplex_is_independent() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.send(conn, a, b"ping").unwrap();
        n.send(conn, b, b"pong").unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"ping");
        assert_eq!(n.recv(conn, a).unwrap(), b"pong");
    }

    #[test]
    fn bandwidth_serialization_delays_large_writes() {
        let (mut n, a, b) = net();
        // 8 Mbit/s = 1e6 bytes/s; 1 MB takes 1 virtual second.
        let conn = n.connect_with(
            a,
            b,
            Duration::from_millis(1),
            Some(1_000_000),
            FaultConfig::none(),
        );
        n.send(conn, a, &vec![0u8; 1_000_000]).unwrap();
        n.advance_to(SimTime(500_000_000));
        assert!(n.recv(conn, b).unwrap().is_empty(), "payload should still be serializing");
        n.advance_to(SimTime(1_100_000_000));
        assert_eq!(n.recv(conn, b).unwrap().len(), 1_000_000);
    }

    #[test]
    fn next_event_time_tracks_earliest_delivery() {
        let (mut n, a, b) = net();
        let conn = n.connect_with(a, b, Duration::from_millis(5), None, FaultConfig::none());
        assert_eq!(n.next_event_time(), None);
        n.send(conn, a, b"x").unwrap();
        // established at 10ms + 5ms latency = 15ms.
        assert_eq!(n.next_event_time(), Some(SimTime(15_000_000)));
    }

    #[test]
    fn tap_records_chunks() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.tap(conn, Dir::AtoB);
        n.send(conn, a, b"secret-on-the-wire").unwrap();
        let tapped = n.tap_contents(conn, Dir::AtoB);
        assert_eq!(tapped.len(), 1);
        assert_eq!(tapped[0].1, b"secret-on-the-wire");
    }

    #[test]
    fn inject_appends_to_stream() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.send(conn, a, b"legit|").unwrap();
        n.inject(conn, Dir::AtoB, b"EVIL").unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"legit|EVIL");
    }

    #[test]
    fn tamper_modifies_next_chunk_only() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.tamper_next(conn, Dir::AtoB, |data| data[0] ^= 0xFF);
        n.send(conn, a, &[0x00, 0x01]).unwrap();
        n.send(conn, a, &[0x02]).unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), vec![0xFF, 0x01, 0x02]);
    }

    #[test]
    fn reset_surfaces_as_connection_reset() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.reset(conn);
        assert_eq!(n.send(conn, a, b"x"), Err(NetError::ConnectionClosed));
        assert_eq!(n.recv(conn, b), Err(NetError::ConnectionReset));
    }

    #[test]
    fn reset_delivers_pending_bytes_first() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.send(conn, a, b"last words").unwrap();
        n.reset(conn);
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"last words");
        assert_eq!(n.recv(conn, b), Err(NetError::ConnectionReset));
    }

    #[test]
    fn faulty_link_adds_delay_but_preserves_data() {
        let mut n = Network::new(7);
        let a = n.add_node("a");
        let b = n.add_node("b");
        let conn = n.connect_with(
            a,
            b,
            Duration::from_millis(1),
            None,
            FaultConfig::lossy(0.5),
        );
        let payload: Vec<u8> = (0..200_000).map(|i| (i % 256) as u8).collect();
        n.send(conn, a, &payload).unwrap();
        n.advance_to(SimTime(3_600_000_000_000)); // 1 virtual hour
        assert_eq!(n.recv(conn, b).unwrap(), payload);
    }

    #[test]
    fn wrong_node_handles_rejected() {
        let (mut n, a, b) = net();
        let c = n.add_node("outsider");
        let conn = n.connect(a, b);
        assert_eq!(n.send(conn, c, b"x"), Err(NetError::BadHandle));
        assert_eq!(n.recv(conn, c), Err(NetError::BadHandle));
        assert_eq!(n.send(ConnId(99), a, b"x"), Err(NetError::BadHandle));
    }

    #[test]
    fn node_names_kept() {
        let (n, a, b) = net();
        assert_eq!(n.node_name(a), "client");
        assert_eq!(n.node_name(b), "server");
    }

    /// The heap-backed `next_event_time` must agree with the exhaustive
    /// pipe scan at every step of a randomized send/recv/advance churn
    /// across many connections.
    #[test]
    fn event_heap_matches_scan_under_churn() {
        let mut n = Network::new(99);
        let nodes: Vec<NodeId> = (0..8).map(|i| n.add_node(&format!("n{i}"))).collect();
        let mut conns = Vec::new();
        for i in 0..nodes.len() - 1 {
            let lat = Duration::from_micros(10 + 37 * i as u64);
            conns.push((
                n.connect_with(nodes[i], nodes[i + 1], lat, Some(10_000_000), FaultConfig::none()),
                nodes[i],
                nodes[i + 1],
            ));
            conns.push((n.connect(nodes[i + 1], nodes[i]), nodes[i + 1], nodes[i]));
        }
        let mut rng = CryptoRng::from_seed(1234);
        for step in 0..2000 {
            let (conn, from, to) = conns[rng.gen_range(conns.len() as u64) as usize];
            match rng.gen_range(4) {
                0 | 1 => {
                    let len = 1 + rng.gen_range(900) as usize;
                    n.send(conn, from, &vec![0xAB; len]).unwrap();
                }
                2 => {
                    let _ = n.recv(conn, to).unwrap();
                }
                _ => {
                    if let Some(t) = n.next_event_time_scan() {
                        n.advance_to(t);
                    } else {
                        n.advance_by(Duration::from_micros(rng.gen_range(100)));
                    }
                }
            }
            let scan = n.next_event_time_scan();
            let heap = n.next_event_time();
            assert_eq!(heap, scan, "divergence at step {step}");
        }
        // Drain everything; both views must agree the network went
        // quiet.
        while let Some(t) = n.next_event_time() {
            n.advance_to(t);
            for &(conn, _, to) in &conns {
                let _ = n.recv(conn, to).unwrap();
            }
        }
        assert_eq!(n.next_event_time_scan(), None);
    }

    #[test]
    fn pop_due_names_the_readable_conn() {
        let (mut n, a, b) = net();
        let c2 = n.add_node("c");
        let conn1 = n.connect(a, b);
        let conn2 = n.connect(b, c2);
        n.send(conn2, b, b"to-c").unwrap();
        n.send(conn1, a, b"to-b").unwrap();
        assert_eq!(n.pop_due(), None, "nothing due before time advances");
        let t = n.next_event_time().unwrap();
        n.advance_to(t);
        // Both conns share the default latency, so both become due at
        // the same instant; ties break by send order (sequence
        // number), and conn2's chunk was sent first.
        assert_eq!(n.pop_due(), Some(conn2));
        let _ = n.recv(conn2, c2).unwrap();
        assert_eq!(n.pop_due(), Some(conn1));
        let _ = n.recv(conn1, b).unwrap();
        assert_eq!(n.pop_due(), None);
    }

    /// Regression: equal-time delivery events must pop in *send*
    /// order, not heap-internal order — the determinism-by-
    /// construction guarantee the sharded host's trace merge relies
    /// on. Exercised with enough same-instant events that a
    /// heap-layout-ordered pop would almost surely diverge.
    #[test]
    fn equal_time_events_pop_in_send_order() {
        let mut n = Network::new(5);
        let hub = n.add_node("hub");
        let spokes: Vec<NodeId> = (0..16).map(|i| n.add_node(&format!("s{i}"))).collect();
        let conns: Vec<ConnId> = spokes.iter().map(|&s| n.connect(hub, s)).collect();
        // Send in a scrambled, non-monotonic conn order; all chunks
        // share one latency so every delivery lands at one instant.
        let order: Vec<usize> = (0..16).map(|i| (i * 7) % 16).collect();
        for &i in &order {
            n.send(conns[i], hub, b"x").unwrap();
        }
        let t = n.next_event_time().unwrap();
        n.advance_to(t);
        for &i in &order {
            assert_eq!(n.pop_due(), Some(conns[i]), "pop order must match send order");
            let _ = n.recv(conns[i], spokes[i]).unwrap();
        }
        assert_eq!(n.pop_due(), None);
    }

    /// Released conn and node slots are reused, stale handles are
    /// rejected, and recycling never leaks old traffic into the new
    /// occupant.
    #[test]
    fn released_slots_recycle_without_leaking() {
        let (mut n, a, b) = net();
        let conn = n.connect(a, b);
        n.send(conn, a, b"doomed").unwrap();
        n.release_conn(conn);
        // Stale handle: every operation is rejected.
        assert_eq!(n.send(conn, a, b"x"), Err(NetError::BadHandle));
        assert_eq!(n.recv(conn, b), Err(NetError::BadHandle));
        assert_eq!(n.conn_endpoints(conn), None);
        // Undelivered chunk vanished with the slot.
        assert_eq!(n.next_event_time(), None);
        // Slot is reused — and the new occupant starts clean.
        let conn2 = n.connect(b, a);
        assert_eq!(conn2.0, conn.0, "freed conn slot should be reused");
        n.send(conn2, b, b"fresh").unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn2, a).unwrap(), b"fresh");
        // Node recycling mirrors conn recycling.
        let extra = n.add_node("ephemeral");
        n.release_node(extra);
        let again = n.add_node("replacement");
        assert_eq!(again.0, extra.0, "freed node slot should be reused");
        assert_eq!(n.node_name(again), "replacement");
        // Double release is a no-op, not a double-free.
        n.release_node(again);
        n.release_node(again);
        let x = n.add_node("x");
        let y = n.add_node("y");
        assert_ne!(x.0, y.0, "double release must not hand one slot out twice");
    }

    #[test]
    fn blackhole_window_swallows_silently() {
        let mut n = Network::new(11);
        let a = n.add_node("a");
        let b = n.add_node("b");
        let faults = FaultConfig::blackhole_window(SimTime(30_000_000), SimTime(60_000_000));
        let conn = n.connect_with(a, b, Duration::from_millis(1), None, faults);
        // Before the window: delivered normally.
        n.send(conn, a, b"early").unwrap();
        // Inside the window: accepted (no error — the sender cannot
        // tell) but never delivered.
        n.advance_to(SimTime(30_000_000));
        n.send(conn, a, b"lost").unwrap();
        // After the window: flows again.
        n.advance_to(SimTime(60_000_000));
        n.send(conn, a, b"late").unwrap();
        n.advance_to(SimTime(1_000_000_000));
        assert_eq!(n.recv(conn, b).unwrap(), b"earlylate");
        // A later read does not surface an error either: losses stay
        // invisible to the transport.
        assert_eq!(n.recv(conn, b).unwrap(), b"");
    }

    #[test]
    fn blackholed_bytes_still_counted_as_written() {
        let mut n = Network::new(12);
        let a = n.add_node("a");
        let b = n.add_node("b");
        let faults = FaultConfig::blackhole_window(SimTime::ZERO, SimTime(1_000));
        let conn = n.connect_with(a, b, Duration::from_millis(1), None, faults);
        n.tap(conn, Dir::AtoB);
        n.send(conn, a, b"gone").unwrap();
        assert_eq!(n.bytes_written(conn, Dir::AtoB), 4);
        assert_eq!(n.tap_contents(conn, Dir::AtoB).len(), 1);
        assert_eq!(n.next_event_time(), None);
    }
}

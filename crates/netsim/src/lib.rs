//! # mbtls-netsim
//!
//! A deterministic discrete-event network simulator: the testbed
//! substitute for the paper's Azure VMs, Tor vantage points, and lab
//! machines (see DESIGN.md, Substitutions).
//!
//! Design follows the smoltcp-style sans-IO idiom from this session's
//! Rust networking guides: protocol state machines never own sockets;
//! the experiment loop moves bytes between endpoints through the
//! simulator, and *virtual time* advances only through the event
//! queue, so every latency measurement is exactly reproducible from a
//! seed.
//!
//! Components:
//!
//! * [`time`] — virtual clock types.
//! * [`fault`] — seeded fault injection (drop, corrupt, rate limits),
//!   mirroring the options smoltcp's examples expose.
//! * [`net`] — nodes, links with latency/bandwidth, reliable
//!   stream connections with TCP-style setup costs, and the
//!   adversary's tap/inject/tamper hooks.
//! * [`filter`] — TLS-aware on-path filter models (firewalls, traffic
//!   normalizers) for the Table 2 handshake-viability experiment.
//! * [`profiles`] — the Table 2 client-network population and the
//!   Figure 6 inter-datacenter latency matrix.

#![warn(missing_docs)]

pub mod fault;
pub mod filter;
pub mod net;
pub mod profiles;
pub mod time;

pub use fault::FaultConfig;
pub use filter::{FilterAction, FilterPolicy, TlsStreamFilter};
pub use net::{ConnId, Network, NodeId};
pub use time::{Duration, SimTime};

//! Property-based tests over the network simulator's delivery
//! guarantees.

use mbtls_netsim::net::{Dir, Network};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;
use proptest::prelude::*;

proptest! {
    /// In-order, loss-transparent delivery: any schedule of writes is
    /// received as exactly the concatenation of the writes, in order,
    /// regardless of loss rate and latency.
    #[test]
    fn stream_delivery_is_exact(seed in any::<u64>(),
                                latency_ms in 0u64..50,
                                drop in 0.0f64..0.5,
                                writes in proptest::collection::vec(
                                    proptest::collection::vec(any::<u8>(), 0..2000), 1..10)) {
        let mut net = Network::new(seed);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let conn = net.connect_with(
            a,
            b,
            Duration::from_millis(latency_ms),
            None,
            FaultConfig::lossy(drop),
        );
        let mut expected = Vec::new();
        for w in &writes {
            net.send(conn, a, w).unwrap();
            expected.extend_from_slice(w);
        }
        // A virtual day absorbs any number of retransmission delays.
        net.advance_to(SimTime(86_400_000_000_000));
        prop_assert_eq!(net.recv(conn, b).unwrap(), expected);
    }

    /// Duplex independence: traffic in one direction never appears in
    /// the other.
    #[test]
    fn duplex_isolation(seed in any::<u64>(),
                        fwd in proptest::collection::vec(any::<u8>(), 1..500),
                        rev in proptest::collection::vec(any::<u8>(), 1..500)) {
        let mut net = Network::new(seed);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let conn = net.connect(a, b);
        net.send(conn, a, &fwd).unwrap();
        net.send(conn, b, &rev).unwrap();
        net.advance_to(SimTime(10_000_000_000));
        prop_assert_eq!(net.recv(conn, b).unwrap(), fwd);
        prop_assert_eq!(net.recv(conn, a).unwrap(), rev);
    }

    /// Taps are faithful: the tap records exactly the bytes written,
    /// and tapping never perturbs delivery.
    #[test]
    fn taps_are_passive_and_exact(seed in any::<u64>(),
                                  writes in proptest::collection::vec(
                                      proptest::collection::vec(any::<u8>(), 1..300), 1..6)) {
        let mut net = Network::new(seed);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let conn = net.connect(a, b);
        net.tap(conn, Dir::AtoB);
        let mut expected = Vec::new();
        for w in &writes {
            net.send(conn, a, w).unwrap();
            expected.extend_from_slice(w);
        }
        net.advance_to(SimTime(10_000_000_000));
        prop_assert_eq!(net.recv(conn, b).unwrap(), expected.clone());
        let tapped: Vec<u8> = net
            .tap_contents(conn, Dir::AtoB)
            .into_iter()
            .flat_map(|(_, d)| d)
            .collect();
        prop_assert_eq!(tapped, expected);
    }

    /// next_event_time never runs backwards and always lands at or
    /// after `now`.
    #[test]
    fn event_times_monotone(seed in any::<u64>(),
                            latency_ms in 1u64..100,
                            n_writes in 1usize..8) {
        let mut net = Network::new(seed);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let conn = net.connect_with(a, b, Duration::from_millis(latency_ms), None, FaultConfig::none());
        for i in 0..n_writes {
            net.send(conn, a, &[i as u8]).unwrap();
        }
        let mut prev = SimTime::ZERO;
        while let Some(t) = net.next_event_time() {
            prop_assert!(t >= prev);
            prop_assert!(t >= net.now());
            net.advance_to(t);
            let _ = net.recv(conn, b).unwrap();
            prev = t;
        }
    }
}

//! The SGX transition / I/O cost model behind the Figure 7
//! reproduction ("Network I/O in SGX").
//!
//! The paper's finding is *structural*: for I/O-heavy middlebox
//! workloads, per-chunk syscall and interrupt-handling overhead
//! dominates, so adding enclave boundary crossings does not measurably
//! reduce throughput, while record decrypt/re-encrypt caps throughput
//! around 7 Gbps on their testbed. This module encodes those cost
//! components in virtual nanoseconds so the simulated experiment
//! reproduces the *shape*: throughput grows with buffer size, the
//! encryption configurations plateau well below the forwarding
//! configurations, and the enclave/no-enclave pairs stay within a few
//! percent of each other at every buffer size.
//!
//! Default constants are calibrated to the figures reported for the
//! paper's testbed class (Intel i7-6700 @ 4 GHz, 40 GbE):
//!
//! * fixed per-chunk cost (recv+send syscalls, TCP processing)
//! * per-byte I/O cost (copies, NIC DMA, record assembly)
//! * per-byte AEAD cost per pass (AES-NI-class GCM)
//! * an *effective* ECALL/OCALL pair cost — small, because on an
//!   interrupt-saturated receive path most enclave exits coincide
//!   with asynchronous exits (AEX) the core pays anyway; this is the
//!   paper's explanation for why the enclave lines sit on top of the
//!   native ones
//! * a per-packet AEX surcharge when running inside the enclave.

/// Which middlebox data-path is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPathConfig {
    /// True if the middlebox decrypts and re-encrypts each chunk
    /// (the mbTLS middlebox case); false if it blindly forwards.
    pub reencrypt: bool,
    /// True if the processing happens inside an SGX enclave.
    pub enclave: bool,
}

/// How an enclave thread issues syscalls (the SCONE distinction the
/// paper discusses in §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallMode {
    /// Ordinary process, no enclave.
    Native,
    /// Exit the enclave, run the syscall, re-enter (synchronous).
    SyncEnclave,
    /// Hand the request to an untrusted thread through a shared queue
    /// (asynchronous); the enclave thread keeps running.
    AsyncEnclave,
}

/// Calibrated cost constants (all virtual nanoseconds).
#[derive(Debug, Clone)]
pub struct SgxCostModel {
    /// Fixed cost per received-then-forwarded chunk: two syscalls,
    /// TCP/IP processing, scheduling.
    pub fixed_per_chunk_ns: f64,
    /// Per-byte cost of moving data through the host (copies, DMA).
    pub io_per_byte_ns: f64,
    /// Per-byte AEAD cost for one pass (decrypt *or* encrypt).
    pub crypto_per_byte_ns: f64,
    /// Effective cost of an ECALL/OCALL pair on the saturated receive
    /// path (mostly hidden under interrupt exits).
    pub transition_pair_ns: f64,
    /// Extra cost per network packet when inside the enclave
    /// (asynchronous exit + resume).
    pub aex_per_packet_ns: f64,
    /// Full, unamortized cost of one enclave transition pair (used by
    /// the syscall microbenchmark model where there is no interrupt
    /// pressure to hide it).
    pub full_transition_pair_ns: f64,
    /// Base kernel syscall cost (used by the syscall micro-model).
    pub syscall_base_ns: f64,
    /// Async-queue handoff cost (used by the syscall micro-model).
    pub async_queue_ns: f64,
    /// Path MTU: packets per chunk = ceil(chunk / mtu).
    pub mtu: usize,
    /// Quote generation inside the enclave: EREPORT plus the quoting
    /// enclave's EPID group signature (the dominant term of a remote
    /// attestation round on real hardware — millisecond scale, where
    /// everything else in the handshake is microseconds).
    pub quote_generate_ns: f64,
    /// Relying-party verification of the quote's group signature and
    /// endorsement chain.
    pub quote_verify_ns: f64,
}

impl Default for SgxCostModel {
    fn default() -> Self {
        SgxCostModel {
            fixed_per_chunk_ns: 2_300.0,
            io_per_byte_ns: 0.65,
            crypto_per_byte_ns: 0.15,
            transition_pair_ns: 100.0,
            aex_per_packet_ns: 20.0,
            full_transition_pair_ns: 1_750.0,
            syscall_base_ns: 300.0,
            async_queue_ns: 110.0,
            mtu: 1_500,
            quote_generate_ns: 1_300_000.0,
            quote_verify_ns: 450_000.0,
        }
    }
}

impl SgxCostModel {
    /// Virtual time to receive, (optionally) re-encrypt, and forward
    /// one chunk of `chunk_bytes`.
    pub fn chunk_time_ns(&self, chunk_bytes: usize, config: DataPathConfig) -> f64 {
        let bytes = chunk_bytes as f64;
        let packets = chunk_bytes.div_ceil(self.mtu) as f64;
        let mut t = self.fixed_per_chunk_ns + bytes * self.io_per_byte_ns;
        if config.reencrypt {
            // One decrypt pass + one encrypt pass.
            t += 2.0 * bytes * self.crypto_per_byte_ns;
        }
        if config.enclave {
            t += self.transition_pair_ns + packets * self.aex_per_packet_ns;
        }
        t
    }

    /// Saturated middlebox throughput in Gbit/s for a given chunk size
    /// and configuration (the Figure 7 y-axis).
    pub fn throughput_gbps(&self, chunk_bytes: usize, config: DataPathConfig) -> f64 {
        let bits = (chunk_bytes as f64) * 8.0;
        bits / self.chunk_time_ns(chunk_bytes, config)
    }

    /// Virtual cost of one complete remote-attestation round for one
    /// middlebox join: quote generation in the enclave plus the
    /// endpoint's verification. This is the CPU surcharge the
    /// `BENCH_auth.json` comparison charges the SGX-attested mode
    /// over what the in-process simulation measures (the simulated
    /// quote is two Ed25519 operations; real EPID attestation is not).
    pub fn attestation_round_ns(&self) -> f64 {
        self.quote_generate_ns + self.quote_verify_ns
    }

    /// Latency of one `pwrite`-style syscall carrying `payload_bytes`,
    /// under each syscall strategy — the SCONE-style microbenchmark
    /// the paper contrasts with its throughput result.
    pub fn syscall_latency_ns(&self, payload_bytes: usize, mode: SyscallMode) -> f64 {
        let copy = payload_bytes as f64 * self.io_per_byte_ns;
        match mode {
            SyscallMode::Native => self.syscall_base_ns + copy,
            SyscallMode::SyncEnclave => {
                // Copy args out, full exit/enter pair, then the call.
                self.syscall_base_ns + copy * 2.0 + self.full_transition_pair_ns
            }
            SyscallMode::AsyncEnclave => {
                // Queue handoff; the syscall itself overlaps with
                // enclave-thread progress, so the observed latency is
                // the handoff plus the call.
                self.syscall_base_ns + copy + self.async_queue_ns
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FWD: DataPathConfig = DataPathConfig { reencrypt: false, enclave: false };
    const FWD_E: DataPathConfig = DataPathConfig { reencrypt: false, enclave: true };
    const ENC: DataPathConfig = DataPathConfig { reencrypt: true, enclave: false };
    const ENC_E: DataPathConfig = DataPathConfig { reencrypt: true, enclave: true };

    #[test]
    fn throughput_grows_with_buffer_size() {
        let m = SgxCostModel::default();
        for cfg in [FWD, FWD_E, ENC, ENC_E] {
            let small = m.throughput_gbps(512, cfg);
            let large = m.throughput_gbps(12 * 1024, cfg);
            assert!(large > 2.0 * small, "{cfg:?}: {small} !<< {large}");
        }
    }

    #[test]
    fn encryption_plateaus_below_forwarding() {
        let m = SgxCostModel::default();
        let fwd = m.throughput_gbps(12 * 1024, FWD);
        let enc = m.throughput_gbps(12 * 1024, ENC);
        assert!(enc < fwd, "{enc} !< {fwd}");
        // Paper shape: ~7 vs ~9.5 Gbps.
        assert!((6.0..8.0).contains(&enc), "encrypt plateau {enc}");
        assert!((8.5..11.0).contains(&fwd), "forward plateau {fwd}");
    }

    #[test]
    fn enclave_overhead_is_within_noise() {
        // The paper: "the enclave did not have a noticeable impact on
        // throughput" (differences within 1-5% confidence intervals).
        let m = SgxCostModel::default();
        for size in [512, 1024, 2048, 4096, 8192, 12 * 1024] {
            for (native, enclaved) in [(FWD, FWD_E), (ENC, ENC_E)] {
                let t0 = m.throughput_gbps(size, native);
                let t1 = m.throughput_gbps(size, enclaved);
                let penalty = (t0 - t1) / t0;
                assert!(
                    (0.0..0.06).contains(&penalty),
                    "size {size}: enclave penalty {penalty:.3} out of range"
                );
            }
        }
    }

    #[test]
    fn async_syscalls_win_big_for_small_buffers() {
        // SCONE's observation the paper cites: "for small buffer
        // sizes, asynchronous calls can be up to an order of magnitude
        // faster".
        let m = SgxCostModel::default();
        let sync = m.syscall_latency_ns(32, SyscallMode::SyncEnclave);
        let asynch = m.syscall_latency_ns(32, SyscallMode::AsyncEnclave);
        let speedup = sync / asynch;
        assert!((4.0..12.0).contains(&speedup), "speedup {speedup}");
        // For large buffers the gap narrows (copy cost dominates).
        let sync_big = m.syscall_latency_ns(64 * 1024, SyscallMode::SyncEnclave);
        let asynch_big = m.syscall_latency_ns(64 * 1024, SyscallMode::AsyncEnclave);
        assert!(sync_big / asynch_big < 2.5);
    }

    #[test]
    fn attestation_round_is_millisecond_scale() {
        // The whole point of the delegated-auth comparison: a remote
        // attestation round costs milliseconds while the rest of the
        // handshake costs microseconds.
        let m = SgxCostModel::default();
        assert_eq!(
            m.attestation_round_ns(),
            m.quote_generate_ns + m.quote_verify_ns
        );
        assert!(m.attestation_round_ns() >= 1_000_000.0);
    }

    #[test]
    fn chunk_time_monotone_in_bytes() {
        let m = SgxCostModel::default();
        let mut prev = 0.0;
        for bytes in (512..=12_288).step_by(512) {
            let t = m.chunk_time_ns(bytes, ENC_E);
            assert!(t > prev);
            prev = t;
        }
    }
}

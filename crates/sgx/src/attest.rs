//! Remote attestation: quotes, platform attestation keys, and the
//! simulated Intel attestation root.
//!
//! The flow mirrors EPID/DCAP at the protocol level: the attestation
//! service (playing Intel) certifies one attestation key per physical
//! platform; an enclave asks its platform to sign a *quote* over its
//! measurement and 64 bytes of report data; a remote verifier checks
//! the quote against the service's root key and compares measurement
//! and report data against expectations. mbTLS binds report data to
//! the handshake transcript hash for freshness (paper §3.4).

use crate::measurement::Measurement;
use mbtls_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use mbtls_crypto::rng::CryptoRng;

/// Report-data size (matches the SGX REPORTDATA field).
pub const REPORT_DATA_LEN: usize = 64;

/// Why attestation verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The platform certificate was not signed by the attestation root.
    UntrustedPlatform,
    /// The quote signature did not verify under the platform key.
    BadQuoteSignature,
    /// The measurement did not match any acceptable value.
    MeasurementMismatch,
    /// The report data did not match the expected binding (e.g. a
    /// replayed quote from a different handshake).
    ReportDataMismatch,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttestationError::UntrustedPlatform => "platform not certified by attestation root",
            AttestationError::BadQuoteSignature => "quote signature invalid",
            AttestationError::MeasurementMismatch => "enclave measurement mismatch",
            AttestationError::ReportDataMismatch => "report data mismatch (possible replay)",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for AttestationError {}

/// The simulated Intel attestation root: issues platform attestation
/// keys and publishes a root verifying key.
pub struct AttestationService {
    root_key: SigningKey,
    next_platform_id: u64,
}

impl AttestationService {
    /// Stand up the service.
    pub fn new(rng: &mut CryptoRng) -> Self {
        AttestationService {
            root_key: SigningKey::generate(rng),
            next_platform_id: 1,
        }
    }

    /// The root verifying key endpoints embed (the IAS trust anchor
    /// analogue).
    pub fn root_verifying_key(&self) -> VerifyingKey {
        self.root_key.verifying_key()
    }

    /// Provision an attestation key for a new platform (models the
    /// device key ceremony at manufacturing time).
    pub fn provision_platform(&mut self, rng: &mut CryptoRng) -> PlatformAttestationKey {
        let platform_id = self.next_platform_id;
        self.next_platform_id += 1;
        let key = SigningKey::generate(rng);
        let endorsement = self
            .root_key
            .sign(&Self::endorsement_message(platform_id, &key.verifying_key()));
        PlatformAttestationKey {
            platform_id,
            key,
            endorsement,
        }
    }

    fn endorsement_message(platform_id: u64, vk: &VerifyingKey) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + 32 + 16);
        msg.extend_from_slice(b"sgx-platform-key");
        msg.extend_from_slice(&platform_id.to_be_bytes());
        msg.extend_from_slice(&vk.0);
        msg
    }
}

/// A platform's certified attestation key.
#[derive(Clone)]
pub struct PlatformAttestationKey {
    /// Stable platform identifier.
    pub platform_id: u64,
    key: SigningKey,
    endorsement: Signature,
}

impl PlatformAttestationKey {
    /// Sign a quote for an enclave on this platform.
    pub fn quote(&self, measurement: Measurement, report_data: [u8; REPORT_DATA_LEN]) -> Quote {
        let signature = self.key.sign(&Quote::signed_message(
            self.platform_id,
            &measurement,
            &report_data,
        ));
        Quote {
            platform_id: self.platform_id,
            platform_key: self.key.verifying_key(),
            endorsement: self.endorsement,
            measurement,
            report_data,
            signature,
        }
    }
}

/// A remote-attestation quote (the `sgx_quote_t` analogue carried in
/// the mbTLS `SGXAttestation` handshake message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Which platform produced the quote.
    pub platform_id: u64,
    /// The platform's attestation public key.
    pub platform_key: VerifyingKey,
    /// Attestation-root signature over (platform_id, platform_key).
    pub endorsement: Signature,
    /// The measured enclave identity.
    pub measurement: Measurement,
    /// 64 bytes chosen by the enclave (mbTLS: transcript-hash binding).
    pub report_data: [u8; REPORT_DATA_LEN],
    /// Platform signature over (platform_id, measurement, report_data).
    pub signature: Signature,
}

impl Quote {
    fn signed_message(
        platform_id: u64,
        measurement: &Measurement,
        report_data: &[u8; REPORT_DATA_LEN],
    ) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + 32 + 64 + 16);
        msg.extend_from_slice(b"sgx-quote-v1");
        msg.extend_from_slice(&platform_id.to_be_bytes());
        msg.extend_from_slice(&measurement.0);
        msg.extend_from_slice(report_data);
        msg
    }

    /// Verify against the attestation root, an acceptable-measurement
    /// set, and the expected report data.
    pub fn verify(
        &self,
        root: &VerifyingKey,
        acceptable_measurements: &[Measurement],
        expected_report_data: &[u8; REPORT_DATA_LEN],
    ) -> Result<(), AttestationError> {
        // 1. Platform key endorsed by the root?
        root.verify(
            &AttestationService::endorsement_message(self.platform_id, &self.platform_key),
            &self.endorsement,
        )
        .map_err(|_| AttestationError::UntrustedPlatform)?;
        // 2. Quote signed by that platform key?
        self.platform_key
            .verify(
                &Self::signed_message(self.platform_id, &self.measurement, &self.report_data),
                &self.signature,
            )
            .map_err(|_| AttestationError::BadQuoteSignature)?;
        // 3. Measurement acceptable?
        if !acceptable_measurements.contains(&self.measurement) {
            return Err(AttestationError::MeasurementMismatch);
        }
        // 4. Report data bound to this exchange?
        if !mbtls_crypto::ct::eq(&self.report_data, expected_report_data) {
            return Err(AttestationError::ReportDataMismatch);
        }
        Ok(())
    }

    /// Serialize for transport inside handshake messages.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 64 + 32 + 64 + 64);
        out.extend_from_slice(&self.platform_id.to_be_bytes());
        out.extend_from_slice(&self.platform_key.0);
        out.extend_from_slice(&self.endorsement.0);
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parse a serialized quote.
    pub fn decode(bytes: &[u8]) -> Option<Quote> {
        if bytes.len() != 8 + 32 + 64 + 32 + 64 + 64 {
            return None;
        }
        let mut at = 0usize;
        let mut take = |n: usize| {
            let s = &bytes[at..at + n];
            at += n;
            s
        };
        let platform_id = u64::from_be_bytes(take(8).try_into().unwrap());
        let platform_key = VerifyingKey(take(32).try_into().unwrap());
        let endorsement = Signature(take(64).try_into().unwrap());
        let measurement = Measurement(take(32).try_into().unwrap());
        let report_data: [u8; 64] = take(64).try_into().unwrap();
        let signature = Signature(take(64).try_into().unwrap());
        Some(Quote {
            platform_id,
            platform_key,
            endorsement,
            measurement,
            report_data,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::CodeIdentity;

    fn setup() -> (AttestationService, PlatformAttestationKey, CryptoRng) {
        let mut rng = CryptoRng::from_seed(0xA77E);
        let mut svc = AttestationService::new(&mut rng);
        let platform = svc.provision_platform(&mut rng);
        (svc, platform, rng)
    }

    fn m(name: &str) -> Measurement {
        CodeIdentity::new(name, "1.0", b"").measure()
    }

    #[test]
    fn valid_quote_verifies() {
        let (svc, platform, _) = setup();
        let report = [7u8; 64];
        let quote = platform.quote(m("proxy"), report);
        assert_eq!(
            quote.verify(&svc.root_verifying_key(), &[m("proxy")], &report),
            Ok(())
        );
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (svc, platform, _) = setup();
        let report = [7u8; 64];
        let quote = platform.quote(m("evil-proxy"), report);
        assert_eq!(
            quote.verify(&svc.root_verifying_key(), &[m("proxy")], &report),
            Err(AttestationError::MeasurementMismatch)
        );
    }

    #[test]
    fn replayed_report_data_rejected() {
        let (svc, platform, _) = setup();
        let quote = platform.quote(m("proxy"), [1u8; 64]);
        // Verifier expects a different handshake binding.
        assert_eq!(
            quote.verify(&svc.root_verifying_key(), &[m("proxy")], &[2u8; 64]),
            Err(AttestationError::ReportDataMismatch)
        );
    }

    #[test]
    fn unprovisioned_platform_rejected() {
        let (svc, _platform, mut rng) = setup();
        // A rogue "platform" self-signs without provisioning.
        let rogue_key = SigningKey::generate(&mut rng);
        let rogue_endorsement = rogue_key.sign(b"i endorse myself");
        let measurement = m("proxy");
        let report = [0u8; 64];
        let signature = rogue_key.sign(&Quote::signed_message(99, &measurement, &report));
        let quote = Quote {
            platform_id: 99,
            platform_key: rogue_key.verifying_key(),
            endorsement: rogue_endorsement,
            measurement,
            report_data: report,
            signature,
        };
        assert_eq!(
            quote.verify(&svc.root_verifying_key(), &[measurement], &report),
            Err(AttestationError::UntrustedPlatform)
        );
    }

    #[test]
    fn tampered_quote_fields_rejected() {
        let (svc, platform, _) = setup();
        let report = [9u8; 64];
        let good = platform.quote(m("proxy"), report);
        // Tamper with the measurement after signing.
        let mut bad = good.clone();
        bad.measurement = m("other");
        assert_eq!(
            bad.verify(&svc.root_verifying_key(), &[m("other")], &report),
            Err(AttestationError::BadQuoteSignature)
        );
        // Tamper with report data after signing.
        let mut bad = good.clone();
        bad.report_data[0] ^= 1;
        assert_eq!(
            bad.verify(&svc.root_verifying_key(), &[m("proxy")], &bad.report_data.clone()),
            Err(AttestationError::BadQuoteSignature)
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (_, platform, _) = setup();
        let quote = platform.quote(m("proxy"), [3u8; 64]);
        let decoded = Quote::decode(&quote.encode()).unwrap();
        assert_eq!(decoded, quote);
        assert!(Quote::decode(&quote.encode()[1..]).is_none());
    }

    #[test]
    fn multiple_platforms_distinct() {
        let mut rng = CryptoRng::from_seed(0xBEEF);
        let mut svc = AttestationService::new(&mut rng);
        let p1 = svc.provision_platform(&mut rng);
        let p2 = svc.provision_platform(&mut rng);
        assert_ne!(p1.platform_id, p2.platform_id);
        // Quotes from both platforms verify under the same root.
        let report = [0u8; 64];
        for p in [&p1, &p2] {
            let q = p.quote(m("proxy"), report);
            assert!(q.verify(&svc.root_verifying_key(), &[m("proxy")], &report).is_ok());
        }
    }
}

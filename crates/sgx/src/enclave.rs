//! Enclaves: isolated state containers with measurement, quoting, and
//! sealing.
//!
//! An [`Enclave<S>`] owns state `S` whose only access path is the
//! ECALL closure interface — the simulation's analogue of "only code
//! linked into the enclave touches enclave memory". The host-visible
//! page image is ciphertext produced under a per-platform memory
//! encryption key; [`crate::memory::HostInspector`] sees nothing else.

use crate::attest::{PlatformAttestationKey, Quote, REPORT_DATA_LEN};
use crate::measurement::{CodeIdentity, Measurement};
use crate::memory::MachineMemory;
use mbtls_crypto::ct;
use mbtls_crypto::gcm::AesGcm;
use mbtls_crypto::kdf::hkdf;
use mbtls_crypto::rng::CryptoRng;
use mbtls_crypto::sha2::Sha256;
use mbtls_telemetry::{EventKind, Party, SharedSink};
use std::mem::ManuallyDrop;

/// Modeled cost of one full enclave boundary crossing (ECALL in +
/// return, or OCALL out + resume), matching
/// [`crate::cost::SgxCostModel::full_transition_pair_ns`].
const TRANSITION_PAIR_NS: u64 = 1_750;

/// Errors from seal/unseal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Sealed blob failed authentication (wrong platform, wrong
    /// enclave, or tampered blob).
    BadBlob,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sealed blob authentication failed")
    }
}

impl std::error::Error for SealError {}

/// State that can live inside an enclave must describe its in-memory
/// image so the simulator can maintain the host-visible (encrypted)
/// page snapshot.
pub trait EnclaveState {
    /// Serialize the sensitive in-memory representation. The bytes
    /// are never shown to the host in the clear — they are what gets
    /// memory-encrypted.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Scrub any key material held by the state, in place. The
    /// enclave's [`Drop`] runs this before the state's own
    /// destructor, so teardown never leaves secrets in freed memory.
    fn wipe(&mut self);
}

impl EnclaveState for Vec<u8> {
    fn snapshot_bytes(&self) -> Vec<u8> {
        self.clone()
    }

    fn wipe(&mut self) {
        ct::zeroize(self);
    }
}

/// One SGX-capable machine: its attestation key, its memory
/// encryption key, its sealing secret, and its RAM map.
// lint:secret
pub struct Platform {
    attestation: PlatformAttestationKey,
    /// Key the (simulated) memory encryption engine uses.
    mee_key: [u8; 32],
    /// Root of the sealing-key derivation.
    sealing_secret: [u8; 32],
    /// The machine's RAM.
    pub memory: MachineMemory,
    enclave_counter: u64,
    telemetry: Option<SharedSink>,
}

impl Platform {
    /// Boot a platform with a provisioned attestation key.
    pub fn new(attestation: PlatformAttestationKey, rng: &mut CryptoRng) -> Self {
        Platform {
            attestation,
            mee_key: rng.gen_array(),
            sealing_secret: rng.gen_array(),
            memory: MachineMemory::new(),
            enclave_counter: 0,
            telemetry: None,
        }
    }

    /// The platform id (public).
    pub fn platform_id(&self) -> u64 {
        self.attestation.platform_id
    }

    /// Attach a telemetry sink; enclave lifecycle and boundary-crossing
    /// events on this platform are emitted through it.
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        self.telemetry = Some(sink);
    }

    fn emit(&self, enclave_id: u64, kind: EventKind) {
        if let Some(t) = &self.telemetry {
            t.emit(Party::Enclave(enclave_id), kind);
        }
    }

    /// Zero the platform root keys in place (the attestation signing
    /// key zeroizes itself on drop). This is the routine [`Drop`]
    /// runs, exposed so a decommissioned platform can be scrubbed
    /// early.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.mee_key);
        ct::zeroize(&mut self.sealing_secret);
    }
}

impl Drop for Platform {
    fn drop(&mut self) {
        self.wipe();
    }
}

// The MEE key and sealing secret are the platform's root secrets; a
// derived formatter would print both. Show only public identity.
impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Platform(id={}, enclaves={}, ..)",
            self.attestation.platform_id, self.enclave_counter
        )
    }
}

/// An enclave instance holding state `S`.
// lint:secret
pub struct Enclave<S: EnclaveState> {
    measurement: Measurement,
    region_name: String,
    /// Platform-local enclave id (also the suffix of `region_name`).
    id: u64,
    state: S,
    /// Nonce counter for the memory-encryption engine.
    mee_nonce: u64,
}

impl<S: EnclaveState> Enclave<S> {
    /// `ECREATE`+`EINIT`: measure `code` and place `initial_state`
    /// into protected memory on `platform`.
    pub fn create(platform: &mut Platform, code: &CodeIdentity, initial_state: S) -> Self {
        platform.enclave_counter += 1;
        let id = platform.enclave_counter;
        let region_name = format!("enclave-{id}");
        let mut enclave = Enclave {
            measurement: code.measure(),
            region_name,
            id,
            state: initial_state,
            mee_nonce: 0,
        };
        enclave.sync_page_image(platform);
        platform.emit(id, EventKind::EnclaveCreate { enclave: id });
        enclave
    }

    /// The enclave's measurement (public — anyone can measure the
    /// binary).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// ECALL: run enclave code against the protected state. After the
    /// call returns, the host-visible page image is refreshed (the
    /// MEE re-encrypts dirty cache lines as they spill to DRAM).
    ///
    /// Panics if the host tampered with the protected region — real
    /// SGX raises a machine check on integrity failure, which is
    /// similarly unrecoverable for the enclave.
    pub fn ecall<R>(
        &mut self,
        platform: &mut Platform,
        f: impl FnOnce(&mut S) -> R,
    ) -> R {
        if let Some((_, tampered)) = platform.memory.protected_image(&self.region_name) {
            assert!(
                !tampered,
                "enclave memory integrity check failed (host tampering detected)"
            );
        }
        let out = f(&mut self.state);
        self.sync_page_image(platform);
        platform.emit(self.id, EventKind::Ecall { enclave: self.id, cost_ns: TRANSITION_PAIR_NS });
        out
    }

    /// Read-only ECALL variant.
    pub fn ecall_ref<R>(&self, platform: &Platform, f: impl FnOnce(&S) -> R) -> R {
        if let Some((_, tampered)) = platform.memory.protected_image(&self.region_name) {
            assert!(
                !tampered,
                "enclave memory integrity check failed (host tampering detected)"
            );
        }
        platform.emit(self.id, EventKind::Ecall { enclave: self.id, cost_ns: TRANSITION_PAIR_NS });
        f(&self.state)
    }

    /// Produce a remote-attestation quote binding `report_data`.
    pub fn quote(&self, platform: &Platform, report_data: [u8; REPORT_DATA_LEN]) -> Quote {
        // Quoting leaves the enclave to talk to the quoting enclave —
        // modeled as one OCALL round trip.
        platform.emit(self.id, EventKind::Ocall { enclave: self.id, cost_ns: TRANSITION_PAIR_NS });
        platform.attestation.quote(self.measurement, report_data)
    }

    /// Seal `data` so only this enclave identity on this platform can
    /// recover it.
    pub fn seal(&self, platform: &Platform, data: &[u8]) -> Vec<u8> {
        let key = self.sealing_key(platform);
        let gcm = AesGcm::new(&key).expect("32-byte key");
        // Deterministic sealing nonce derived from content would risk
        // nonce reuse; use a random nonce carried in the blob.
        // The sealing key is per-(platform, enclave) so a fixed
        // prefix + counter would also work; we use the snapshot hash
        // for entropy-free determinism plus a length guard.
        let mut nonce = [0u8; 12];
        let digest = Sha256::digest(data);
        nonce.copy_from_slice(&digest[..12]);
        let mut blob = nonce.to_vec();
        blob.extend_from_slice(&gcm.seal(&nonce, b"sgx-seal", data).expect("seal"));
        blob
    }

    /// Recover sealed data.
    pub fn unseal(&self, platform: &Platform, blob: &[u8]) -> Result<Vec<u8>, SealError> {
        if blob.len() < 12 {
            return Err(SealError::BadBlob);
        }
        let key = self.sealing_key(platform);
        let gcm = AesGcm::new(&key).expect("32-byte key");
        let nonce: [u8; 12] = blob[..12].try_into().unwrap();
        gcm.open(&nonce, b"sgx-seal", &blob[12..])
            .map_err(|_| SealError::BadBlob)
    }

    fn sealing_key(&self, platform: &Platform) -> [u8; 32] {
        let okm = hkdf::<Sha256>(
            &platform.sealing_secret,
            &self.measurement.0,
            b"sgx-sealing-key",
            32,
        );
        okm.try_into().unwrap()
    }

    /// Re-encrypt the state snapshot into the host-visible region.
    fn sync_page_image(&mut self, platform: &mut Platform) {
        let snapshot = self.state.snapshot_bytes();
        let gcm = AesGcm::new(&platform.mee_key).expect("32-byte key");
        self.mee_nonce += 1;
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&self.mee_nonce.to_be_bytes());
        let image = gcm
            .seal(&nonce, self.region_name.as_bytes(), &snapshot)
            .expect("seal");
        platform.memory.write_protected(&self.region_name, image);
    }

    /// `EREMOVE` analogue: tear down the enclave, free its protected
    /// pages, and hand the state back to the caller — the
    /// simulation's stand-in for enclave code shipping its results
    /// out (sealed or over an attested channel) before exit.
    ///
    /// `Enclave` has a scrubbing [`Drop`], so `state` cannot be moved
    /// out of `self` directly (E0509). All fallible/panicking work
    /// happens first, while `self` is still armed — an early exit
    /// there drops the enclave normally, wiping the state. Only then
    /// does [`ManuallyDrop`] disarm the destructor so the state can
    /// be read out exactly once and the remaining owning field
    /// dropped by hand: no path double-drops, none leaks.
    ///
    /// Panics if the host tampered with the protected region, like
    /// [`Enclave::ecall`] (SGX raises a machine check on integrity
    /// failure).
    pub fn destroy(self, platform: &mut Platform) -> S {
        if let Some((_, tampered)) = platform.memory.protected_image(&self.region_name) {
            assert!(
                !tampered,
                "enclave memory integrity check failed (host tampering detected)"
            );
        }
        platform.memory.remove_protected(&self.region_name);
        platform.emit(self.id, EventKind::EnclaveDestroy { enclave: self.id });
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped, so `state` is read exactly
        // once and `region_name`'s destructor runs exactly once; the
        // other fields are Copy.
        let state = unsafe { std::ptr::read(&this.state) };
        unsafe { std::ptr::drop_in_place(&mut this.region_name) };
        state
    }
}

impl<S: EnclaveState> Drop for Enclave<S> {
    fn drop(&mut self) {
        // Scrub key material inside the state before its own
        // destructor frees the backing memory.
        self.state.wipe();
    }
}

// Enclave state is, by definition, the secret being protected; keep
// it out of the derived formatter.
impl<S: EnclaveState> std::fmt::Debug for Enclave<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Enclave(id={}, region={}, ..)", self.id, self.region_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::AttestationService;
    use crate::memory::HostInspector;

    fn setup() -> (Platform, CryptoRng, AttestationService) {
        let mut rng = CryptoRng::from_seed(0xE9C1);
        let mut svc = AttestationService::new(&mut rng);
        let pak = svc.provision_platform(&mut rng);
        let platform = Platform::new(pak, &mut rng);
        (platform, rng, svc)
    }

    #[test]
    fn state_is_not_host_visible() {
        let (mut platform, _, _) = setup();
        let code = CodeIdentity::new("proxy", "1.0", b"");
        let secret = b"HOP-KEY-0123456789abcdef".to_vec();
        let _enclave = Enclave::create(&mut platform, &code, secret.clone());
        let insp = HostInspector::new(&mut platform.memory);
        assert!(insp.scan_for(&secret).is_empty(), "enclave state leaked to host memory");
    }

    #[test]
    fn unprotected_state_is_host_visible() {
        let (mut platform, _, _) = setup();
        // A non-enclave middlebox keeps its keys in ordinary memory.
        platform
            .memory
            .write_unprotected("mbox-heap", b"HOP-KEY-0123456789abcdef".to_vec());
        let insp = HostInspector::new(&mut platform.memory);
        assert_eq!(insp.scan_for(b"HOP-KEY"), vec!["mbox-heap".to_string()]);
    }

    #[test]
    fn ecall_updates_and_reencrypts() {
        let (mut platform, _, _) = setup();
        let code = CodeIdentity::new("counter", "1.0", b"");
        let mut enclave = Enclave::create(&mut platform, &code, vec![0u8]);
        let before = {
            let insp = HostInspector::new(&mut platform.memory);
            insp.read_region("enclave-1").unwrap()
        };
        let result = enclave.ecall(&mut platform, |state| {
            state[0] += 1;
            state[0]
        });
        assert_eq!(result, 1);
        let after = {
            let insp = HostInspector::new(&mut platform.memory);
            insp.read_region("enclave-1").unwrap()
        };
        // Image changed (fresh nonce) but still reveals nothing.
        assert_ne!(before, after);
    }

    #[test]
    #[should_panic(expected = "integrity check failed")]
    fn tampering_with_enclave_memory_is_fatal() {
        let (mut platform, _, _) = setup();
        let code = CodeIdentity::new("proxy", "1.0", b"");
        let mut enclave = Enclave::create(&mut platform, &code, vec![1, 2, 3]);
        {
            let mut insp = HostInspector::new(&mut platform.memory);
            insp.tamper("enclave-1", 0, 0xFF);
        }
        enclave.ecall(&mut platform, |_| ());
    }

    #[test]
    fn quote_reflects_code_identity() {
        let (mut platform, _, svc) = setup();
        let good_code = CodeIdentity::new("proxy", "1.0", b"");
        let evil_code = CodeIdentity::new("proxy-evil", "1.0", b"");
        let good = Enclave::create(&mut platform, &good_code, vec![]);
        let evil = Enclave::create(&mut platform, &evil_code, vec![]);
        let report = [5u8; 64];
        let expected = [good_code.measure()];
        assert!(good
            .quote(&platform, report)
            .verify(&svc.root_verifying_key(), &expected, &report)
            .is_ok());
        assert!(evil
            .quote(&platform, report)
            .verify(&svc.root_verifying_key(), &expected, &report)
            .is_err());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let (mut platform, _, _) = setup();
        let code = CodeIdentity::new("proxy", "1.0", b"");
        let enclave = Enclave::create(&mut platform, &code, vec![]);
        let blob = enclave.seal(&platform, b"session ticket keys");
        assert_eq!(enclave.unseal(&platform, &blob).unwrap(), b"session ticket keys");
    }

    #[test]
    fn seal_is_enclave_specific() {
        let (mut platform, _, _) = setup();
        let a = Enclave::create(&mut platform, &CodeIdentity::new("a", "1", b""), vec![]);
        let b = Enclave::create(&mut platform, &CodeIdentity::new("b", "1", b""), vec![]);
        let blob = a.seal(&platform, b"secret");
        assert_eq!(b.unseal(&platform, &blob), Err(SealError::BadBlob));
        assert!(a.unseal(&platform, &blob).is_ok());
    }

    #[test]
    fn seal_is_platform_specific() {
        let (mut p1, mut rng, mut svc) = setup();
        let pak2 = svc.provision_platform(&mut rng);
        let mut p2 = Platform::new(pak2, &mut rng);
        let code = CodeIdentity::new("proxy", "1.0", b"");
        let e1 = Enclave::create(&mut p1, &code, vec![]);
        let e2 = Enclave::create(&mut p2, &code, vec![]);
        let blob = e1.seal(&p1, b"secret");
        assert_eq!(e2.unseal(&p2, &blob), Err(SealError::BadBlob));
    }

    #[test]
    fn tampered_sealed_blob_rejected() {
        let (mut platform, _, _) = setup();
        let enclave = Enclave::create(&mut platform, &CodeIdentity::new("a", "1", b""), vec![]);
        let mut blob = enclave.seal(&platform, b"data");
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert_eq!(enclave.unseal(&platform, &blob), Err(SealError::BadBlob));
        assert_eq!(enclave.unseal(&platform, &[1, 2, 3]), Err(SealError::BadBlob));
    }

    /// Enclave state that records whether `wipe` ran, for proving the
    /// `Drop` impl actually reaches it.
    struct ProbeState {
        data: Vec<u8>,
        wiped: std::rc::Rc<std::cell::Cell<bool>>,
    }

    impl EnclaveState for ProbeState {
        fn snapshot_bytes(&self) -> Vec<u8> {
            self.data.clone()
        }
        fn wipe(&mut self) {
            ct::zeroize(&mut self.data);
            self.wiped.set(true);
        }
    }

    #[test]
    fn dropping_an_enclave_wipes_its_state() {
        let (mut platform, _, _) = setup();
        let wiped = std::rc::Rc::new(std::cell::Cell::new(false));
        let state = ProbeState {
            data: b"hop keys".to_vec(),
            wiped: wiped.clone(),
        };
        let enclave = Enclave::create(&mut platform, &CodeIdentity::new("p", "1", b""), state);
        assert!(!wiped.get());
        drop(enclave);
        assert!(wiped.get(), "Enclave::drop must run EnclaveState::wipe");
    }

    #[test]
    fn destroy_returns_state_intact_and_frees_pages() {
        let (mut platform, _, _) = setup();
        let wiped = std::rc::Rc::new(std::cell::Cell::new(false));
        let state = ProbeState {
            data: b"sealed results".to_vec(),
            wiped: wiped.clone(),
        };
        let mut enclave = Enclave::create(&mut platform, &CodeIdentity::new("p", "1", b""), state);
        enclave.ecall(&mut platform, |s| s.data.push(b'!'));
        let out = enclave.destroy(&mut platform);
        // The caller receives the live state — destroy hands results
        // out, it does not scrub them.
        assert_eq!(out.data, b"sealed results!");
        assert!(!wiped.get(), "destroy must not wipe the returned state");
        // ...but the protected pages are gone (EREMOVE).
        assert!(platform.memory.protected_image("enclave-1").is_none());
        let insp = HostInspector::new(&mut platform.memory);
        assert!(insp.scan_for(b"sealed results").is_empty());
    }

    #[test]
    fn destroy_after_tamper_panics_and_still_wipes() {
        let (mut platform, _, _) = setup();
        let wiped = std::rc::Rc::new(std::cell::Cell::new(false));
        let state = ProbeState {
            data: b"doomed keys".to_vec(),
            wiped: wiped.clone(),
        };
        let enclave = Enclave::create(&mut platform, &CodeIdentity::new("p", "1", b""), state);
        {
            let mut insp = HostInspector::new(&mut platform.memory);
            insp.tamper("enclave-1", 0, 0xFF);
        }
        // The integrity check runs before ManuallyDrop disarms the
        // destructor, so the unwinding path drops the enclave normally
        // — exactly once, wiping the state.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enclave.destroy(&mut platform)
        }));
        assert!(result.is_err());
        assert!(wiped.get(), "unwinding out of destroy must wipe the state");
    }

    #[test]
    fn platform_drop_zeroes_root_keys_in_place() {
        let (platform, _, _) = setup();
        let mut slot = ManuallyDrop::new(platform);
        let p: *mut Platform = &mut *slot;
        // SAFETY: the storage stays allocated inside `slot` for the
        // whole test; after drop_in_place only the inline key arrays
        // are read, which remain initialized bytes. `slot` is
        // ManuallyDrop, so nothing drops the platform a second time.
        unsafe {
            assert!((*p).mee_key.iter().any(|&b| b != 0));
            assert!((*p).sealing_secret.iter().any(|&b| b != 0));
            std::ptr::drop_in_place(p);
            assert!(
                (*p).mee_key.iter().all(|&b| b == 0),
                "Platform::drop left the MEE key in freed memory"
            );
            assert!(
                (*p).sealing_secret.iter().all(|&b| b == 0),
                "Platform::drop left the sealing secret in freed memory"
            );
        }
    }

    proptest::proptest! {
        /// Arbitrary interleavings of create / destroy / plain drop:
        /// no path may double-drop the state (an abort fails the
        /// test process) and destroyed state always comes back
        /// byte-identical.
        #[test]
        fn create_destroy_cycles_never_double_drop(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
                1..8,
            ),
            destroy_mask in proptest::collection::vec(proptest::prelude::any::<bool>(), 8),
        ) {
            let (mut platform, _, _) = setup();
            for (i, payload) in payloads.iter().enumerate() {
                let code = CodeIdentity::new("cycle", "1.0", b"");
                let enclave = Enclave::create(&mut platform, &code, payload.clone());
                if destroy_mask[i] {
                    let state = enclave.destroy(&mut platform);
                    proptest::prop_assert_eq!(&state, payload);
                }
                // else: dropped while armed — Drop wipes in place.
            }
        }
    }
}

//! # mbtls-sgx
//!
//! A behavioural simulation of the two Intel SGX features mbTLS relies
//! on (paper §3.3): **secure execution environments** and **remote
//! attestation** — plus sealing and a calibrated **transition cost
//! model** used to reproduce the paper's Figure 7 ("Network I/O in
//! SGX").
//!
//! ## What the simulation guarantees (and how)
//!
//! * **Isolation** — enclave state lives behind [`enclave::Enclave`],
//!   whose public surface is exactly the ECALL interface the enclave
//!   author exposes. The *host's* view of enclave memory is the
//!   encrypted page image kept in [`memory::MachineMemory`]; tests
//!   (and the Table 1
//!   security-matrix experiments) assert that session keys never
//!   appear in any host-visible byte. A malicious infrastructure
//!   provider is modelled by [`memory::HostInspector`], which can scan
//!   and tamper with every *unprotected* byte on the machine.
//! * **Measurement** — an enclave is measured at creation
//!   ([`measurement::Measurement`], the MRENCLAVE analogue): the
//!   SHA-256 of its code identity. A tampered binary yields a
//!   different measurement, which is how endpoints detect an MIP that
//!   ran modified middlebox code (property P3B).
//! * **Remote attestation** — [`attest::Quote`]s are signed by a
//!   per-platform attestation key which is in turn certified by the
//!   (simulated) Intel attestation root
//!   ([`attest::AttestationService`]). A quote binds 64 bytes of
//!   caller-chosen report data; mbTLS puts the running handshake's
//!   transcript hash there so quotes cannot be replayed across
//!   handshakes (paper §3.4, "Secure Environment Attestation").
//! * **Sealing** — [`enclave::Enclave::seal`] encrypts data under a
//!   key derived from the platform sealing secret and the enclave
//!   measurement, so only the same code on the same platform can
//!   unseal (used for mbTLS session-resumption tickets).
//! * **Costs** — [`cost::SgxCostModel`] charges ECALL/OCALL
//!   transitions, asynchronous exits (interrupts), per-byte memory
//!   encryption, and syscall overheads in virtual nanoseconds, with
//!   defaults calibrated to the SCONE / SGX literature the paper
//!   cites. Figure 7's result — enclave transitions do *not* reduce
//!   I/O-heavy middlebox throughput because interrupt handling and
//!   record crypto dominate — falls out of this model.

#![warn(missing_docs)]

pub mod attest;
pub mod cost;
pub mod enclave;
pub mod measurement;
pub mod memory;

pub use attest::{AttestationError, AttestationService, PlatformAttestationKey, Quote};
pub use cost::SgxCostModel;
pub use enclave::{Enclave, EnclaveState, Platform, SealError};
pub use measurement::{CodeIdentity, Measurement};
pub use memory::HostInspector;

//! The host-memory model: what a malicious infrastructure provider
//! (MIP) can see and touch.
//!
//! A machine's RAM is a set of named regions. Unprotected regions hold
//! plaintext the MIP can scan and overwrite at will. Protected
//! (enclave) regions expose only their encrypted image: reads return
//! ciphertext and writes are detected by the integrity check on the
//! next enclave access — matching SGX's memory-encryption-engine
//! guarantees at the level of abstraction mbTLS's analysis needs
//! (paper §3.1 adversary capabilities).

use std::collections::BTreeMap;

/// A region of host RAM.
pub(crate) enum Region {
    /// Ordinary memory: plaintext visible to everything on the host.
    Unprotected(Vec<u8>),
    /// Enclave page image: ciphertext + integrity tag; the plaintext
    /// never appears here.
    Protected { image: Vec<u8>, tampered: bool },
}

/// All RAM on one simulated machine.
#[derive(Default)]
pub struct MachineMemory {
    pub(crate) regions: BTreeMap<String, Region>,
}

impl MachineMemory {
    /// Fresh empty memory map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate/overwrite an unprotected region (ordinary application
    /// memory, I/O buffers, a non-enclave middlebox's heap, ...).
    pub fn write_unprotected(&mut self, name: &str, data: Vec<u8>) {
        self.regions
            .insert(name.to_string(), Region::Unprotected(data));
    }

    pub(crate) fn write_protected(&mut self, name: &str, image: Vec<u8>) {
        self.regions.insert(
            name.to_string(),
            Region::Protected {
                image,
                tampered: false,
            },
        );
    }

    /// Free a protected region (enclave teardown). Returns whether
    /// the region existed.
    pub(crate) fn remove_protected(&mut self, name: &str) -> bool {
        matches!(
            self.regions.get(name),
            Some(Region::Protected { .. })
        ) && self.regions.remove(name).is_some()
    }

    pub(crate) fn protected_image(&self, name: &str) -> Option<(&[u8], bool)> {
        match self.regions.get(name) {
            Some(Region::Protected { image, tampered }) => Some((image, *tampered)),
            _ => None,
        }
    }
}

/// The MIP's hands: full access to host RAM.
pub struct HostInspector<'a> {
    memory: &'a mut MachineMemory,
}

impl<'a> HostInspector<'a> {
    /// Attach to a machine's memory.
    pub fn new(memory: &'a mut MachineMemory) -> Self {
        HostInspector { memory }
    }

    /// Scan every host-visible byte for `needle`. For protected
    /// regions, the visible bytes are the encrypted image — so secrets
    /// inside an enclave are not findable (unless the enclave leaked
    /// them into an unprotected buffer).
    pub fn scan_for(&self, needle: &[u8]) -> Vec<String> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (name, region) in &self.memory.regions {
            let visible: &[u8] = match region {
                Region::Unprotected(data) => data,
                Region::Protected { image, .. } => image,
            };
            if visible
                .windows(needle.len())
                .any(|w| w == needle)
            {
                hits.push(name.clone());
            }
        }
        hits
    }

    /// Dump a region's host-visible bytes.
    pub fn read_region(&self, name: &str) -> Option<Vec<u8>> {
        self.memory.regions.get(name).map(|r| match r {
            Region::Unprotected(data) => data.clone(),
            Region::Protected { image, .. } => image.clone(),
        })
    }

    /// Overwrite bytes anywhere. Writes to protected regions corrupt
    /// the image; the enclave's integrity check trips on next access.
    pub fn tamper(&mut self, name: &str, offset: usize, value: u8) -> bool {
        match self.memory.regions.get_mut(name) {
            Some(Region::Unprotected(data)) if offset < data.len() => {
                data[offset] = value;
                true
            }
            Some(Region::Protected { image, tampered }) if offset < image.len() => {
                image[offset] = value;
                *tampered = true;
                true
            }
            _ => false,
        }
    }

    /// Names of all regions.
    pub fn region_names(&self) -> Vec<String> {
        self.memory.regions.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_unprotected_secrets() {
        let mut mem = MachineMemory::new();
        mem.write_unprotected("heap", b"xxSECRETKEYxx".to_vec());
        let mut binding = mem;
        let insp = HostInspector::new(&mut binding);
        assert_eq!(insp.scan_for(b"SECRETKEY"), vec!["heap".to_string()]);
        assert!(insp.scan_for(b"MISSING").is_empty());
    }

    #[test]
    fn scan_does_not_find_protected_plaintext() {
        let mut mem = MachineMemory::new();
        // The enclave wrote only ciphertext here (simulated).
        mem.write_protected("enclave", vec![0xAA; 64]);
        let mut binding = mem;
        let insp = HostInspector::new(&mut binding);
        assert!(insp.scan_for(b"SECRETKEY").is_empty());
    }

    #[test]
    fn tamper_marks_protected_regions() {
        let mut mem = MachineMemory::new();
        mem.write_protected("enclave", vec![0u8; 16]);
        {
            let mut insp = HostInspector::new(&mut mem);
            assert!(insp.tamper("enclave", 3, 0xFF));
            assert!(!insp.tamper("enclave", 999, 0xFF));
        }
        let (_, tampered) = mem.protected_image("enclave").unwrap();
        assert!(tampered);
    }

    #[test]
    fn empty_needle_matches_nothing() {
        let mut mem = MachineMemory::new();
        mem.write_unprotected("r", b"abc".to_vec());
        let insp = HostInspector::new(&mut mem);
        assert!(insp.scan_for(b"").is_empty());
    }
}

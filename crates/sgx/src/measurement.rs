//! Enclave measurement — the MRENCLAVE analogue.

use mbtls_crypto::sha2::Sha256;

/// The identity of an enclave binary: what gets hashed into the
/// measurement. In real SGX this is the initial contents of the code
/// and data pages; here it is a structured description of the build,
/// which preserves the property that matters — any change to the code
/// or its configuration changes the measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeIdentity {
    /// Vendor / software name, e.g. `"mbtls-proxy"`.
    pub name: String,
    /// Version string, e.g. `"2.4.25"`.
    pub version: String,
    /// Hash-like digest of the configuration (cipher suite policy,
    /// filter rules, ...). Any config change flips the measurement.
    pub config: Vec<u8>,
}

impl CodeIdentity {
    /// Convenience constructor.
    pub fn new(name: &str, version: &str, config: &[u8]) -> Self {
        CodeIdentity {
            name: name.to_string(),
            version: version.to_string(),
            config: config.to_vec(),
        }
    }

    /// Compute the measurement of this identity.
    pub fn measure(&self) -> Measurement {
        let mut h = <Sha256 as mbtls_crypto::sha2::Hash>::new();
        use mbtls_crypto::sha2::Hash;
        h.update(&(self.name.len() as u32).to_be_bytes());
        h.update(self.name.as_bytes());
        h.update(&(self.version.len() as u32).to_be_bytes());
        h.update(self.version.as_bytes());
        h.update(&(self.config.len() as u32).to_be_bytes());
        h.update(&self.config);
        let digest = h.finalize();
        Measurement(digest.try_into().unwrap())
    }
}

/// A 32-byte enclave measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Hex rendering for logs and error messages.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let a = CodeIdentity::new("proxy", "1.0", b"cfg");
        let b = CodeIdentity::new("proxy", "1.0", b"cfg");
        assert_eq!(a.measure(), b.measure());
    }

    #[test]
    fn any_field_change_changes_measurement() {
        let base = CodeIdentity::new("proxy", "1.0", b"cfg");
        let m = base.measure();
        assert_ne!(CodeIdentity::new("proxy2", "1.0", b"cfg").measure(), m);
        assert_ne!(CodeIdentity::new("proxy", "1.1", b"cfg").measure(), m);
        assert_ne!(CodeIdentity::new("proxy", "1.0", b"cfg2").measure(), m);
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        // "ab" + "c" must differ from "a" + "bc" (length framing).
        let a = CodeIdentity::new("ab", "c", b"");
        let b = CodeIdentity::new("a", "bc", b"");
        assert_ne!(a.measure(), b.measure());
    }

    #[test]
    fn hex_rendering() {
        let m = CodeIdentity::new("x", "y", b"z").measure();
        let hex = m.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

//! Property-based tests for the HTTP substrate.

use mbtls_http::compress::{lzss_compress, lzss_decompress};
use mbtls_http::message::{Request, RequestParser, Response, ResponseParser};
use mbtls_http::patterns::PatternMatcher;
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

fn arb_header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

proptest! {
    /// LZSS round-trips arbitrary binary data.
    #[test]
    fn lzss_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let compressed = lzss_compress(&data);
        prop_assert_eq!(lzss_decompress(&compressed).unwrap(), data);
    }

    /// LZSS round-trips highly repetitive data (match-heavy paths).
    #[test]
    fn lzss_roundtrip_repetitive(unit in proptest::collection::vec(any::<u8>(), 1..20),
                                 reps in 1usize..300) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let compressed = lzss_compress(&data);
        prop_assert_eq!(lzss_decompress(&compressed).unwrap(), data);
    }

    /// Decompression never panics on arbitrary (usually invalid) input.
    #[test]
    fn lzss_decompress_total(garbage in proptest::collection::vec(any::<u8>(), 0..500)) {
        let _ = lzss_decompress(&garbage);
    }

    /// Requests round-trip through encode/parse for arbitrary headers
    /// and bodies, across arbitrary chunkings.
    #[test]
    fn request_roundtrip(target in "/[a-z0-9/._-]{0,30}",
                         headers in proptest::collection::vec((arb_token(), arb_header_value()), 0..6),
                         body in proptest::collection::vec(any::<u8>(), 0..500),
                         chunk in 1usize..64) {
        // Unique-ify header names (duplicates legal in HTTP but our
        // set_header-based encode collapses them).
        let mut seen = std::collections::HashSet::new();
        let headers: Vec<(String, String)> = headers
            .into_iter()
            .filter(|(n, _)| {
                !n.eq_ignore_ascii_case("content-length") && seen.insert(n.to_ascii_lowercase())
            })
            .collect();
        let req = Request {
            method: "POST".into(),
            target: target.clone(),
            headers,
            body,
        };
        let wire = req.encode();
        let mut parser = RequestParser::new();
        for piece in wire.chunks(chunk) {
            parser.feed(piece);
        }
        let parsed = parser.next_request().unwrap().expect("complete");
        prop_assert_eq!(&parsed.method, "POST");
        prop_assert_eq!(&parsed.target, &target);
        prop_assert_eq!(&parsed.body, &req.body);
        for (name, value) in &req.headers {
            prop_assert_eq!(parsed.header(name), Some(value.as_str()));
        }
    }

    /// Responses round-trip similarly.
    #[test]
    fn response_roundtrip(status in 100u16..600,
                          body in proptest::collection::vec(any::<u8>(), 0..800),
                          chunk in 1usize..64) {
        let resp = Response {
            status,
            reason: "Because".into(),
            headers: vec![("Content-Type".into(), "application/octet-stream".into())],
            body,
        };
        let wire = resp.encode();
        let mut parser = ResponseParser::new();
        for piece in wire.chunks(chunk) {
            parser.feed(piece);
        }
        let parsed = parser.next_response().unwrap().expect("complete");
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(&parsed.body, &resp.body);
    }

    /// Streaming pattern matching equals one-shot matching for any
    /// chunking of the input.
    #[test]
    fn streaming_equals_oneshot(haystack in proptest::collection::vec(any::<u8>(), 0..800),
                                cut in any::<prop::sample::Index>()) {
        let patterns: [&[u8]; 3] = [b"abc", b"\x00\x01", b"needle"];
        let matcher = PatternMatcher::new(&patterns);
        let oneshot = matcher.find_all(&haystack);
        let mut streaming = PatternMatcher::new(&patterns);
        let mid = cut.index(haystack.len() + 1);
        let mut got = streaming.scan(&haystack[..mid.min(haystack.len())]);
        got.extend(streaming.scan(&haystack[mid.min(haystack.len())..]));
        prop_assert_eq!(got, oneshot);
    }
}

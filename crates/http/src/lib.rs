//! # mbtls-http
//!
//! The application-layer substrate for mbTLS middlebox workloads:
//!
//! * [`message`] — HTTP/1.1 requests/responses with incremental
//!   parsers (middleboxes see data in record-sized chunks).
//! * [`compress`] — a self-contained LZSS codec, the compression
//!   workload behind the Flywheel-style proxy (see DESIGN.md for why
//!   this substitutes for zlib).
//! * [`patterns`] — an Aho-Corasick multi-pattern matcher, the
//!   scanning engine for the IDS / virus-scanner middleboxes.
//! * [`workload`] — deterministic seeded HTTP request/response mixes
//!   for service-chain scenarios and benches.
//!
//! All are from-scratch implementations with no dependencies.

#![warn(missing_docs)]

pub mod compress;
pub mod message;
pub mod patterns;
pub mod workload;

pub use compress::{lzss_compress, lzss_decompress};
pub use message::{Request, RequestParser, Response, ResponseParser};
pub use patterns::PatternMatcher;
pub use workload::{response_for, RequestMix};

//! Deterministic HTTP workload mixes for chain scenarios and benches.
//!
//! A seeded request generator producing a realistic GET mix — a hot
//! set of popular assets (cache-friendly) plus a long tail of unique
//! article pages — and a pure function mapping any request to its
//! canonical response, so a bench server can answer whatever reaches
//! it after middlebox rewrites. Everything derives from the seed via
//! splitmix64: the same seed always yields the same byte stream,
//! which is what lets chain runs be compared bit-for-bit.

use crate::message::{Request, Response};

/// Advance a splitmix64 state and return the next value.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hot set: a small pool of popular targets that dominates the
/// mix, giving a shared cache real hit opportunities.
const HOT_TARGETS: [&str; 8] = [
    "/index.html",
    "/assets/app.js",
    "/assets/site.css",
    "/images/logo.svg",
    "/api/session",
    "/news/today.html",
    "/assets/vendor.js",
    "/fonts/body.woff",
];

/// Fraction (out of 100) of requests drawn from the hot set.
const HOT_PERCENT: u64 = 70;

/// A seeded generator of GET requests following the hot-set /
/// long-tail mix.
pub struct RequestMix {
    state: u64,
}

impl RequestMix {
    /// A mix derived entirely from `seed`.
    pub fn new(seed: u64) -> Self {
        RequestMix { state: seed }
    }

    /// The next request in the mix.
    pub fn next_request(&mut self) -> Request {
        let roll = splitmix64(&mut self.state);
        if roll % 100 < HOT_PERCENT {
            let idx = (roll >> 32) as usize % HOT_TARGETS.len();
            Request::get(HOT_TARGETS[idx], "chain.example")
        } else {
            let article = (roll >> 32) % 10_000;
            Request::get(&format!("/article/{article}.html"), "chain.example")
        }
    }
}

/// A compressible pseudo-HTML body of exactly `len` bytes, varied by
/// `seed` so distinct pages have distinct content.
pub fn html_body(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = seed;
    while out.len() < len {
        let word = splitmix64(&mut state);
        let para = format!(
            "<p>Lorem ipsum dolor sit amet {:08x}, consectetur adipiscing \
             elit. The quick brown fox jumps over the lazy dog.</p>\n",
            word as u32
        );
        out.extend_from_slice(para.as_bytes());
    }
    out.truncate(len);
    out
}

/// The canonical response for `request` — a pure function of the
/// target, so the server side of a chain scenario can answer any
/// request it receives (including ones middleboxes rewrote) without
/// coordinating with the client-side generator.
pub fn response_for(request: &Request) -> Response {
    let target = request.target.as_str();
    // Body length derives from a target hash: a stable mix of small
    // (headers-dominated), medium, and large (compression-worthy)
    // objects.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in target.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    let len = match h % 4 {
        0 => 180 + (h >> 8) % 200,     // small object
        1 => 1_200 + (h >> 8) % 800,   // typical page
        2 => 4_000 + (h >> 8) % 2_000, // asset bundle
        _ => 9_000 + (h >> 8) % 4_000, // large, compression-worthy
    } as usize;
    let mut resp = Response::ok(&html_body(h, len));
    resp.set_header("Cache-Control", "max-age=60");
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RequestMix::new(42);
        let mut b = RequestMix::new(42);
        for _ in 0..200 {
            assert_eq!(a.next_request().encode(), b.next_request().encode());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RequestMix::new(1);
        let mut b = RequestMix::new(2);
        let same = (0..50)
            .filter(|_| a.next_request().target == b.next_request().target)
            .count();
        assert!(same < 50, "independent seeds must not track each other");
    }

    #[test]
    fn mix_contains_hot_set_and_tail() {
        let mut mix = RequestMix::new(7);
        let mut hot = 0usize;
        let mut tail = 0usize;
        for _ in 0..1_000 {
            let req = mix.next_request();
            if HOT_TARGETS.contains(&req.target.as_str()) {
                hot += 1;
            } else {
                assert!(req.target.starts_with("/article/"));
                tail += 1;
            }
        }
        // 70/30 split with generous slack.
        assert!(hot > 550 && tail > 150, "hot={hot} tail={tail}");
    }

    #[test]
    fn responses_are_pure_and_sized() {
        let req = Request::get("/index.html", "chain.example");
        let a = response_for(&req);
        let b = response_for(&req);
        assert_eq!(a, b, "response must be a pure function of the request");
        assert!(!a.body.is_empty());
        assert_eq!(a.status, 200);
        // Distinct targets get distinct bodies.
        let c = response_for(&Request::get("/assets/app.js", "chain.example"));
        assert_ne!(a.body, c.body);
    }

    #[test]
    fn bodies_are_compressible() {
        // The compression proxy should find real wins on these.
        let body = html_body(99, 8_192);
        assert_eq!(body.len(), 8_192);
        let compressed = crate::compress::lzss_compress(&body);
        assert!(
            compressed.len() < body.len() * 3 / 4,
            "pseudo-HTML must compress: {} -> {}",
            body.len(),
            compressed.len()
        );
    }
}

//! A self-contained LZSS codec — the compression workload for the
//! Flywheel-style proxy middlebox.
//!
//! Format: a stream of flag bytes, each covering the next 8 tokens
//! (LSB first). Flag bit 1 = literal byte; 0 = a back-reference of
//! two bytes encoding (offset: 12 bits, length-3: 4 bits) against a
//! 4096-byte sliding window. Match lengths are 3..=18.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compress `input`.
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut pos = 0usize;
    let mut flag_index: Option<usize> = None;
    let mut flag_bit = 0u8;

    // Hash chains for match finding: map 3-byte prefix to recent
    // positions.
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; input.len().max(1)];
    let hash = |data: &[u8]| -> usize {
        ((usize::from(data[0]) << 6) ^ (usize::from(data[1]) << 3) ^ usize::from(data[2]))
            & ((1 << 13) - 1)
    };

    let push_flag_bit = |out: &mut Vec<u8>, flag_index: &mut Option<usize>, flag_bit: &mut u8, literal: bool| {
        if flag_index.is_none() || *flag_bit == 8 {
            out.push(0);
            *flag_index = Some(out.len() - 1);
            *flag_bit = 0;
        }
        if literal {
            let idx = flag_index.unwrap();
            out[idx] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    while pos < input.len() {
        // Find the longest match within the window.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash(&input[pos..]);
            let mut candidate = head[h];
            let mut tries = 0;
            while candidate != usize::MAX && pos - candidate <= WINDOW && tries < 32 {
                let max_len = MAX_MATCH.min(input.len() - pos);
                let mut len = 0;
                while len < max_len && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_off = pos - candidate;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate];
                tries += 1;
            }
        }

        if best_len >= MIN_MATCH {
            push_flag_bit(&mut out, &mut flag_index, &mut flag_bit, false);
            debug_assert!((1..=WINDOW).contains(&best_off));
            let token = (((best_off - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            out.extend_from_slice(&token.to_be_bytes());
            // Insert hash entries for every covered position.
            for p in pos..pos + best_len {
                if p + MIN_MATCH <= input.len() {
                    let h = hash(&input[p..]);
                    prev[p] = head[h];
                    head[h] = p;
                }
            }
            pos += best_len;
        } else {
            push_flag_bit(&mut out, &mut flag_index, &mut flag_bit, true);
            out.push(input[pos]);
            if pos + MIN_MATCH <= input.len() {
                let h = hash(&input[pos..]);
                prev[pos] = head[h];
                head[h] = pos;
            }
            pos += 1;
        }
    }
    out
}

/// Decompression failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzssError {
    /// Input ended inside a token.
    Truncated,
    /// A back-reference pointed before the start of output.
    BadReference,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "truncated LZSS stream"),
            LzssError::BadReference => write!(f, "invalid LZSS back-reference"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompress an LZSS stream.
pub fn lzss_decompress(input: &[u8]) -> Result<Vec<u8>, LzssError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0usize;
    while pos < input.len() {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if pos >= input.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(input[pos]);
                pos += 1;
            } else {
                if pos + 2 > input.len() {
                    return Err(LzssError::Truncated);
                }
                let token = u16::from_be_bytes([input[pos], input[pos + 1]]);
                pos += 2;
                let offset = usize::from(token >> 4) + 1;
                let length = usize::from(token & 0xF) + MIN_MATCH;
                if offset > out.len() {
                    return Err(LzssError::BadReference);
                }
                let start = out.len() - offset;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for input in [
            b"".to_vec(),
            b"a".to_vec(),
            b"hello world".to_vec(),
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            b"abcabcabcabcabcabcabcabc".to_vec(),
        ] {
            let compressed = lzss_compress(&input);
            assert_eq!(lzss_decompress(&compressed).unwrap(), input, "{input:?}");
        }
    }

    #[test]
    fn compresses_repetitive_data() {
        let input: Vec<u8> = b"The quick brown fox. ".repeat(100);
        let compressed = lzss_compress(&input);
        assert!(
            compressed.len() < input.len() / 3,
            "{} !< {}",
            compressed.len(),
            input.len() / 3
        );
        assert_eq!(lzss_decompress(&compressed).unwrap(), input);
    }

    #[test]
    fn handles_incompressible_data() {
        // Pseudo-random bytes: output grows slightly (flag overhead)
        // but round-trips.
        let mut x = 12345u64;
        let input: Vec<u8> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let compressed = lzss_compress(&input);
        assert!(compressed.len() <= input.len() + input.len() / 8 + 2);
        assert_eq!(lzss_decompress(&compressed).unwrap(), input);
    }

    #[test]
    fn long_range_matches() {
        // Repetition separated by filler within the window.
        let mut input = b"0123456789abcdefghij".to_vec();
        input.extend(vec![b'x'; 3000]);
        input.extend_from_slice(b"0123456789abcdefghij");
        let compressed = lzss_compress(&input);
        assert_eq!(lzss_decompress(&compressed).unwrap(), input);
    }

    #[test]
    fn rejects_corrupt_streams() {
        // Reference before start of output.
        let bad = vec![0b0000_0000u8, 0xFF, 0xF5];
        assert_eq!(lzss_decompress(&bad), Err(LzssError::BadReference));
        // Truncated token.
        let bad = vec![0b0000_0000u8, 0x00];
        assert_eq!(lzss_decompress(&bad), Err(LzssError::Truncated));
    }

    #[test]
    fn large_html_like_payload() {
        let page: Vec<u8> = (0..200)
            .flat_map(|i| {
                format!(
                    "<div class=\"row\"><span id=\"cell-{i}\">value {i}</span></div>\n"
                )
                .into_bytes()
            })
            .collect();
        let compressed = lzss_compress(&page);
        assert!(compressed.len() < page.len() / 2);
        assert_eq!(lzss_decompress(&compressed).unwrap(), page);
    }
}

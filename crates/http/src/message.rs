//! HTTP/1.1 messages and incremental parsers.
//!
//! Scope: what middlebox applications need — request/response lines,
//! headers, Content-Length bodies. Chunked transfer encoding and
//! HTTP/2 are out of scope (the paper's prototype proxy speaks plain
//! HTTP/1.1).

/// Parse failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed start line or header.
    Malformed,
    /// Header section exceeded the size bound.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed => write!(f, "malformed HTTP message"),
            HttpError::TooLarge => write!(f, "HTTP header section too large"),
        }
    }
}

impl std::error::Error for HttpError {}

const MAX_HEAD: usize = 64 * 1024;

/// Quick sniff: does this look like the start of an HTTP/1.x request?
/// Middlebox processors bypass parsing for non-HTTP streams.
pub fn looks_like_http_request(data: &[u8]) -> bool {
    const METHODS: [&[u8]; 7] = [
        b"GET ", b"POST ", b"PUT ", b"HEAD ", b"DELETE ", b"OPTIONS ", b"PATCH ",
    ];
    if data.is_empty() {
        return false;
    }
    // Prefix-compatible with some method token (handles short chunks).
    METHODS.iter().any(|m| {
        let n = data.len().min(m.len());
        data[..n] == m[..n]
    })
}

/// Quick sniff: does this look like the start of an HTTP/1.x response?
pub fn looks_like_http_response(data: &[u8]) -> bool {
    let probe = b"HTTP/1.";
    if data.is_empty() {
        return false;
    }
    let n = data.len().min(probe.len());
    data[..n] == probe[..n]
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (GET, POST, ...).
    pub method: String,
    /// Request target (path).
    pub target: String,
    /// Header fields in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header fields in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Convenience GET with a Host header.
    pub fn get(target: &str, host: &str) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            headers: vec![("Host".into(), host.into())],
            body: Vec::new(),
        }
    }

    /// First value of a header (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Insert or replace a header.
    pub fn set_header(&mut self, name: &str, value: &str) {
        set_header(&mut self.headers, name, value);
    }

    /// Serialize to wire form (sets Content-Length when a body is
    /// present).
    pub fn encode(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        if !self.body.is_empty() || self.method == "POST" || self.method == "PUT" {
            set_header(&mut headers, "Content-Length", &self.body.len().to_string());
        }
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        for (name, value) in &headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

impl Response {
    /// Convenience 200 with a body.
    pub fn ok(body: &[u8]) -> Response {
        Response {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Content-Type".into(), "text/html".into())],
            body: body.to_vec(),
        }
    }

    /// Convenience status-only response.
    pub fn status(status: u16, reason: &str) -> Response {
        Response {
            status,
            reason: reason.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First value of a header (case-insensitive name).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Insert or replace a header.
    pub fn set_header(&mut self, name: &str, value: &str) {
        set_header(&mut self.headers, name, value);
    }

    /// Serialize to wire form (always sets Content-Length).
    pub fn encode(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        set_header(&mut headers, "Content-Length", &self.body.len().to_string());
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).into_bytes();
        for (name, value) in &headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn set_header(headers: &mut Vec<(String, String)>, name: &str, value: &str) {
    if let Some(entry) = headers.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(name)) {
        entry.1 = value.to_string();
    } else {
        headers.push((name.to_string(), value.to_string()));
    }
}

/// Parse a header block (after the start line, up to the blank line).
fn parse_headers(lines: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines.split("\r\n") {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Malformed)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

fn content_length(headers: &[(String, String)]) -> usize {
    header_lookup(headers, "Content-Length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Incremental request parser: feed bytes, pull complete requests.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// Fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet parsed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete request, if any.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf)? else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).map_err(|_| HttpError::Malformed)?;
        let (start_line, header_block) = head.split_once("\r\n").unwrap_or((head, ""));
        let mut parts = start_line.split(' ');
        let method = parts.next().ok_or(HttpError::Malformed)?.to_string();
        let target = parts.next().ok_or(HttpError::Malformed)?.to_string();
        let version = parts.next().ok_or(HttpError::Malformed)?;
        if !version.starts_with("HTTP/1.") || method.is_empty() {
            return Err(HttpError::Malformed);
        }
        let headers = parse_headers(header_block)?;
        let body_len = content_length(&headers);
        let total = head_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            target,
            headers,
            body,
        }))
    }
}

/// Incremental response parser.
#[derive(Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
}

impl ResponseParser {
    /// Fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pull the next complete response, if any.
    pub fn next_response(&mut self) -> Result<Option<Response>, HttpError> {
        let Some(head_end) = find_head_end(&self.buf)? else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).map_err(|_| HttpError::Malformed)?;
        let (start_line, header_block) = head.split_once("\r\n").unwrap_or((head, ""));
        let mut parts = start_line.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::Malformed)?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed);
        }
        let status: u16 = parts
            .next()
            .ok_or(HttpError::Malformed)?
            .parse()
            .map_err(|_| HttpError::Malformed)?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(header_block)?;
        let body_len = content_length(&headers);
        let total = head_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Response {
            status,
            reason,
            headers,
            body,
        }))
    }
}

/// Locate the `\r\n\r\n` terminating the header section. Returns its
/// start offset.
fn find_head_end(buf: &[u8]) -> Result<Option<usize>, HttpError> {
    match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => Ok(Some(pos)),
        None if buf.len() > MAX_HEAD => Err(HttpError::TooLarge),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::get("/index.html", "example.com");
        req.set_header("User-Agent", "mbtls-test");
        let wire = req.encode();
        let mut parser = RequestParser::new();
        parser.feed(&wire);
        let parsed = parser.next_request().unwrap().unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.target, "/index.html");
        assert_eq!(parsed.header("host"), Some("example.com"));
        assert_eq!(parsed.header("USER-AGENT"), Some("mbtls-test"));
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn request_with_body() {
        let req = Request {
            method: "POST".into(),
            target: "/submit".into(),
            headers: vec![("Host".into(), "x".into())],
            body: b"name=value&x=1".to_vec(),
        };
        let wire = req.encode();
        let mut parser = RequestParser::new();
        parser.feed(&wire);
        let parsed = parser.next_request().unwrap().unwrap();
        assert_eq!(parsed.body, b"name=value&x=1");
        assert_eq!(parsed.header("content-length"), Some("14"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(b"<html>hi</html>");
        let wire = resp.encode();
        let mut parser = ResponseParser::new();
        parser.feed(&wire);
        let parsed = parser.next_response().unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, b"<html>hi</html>");
    }

    #[test]
    fn incremental_parsing_across_chunks() {
        let resp = Response::ok(&vec![7u8; 1000]);
        let wire = resp.encode();
        let mut parser = ResponseParser::new();
        for chunk in wire.chunks(13) {
            parser.feed(chunk);
        }
        let parsed = parser.next_response().unwrap().unwrap();
        assert_eq!(parsed.body.len(), 1000);
        assert!(parser.next_response().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests() {
        let mut parser = RequestParser::new();
        parser.feed(&Request::get("/a", "h").encode());
        parser.feed(&Request::get("/b", "h").encode());
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/a");
        assert_eq!(parser.next_request().unwrap().unwrap().target, "/b");
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn malformed_rejected() {
        let mut parser = RequestParser::new();
        parser.feed(b"NOT_A_REQUEST\r\n\r\n");
        assert_eq!(parser.next_request(), Err(HttpError::Malformed));

        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n");
        assert_eq!(parser.next_request(), Err(HttpError::Malformed));

        let mut parser = ResponseParser::new();
        parser.feed(b"HTTP/1.1 abc OK\r\n\r\n");
        assert_eq!(parser.next_response(), Err(HttpError::Malformed));
    }

    #[test]
    fn oversized_head_rejected() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD + 10];
        parser.feed(&filler);
        assert_eq!(parser.next_request(), Err(HttpError::TooLarge));
    }

    #[test]
    fn header_replacement() {
        let mut resp = Response::ok(b"x");
        resp.set_header("Content-Type", "application/json");
        assert_eq!(resp.header("content-type"), Some("application/json"));
        // Only one entry remains.
        let n = resp
            .headers
            .iter()
            .filter(|(k, _)| k.eq_ignore_ascii_case("content-type"))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn status_response() {
        let wire = Response::status(404, "Not Found").encode();
        let mut parser = ResponseParser::new();
        parser.feed(&wire);
        let parsed = parser.next_response().unwrap().unwrap();
        assert_eq!(parsed.status, 404);
        assert_eq!(parsed.reason, "Not Found");
    }
}

//! Aho-Corasick multi-pattern matching — the scanning engine behind
//! the IDS and virus-scanner middleboxes (the pattern-matching
//! middlebox class the paper contrasts with BlindBox in §2.2).

use std::collections::VecDeque;

/// A match: which pattern, and the byte offset just past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMatch {
    /// Index into the pattern list.
    pub pattern: usize,
    /// Offset of the byte following the match, relative to the start
    /// of all streamed input.
    pub end_offset: usize,
}

#[derive(Clone)]
struct Node {
    /// Transitions: 256-way dense table (u32::MAX = none).
    next: [u32; 256],
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node.
    output: Vec<usize>,
}

impl Node {
    fn new() -> Self {
        Node {
            next: [u32::MAX; 256],
            fail: 0,
            output: Vec::new(),
        }
    }
}

/// A compiled multi-pattern automaton usable as a streaming scanner.
pub struct PatternMatcher {
    nodes: Vec<Node>,
    patterns: Vec<Vec<u8>>,
    /// Streaming state.
    state: u32,
    consumed: usize,
}

impl PatternMatcher {
    /// Compile the given patterns. Empty patterns are ignored.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let patterns: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_ref().to_vec()).collect();
        let mut nodes = vec![Node::new()];
        // Build the trie.
        for (pi, pattern) in patterns.iter().enumerate() {
            if pattern.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in pattern {
                let slot = nodes[cur as usize].next[b as usize];
                cur = if slot == u32::MAX {
                    nodes.push(Node::new());
                    let new_id = (nodes.len() - 1) as u32;
                    nodes[cur as usize].next[b as usize] = new_id;
                    new_id
                } else {
                    slot
                };
            }
            nodes[cur as usize].output.push(pi);
        }
        // BFS to set failure links and convert to a full automaton.
        let mut queue = VecDeque::new();
        for b in 0..256usize {
            let child = nodes[0].next[b];
            if child == u32::MAX {
                nodes[0].next[b] = 0;
            } else {
                nodes[child as usize].fail = 0;
                queue.push_back(child);
            }
        }
        while let Some(node_id) = queue.pop_front() {
            // Merge output of the failure target.
            let fail = nodes[node_id as usize].fail;
            let fail_out = nodes[fail as usize].output.clone();
            nodes[node_id as usize].output.extend(fail_out);
            for b in 0..256usize {
                let child = nodes[node_id as usize].next[b];
                let fail_next = nodes[fail as usize].next[b];
                if child == u32::MAX {
                    nodes[node_id as usize].next[b] = fail_next;
                } else {
                    nodes[child as usize].fail = fail_next;
                    queue.push_back(child);
                }
            }
        }
        PatternMatcher {
            nodes,
            patterns,
            state: 0,
            consumed: 0,
        }
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The pattern bytes for an index.
    pub fn pattern(&self, index: usize) -> &[u8] {
        &self.patterns[index]
    }

    /// Scan a chunk, continuing from previous chunks (patterns
    /// spanning chunk boundaries are found). Returns matches in order.
    pub fn scan(&mut self, data: &[u8]) -> Vec<PatternMatch> {
        let mut matches = Vec::new();
        for &b in data {
            self.state = self.nodes[self.state as usize].next[b as usize];
            self.consumed += 1;
            let node = &self.nodes[self.state as usize];
            for &pattern in &node.output {
                matches.push(PatternMatch {
                    pattern,
                    end_offset: self.consumed,
                });
            }
        }
        matches
    }

    /// Reset the streaming state (new flow).
    pub fn reset(&mut self) {
        self.state = 0;
        self.consumed = 0;
    }

    /// One-shot scan of a complete buffer (does not disturb streaming
    /// state).
    pub fn find_all(&self, data: &[u8]) -> Vec<PatternMatch> {
        let mut state = 0u32;
        let mut matches = Vec::new();
        for (i, &b) in data.iter().enumerate() {
            state = self.nodes[state as usize].next[b as usize];
            for &pattern in &self.nodes[state as usize].output {
                matches.push(PatternMatch {
                    pattern,
                    end_offset: i + 1,
                });
            }
        }
        matches
    }

    /// Does the buffer contain any pattern?
    pub fn contains_any(&self, data: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in data {
            state = self.nodes[state as usize].next[b as usize];
            if !self.nodes[state as usize].output.is_empty() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_pattern() {
        let m = PatternMatcher::new(&[b"virus".as_slice()]);
        let matches = m.find_all(b"this file contains a virus payload");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].pattern, 0);
        assert_eq!(matches[0].end_offset, 26);
    }

    #[test]
    fn finds_overlapping_patterns() {
        let m = PatternMatcher::new(&[b"he".as_slice(), b"she", b"hers", b"his"]);
        let matches = m.find_all(b"ushers");
        // "ushers" contains she (ends 4), he (ends 4), hers (ends 6).
        let found: Vec<usize> = matches.iter().map(|m| m.pattern).collect();
        assert!(found.contains(&0), "he");
        assert!(found.contains(&1), "she");
        assert!(found.contains(&2), "hers");
        assert!(!found.contains(&3), "his");
    }

    #[test]
    fn streaming_matches_across_chunks() {
        let mut m = PatternMatcher::new(&[b"malware-signature".as_slice()]);
        let data = b"....malware-signature....";
        let mid = 10; // split inside the pattern
        let mut all = m.scan(&data[..mid]);
        all.extend(m.scan(&data[mid..]));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].end_offset, 21);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = PatternMatcher::new(&[b"abc".as_slice()]);
        m.scan(b"ab");
        m.reset();
        // After reset the dangling "ab" prefix is forgotten.
        assert!(m.scan(b"c").is_empty());
        assert_eq!(m.scan(b"abc").len(), 1);
    }

    #[test]
    fn no_false_positives() {
        let m = PatternMatcher::new(&[b"exploit".as_slice(), b"attack"]);
        assert!(!m.contains_any(b"perfectly benign traffic with exploi and attac"));
        assert!(m.contains_any(b"...attack..."));
    }

    #[test]
    fn repeated_matches_counted() {
        let m = PatternMatcher::new(&[b"aa".as_slice()]);
        // "aaaa" contains "aa" ending at 2, 3, 4.
        assert_eq!(m.find_all(b"aaaa").len(), 3);
    }

    #[test]
    fn binary_patterns() {
        let m = PatternMatcher::new(&[&[0x00u8, 0xFF, 0x00][..], &[0xDE, 0xAD, 0xBE, 0xEF][..]]);
        assert!(m.contains_any(&[1, 2, 0xDE, 0xAD, 0xBE, 0xEF, 9]));
        assert!(m.contains_any(&[0x00, 0xFF, 0x00]));
        assert!(!m.contains_any(&[0xDE, 0xAD, 0xBE]));
    }

    #[test]
    fn empty_patterns_ignored() {
        let m = PatternMatcher::new(&[b"".as_slice(), b"x"]);
        assert_eq!(m.find_all(b"x").len(), 1);
        assert_eq!(m.pattern_count(), 2);
    }
}

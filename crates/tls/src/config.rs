//! Client and server configuration.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mbtls_crypto::ed25519::VerifyingKey;
use mbtls_pki::cert::{Certificate, CertifiedKey};
use mbtls_pki::delegation::{DelegatedCredential, DelegatedRole};
use mbtls_pki::TrustStore;
use mbtls_sgx::{Measurement, Quote};

use crate::messages::Extension;
use crate::session::ResumptionData;
use crate::suites::CipherSuite;

/// Something that can produce SGX quotes — implemented by the glue
/// that runs a TLS endpoint inside a simulated enclave.
pub trait Attestor: Send + Sync {
    /// Produce a quote binding `report_data` (the transcript hash).
    fn quote(&self, report_data: [u8; 64]) -> Quote;
}

/// What a verifier demands of a peer's attestation.
#[derive(Clone)]
pub struct AttestationPolicy {
    /// The attestation service root of trust.
    pub root: VerifyingKey,
    /// Acceptable enclave measurements (e.g. the published hash of
    /// "mbtls-proxy v1.0 with strong ciphers only").
    pub acceptable: Vec<Measurement>,
}

/// Something that can produce delegated credentials bound to a
/// session — implemented by the glue that connects a middlebox to its
/// delegating endpoint (DESIGN.md §6j). Called once per handshake
/// with that handshake's transcript binding.
pub trait CredentialProvider: Send + Sync {
    /// A credential whose session nonce is bound to `session_binding`
    /// (the transcript's attestation binding; the nonce is its first
    /// 32 bytes).
    fn credential(&self, session_binding: [u8; 64]) -> DelegatedCredential;
    /// The delegating endpoint's leaf-first certificate chain.
    fn issuer_chain(&self) -> Vec<Certificate>;
}

/// What a verifier demands of a peer's delegated credential
/// (the mdTLS-style alternative to [`AttestationPolicy`]).
#[derive(Clone)]
pub struct DelegationPolicy {
    /// Roots the credential's issuer chain must anchor to.
    pub trust_store: Arc<TrustStore>,
    /// The endpoint name delegations must come from.
    pub issuer: String,
    /// When set, the credential's role must permit this role.
    pub required_role: Option<DelegatedRole>,
}

/// Client-side configuration. Cheap to clone via `Arc`.
pub struct ClientConfig {
    /// Trusted roots for server (and middlebox) certificates.
    pub trust_store: Arc<TrustStore>,
    /// Offered suites, preference order.
    pub suites: Vec<CipherSuite>,
    /// "Current time" for certificate validation (virtual seconds).
    pub current_time: u64,
    /// Extra extensions appended to the ClientHello (mbTLS adds
    /// MiddleboxSupport here).
    pub extra_extensions: Vec<Extension>,
    /// If set, require the peer to attest and verify against this
    /// policy.
    pub attestation_policy: Option<AttestationPolicy>,
    /// If set, require the peer to present a delegated credential and
    /// verify it against this policy (the peer may then present an
    /// empty certificate chain; its identity is the credential).
    pub delegation_policy: Option<DelegationPolicy>,
    /// Offer a SessionTicket extension (empty or cached) to signal
    /// RFC 5077 support.
    pub enable_tickets: bool,
    /// Allow sending application data immediately after the client
    /// Finished (TLS False Start, RFC 7918) without waiting for the
    /// server's.
    pub enable_false_start: bool,
    /// Skip certificate verification entirely (used to model the
    /// broken "trust the proxy blindly" deployments §2.2 criticizes,
    /// and for tests).
    pub danger_disable_cert_verify: bool,
    /// Collect certificate-chain and ServerKeyExchange signature
    /// checks as a deferred [`mbtls_pki::SignatureCheck`] batch
    /// instead of verifying inline. The driver must drain
    /// `ClientConnection::take_pending_verify` and deliver the verdict
    /// via `resolve_verify`; the connection does not report
    /// established until it does. Lets a multi-session host batch
    /// Ed25519 verification across concurrent handshakes.
    pub defer_verify: bool,
    /// Cached resumption state per server name.
    pub resumption_cache: HashMap<String, ResumptionData>,
}

impl ClientConfig {
    /// A sane default config over the given trust store.
    pub fn new(trust_store: Arc<TrustStore>) -> Self {
        ClientConfig {
            trust_store,
            suites: CipherSuite::ALL.to_vec(),
            current_time: 0,
            extra_extensions: Vec::new(),
            attestation_policy: None,
            delegation_policy: None,
            enable_tickets: true,
            enable_false_start: false,
            danger_disable_cert_verify: false,
            defer_verify: false,
            resumption_cache: HashMap::new(),
        }
    }
}

/// Shared session-ID resumption cache: id → (suite, master secret).
pub type SessionIdCache = Arc<Mutex<HashMap<Vec<u8>, (CipherSuite, Vec<u8>)>>>;

/// Server-side configuration. Cheap to clone via `Arc`.
pub struct ServerConfig {
    /// The server's key and certificate chain.
    pub certified_key: Arc<CertifiedKey>,
    /// Acceptable suites, preference order.
    pub suites: Vec<CipherSuite>,
    /// Key under which session tickets are sealed.
    pub ticket_key: [u8; 32],
    /// Issue RFC 5077 tickets to clients that offer the extension.
    pub issue_tickets: bool,
    /// Attestation provider: if present and the client requests (or
    /// `always_attest`), include an SGXAttestation message.
    pub attestor: Option<Arc<dyn Attestor>>,
    /// Attest even if the client did not explicitly ask (middleboxes
    /// in the paper always attest to their endpoint).
    pub always_attest: bool,
    /// Credential provider: if present and the client requests (or
    /// `always_delegate`), include a DelegatedCredential message.
    pub credential_provider: Option<Arc<dyn CredentialProvider>>,
    /// Present a credential even if the client did not explicitly ask
    /// (delegated middleboxes always do).
    pub always_delegate: bool,
    /// Session-ID resumption cache (id → (suite, master secret)),
    /// shared across all connections of this server.
    pub session_cache: SessionIdCache,
    /// Assign session IDs in full handshakes (enables RFC 5246
    /// session-ID resumption alongside RFC 5077 tickets).
    pub assign_session_ids: bool,
    /// If true, the server aborts the handshake when it sees a
    /// MiddleboxAnnouncement record it does not understand (models
    /// strict legacy stacks; tolerant ones ignore it — paper §3.4
    /// discusses both behaviours).
    pub strict_unknown_records: bool,
}

impl ServerConfig {
    /// A sane default config for the given identity.
    pub fn new(certified_key: Arc<CertifiedKey>, ticket_key: [u8; 32]) -> Self {
        ServerConfig {
            certified_key,
            suites: CipherSuite::ALL.to_vec(),
            ticket_key,
            issue_tickets: true,
            attestor: None,
            always_attest: false,
            credential_provider: None,
            always_delegate: false,
            session_cache: Arc::new(Mutex::new(HashMap::new())),
            assign_session_ids: false,
            strict_unknown_records: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbtls_crypto::rng::CryptoRng;
    use mbtls_pki::cert::CertificateAuthority;
    use mbtls_pki::KeyUsage;

    #[test]
    fn default_configs_are_reasonable() {
        let mut rng = CryptoRng::from_seed(1);
        let mut ca = CertificateAuthority::new_root("R", 0, 100, &mut rng);
        let ck = CertifiedKey::issue(&mut ca, "s", &[], 0, 100, KeyUsage::Endpoint, &mut rng);

        let cc = ClientConfig::new(Arc::new(TrustStore::new()));
        assert_eq!(cc.suites, CipherSuite::ALL.to_vec());
        assert!(cc.enable_tickets);
        assert!(!cc.danger_disable_cert_verify);
        assert!(cc.extra_extensions.is_empty());

        let sc = ServerConfig::new(Arc::new(ck), [0u8; 32]);
        assert!(sc.issue_tickets);
        assert!(!sc.always_attest);
        assert!(!sc.strict_unknown_records);
    }
}

//! # mbtls-tls
//!
//! A from-scratch, sans-IO TLS 1.2 implementation — the substrate the
//! mbTLS protocol (crate `mbtls-core`) extends, standing in for the
//! paper's OpenSSL base.
//!
//! The design is deliberately sans-IO (per this session's Rust
//! networking guides): a [`client::ClientConnection`] or
//! [`server::ServerConnection`] consumes bytes via `feed_incoming`,
//! produces bytes via `take_outgoing`, and never touches a socket.
//! That makes the state machines directly drivable by in-memory pipes,
//! the deterministic network simulator, and the mbTLS middlebox code
//! that interleaves extra records into the stream.
//!
//! ## Scope
//!
//! * TLS 1.2 only (the paper's prototype targets 1.2; §3.5 sketches a
//!   1.3 adaptation, discussed in this repo's README).
//! * AEAD cipher suites only: ECDHE (X25519) or DHE (ffdhe2048) key
//!   exchange, Ed25519 certificate signatures (see DESIGN.md
//!   substitutions), AES-128/256-GCM record protection, SHA-256/384
//!   PRF.
//! * Session resumption by ID and by ticket (RFC 5077 shape).
//! * Extension points used by mbTLS: arbitrary extra ClientHello
//!   extensions, visibility of peer extensions, non-standard record
//!   types surfaced to the caller instead of being fatal, raw-record
//!   injection, key-block export/import, and an optional SGX
//!   attestation handshake message bound to the transcript hash.
//!
//! Hooks exist because mbTLS *is* a set of hooks into TLS: the paper's
//! Figure 3 handshake is standard TLS handshakes interleaved with a
//! few new messages.

#![warn(missing_docs)]

pub mod alert;
pub mod client;
pub mod codec;
pub mod config;
pub mod keyschedule;
pub mod messages;
pub mod record;
pub mod server;
pub mod session;
pub mod suites;
pub mod transcript;

pub use alert::{AlertDescription, AlertLevel};
pub use client::ClientConnection;
pub use config::{AttestationPolicy, Attestor, ClientConfig, ServerConfig};
pub use record::ContentType;
pub use server::ServerConnection;
pub use session::{ConnectionSecrets, SessionKeys};
pub use suites::CipherSuite;

/// Everything that can go wrong in a TLS connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// Wire-format decoding failed.
    Decode(&'static str),
    /// A cryptographic operation failed (bad MAC, bad signature...).
    Crypto(mbtls_crypto::CryptoError),
    /// Certificate validation failed.
    Certificate(mbtls_pki::CertError),
    /// Attestation was required and failed.
    Attestation(mbtls_sgx::AttestationError),
    /// A delegated credential was required and missing, or rejected.
    Credential(mbtls_pki::CredentialError),
    /// The peer sent a fatal alert.
    PeerAlert(AlertDescription),
    /// A message arrived that is not legal in the current state.
    UnexpectedMessage(&'static str),
    /// No mutually acceptable cipher suite / parameters.
    NegotiationFailed(&'static str),
    /// The connection was already closed or failed.
    Closed,
    /// Data operations attempted before the handshake completed.
    HandshakeNotDone,
    /// An internal state-machine invariant was broken. Reaching this
    /// is a bug, but it surfaces as an error rather than a panic so a
    /// malformed connection can never take the process down.
    Internal(&'static str),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Decode(what) => write!(f, "decode error: {what}"),
            TlsError::Crypto(e) => write!(f, "crypto error: {e}"),
            TlsError::Certificate(e) => write!(f, "certificate error: {e}"),
            TlsError::Attestation(e) => write!(f, "attestation error: {e}"),
            TlsError::Credential(e) => write!(f, "credential error: {e}"),
            TlsError::PeerAlert(d) => write!(f, "peer sent fatal alert: {d}"),
            TlsError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
            TlsError::NegotiationFailed(what) => write!(f, "negotiation failed: {what}"),
            TlsError::Closed => write!(f, "connection closed"),
            TlsError::HandshakeNotDone => write!(f, "handshake not complete"),
            TlsError::Internal(what) => write!(f, "internal invariant broken: {what}"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<mbtls_crypto::CryptoError> for TlsError {
    fn from(e: mbtls_crypto::CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}

impl From<mbtls_pki::CertError> for TlsError {
    fn from(e: mbtls_pki::CertError) -> Self {
        TlsError::Certificate(e)
    }
}

impl From<mbtls_sgx::AttestationError> for TlsError {
    fn from(e: mbtls_sgx::AttestationError) -> Self {
        TlsError::Attestation(e)
    }
}

impl From<crate::codec::CodecError> for TlsError {
    fn from(_: crate::codec::CodecError) -> Self {
        TlsError::Decode("truncated or malformed structure")
    }
}

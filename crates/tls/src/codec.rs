//! TLS wire codec: big-endian integers (including the 24-bit lengths
//! TLS handshake messages use) and length-prefixed vectors with u8,
//! u16, or u24 prefixes, following RFC 5246 presentation-language
//! conventions. Strict: truncation and trailing bytes are errors.

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ran out mid-field.
    Truncated,
    /// Trailing bytes after a complete structure.
    TrailingBytes,
    /// A value violated a structural constraint.
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CodecError::Truncated => "truncated",
            CodecError::TrailingBytes => "trailing bytes",
            CodecError::Malformed => "malformed",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for CodecError {}

/// Encoder.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (used for patching lengths).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Big-endian 24-bit integer. Panics if it does not fit (encoding
    /// bug, not input-dependent).
    pub fn u24(&mut self, v: usize) {
        assert!(v < (1 << 24), "u24 overflow");
        self.buf.push((v >> 16) as u8);
        self.buf.push((v >> 8) as u8);
        self.buf.push(v as u8);
    }

    /// Big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Raw bytes.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// u8-length-prefixed vector.
    pub fn vec8(&mut self, v: &[u8]) {
        assert!(v.len() <= u8::MAX as usize);
        self.u8(v.len() as u8);
        self.raw(v);
    }

    /// u16-length-prefixed vector.
    pub fn vec16(&mut self, v: &[u8]) {
        assert!(v.len() <= u16::MAX as usize);
        self.u16(v.len() as u16);
        self.raw(v);
    }

    /// u24-length-prefixed vector.
    pub fn vec24(&mut self, v: &[u8]) {
        self.u24(v.len());
        self.raw(v);
    }
}

/// Decoder over a borrowed slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Unconsumed byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Take exactly `N` bytes as a fixed array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let b = self.take(N)?;
        b.try_into().map_err(|_| CodecError::Truncated)
    }

    /// Remaining bytes, consuming them.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        out
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Big-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take_array()?))
    }

    /// Big-endian 24-bit integer.
    pub fn u24(&mut self) -> Result<usize, CodecError> {
        let b = self.take_array::<3>()?;
        Ok(usize::from(b[0]) << 16 | usize::from(b[1]) << 8 | usize::from(b[2]))
    }

    /// Big-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Big-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// u8-length-prefixed vector.
    pub fn vec8(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u8()? as usize;
        self.take(n)
    }

    /// u16-length-prefixed vector.
    pub fn vec16(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u16()? as usize;
        self.take(n)
    }

    /// u24-length-prefixed vector.
    pub fn vec24(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u24()?;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u16(0x0203);
        e.u24(0x040506);
        e.u32(0x0708090a);
        e.u64(0x0b0c0d0e0f101112);
        e.vec8(b"a");
        e.vec16(b"bc");
        e.vec24(b"def");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u16().unwrap(), 0x0203);
        assert_eq!(d.u24().unwrap(), 0x040506);
        assert_eq!(d.u32().unwrap(), 0x0708090a);
        assert_eq!(d.u64().unwrap(), 0x0b0c0d0e0f101112);
        assert_eq!(d.vec8().unwrap(), b"a");
        assert_eq!(d.vec16().unwrap(), b"bc");
        assert_eq!(d.vec24().unwrap(), b"def");
        d.expect_end().unwrap();
    }

    #[test]
    fn u24_bounds() {
        let mut e = Encoder::new();
        e.u24((1 << 24) - 1);
        let bytes = e.into_bytes();
        assert_eq!(bytes, vec![0xff, 0xff, 0xff]);
        assert_eq!(Decoder::new(&bytes).u24().unwrap(), (1 << 24) - 1);
    }

    #[test]
    fn truncation_and_trailing() {
        let mut d = Decoder::new(&[0, 2, 0xaa]);
        assert_eq!(d.vec16(), Err(CodecError::Truncated));
        let mut d = Decoder::new(&[1, 2]);
        d.u8().unwrap();
        assert_eq!(d.expect_end(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn rest_consumes_everything() {
        let mut d = Decoder::new(&[1, 2, 3]);
        d.u8().unwrap();
        assert_eq!(d.rest(), &[2, 3]);
        assert_eq!(d.remaining(), 0);
        d.expect_end().unwrap();
    }
}

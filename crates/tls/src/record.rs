//! The TLS record layer: framing, fragmentation, and AEAD protection.
//!
//! Content types include the three mbTLS additions (paper Appendix
//! A.1) so middlebox code can frame and recognize them; the base TLS
//! state machines treat them as "non-standard" records and surface
//! them to the caller instead of aborting — the hook mbTLS's
//! subchannel multiplexing is built on.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::TlsError;
use mbtls_crypto::aead::{AeadKey, BulkAlgorithm, EXPLICIT_NONCE_LEN, TAG_LEN};

/// Maximum plaintext fragment length (RFC 5246 §6.2.1).
pub const MAX_FRAGMENT_LEN: usize = 1 << 14;
/// Maximum ciphertext length we accept (plaintext + AEAD expansion).
pub const MAX_WIRE_LEN: usize = MAX_FRAGMENT_LEN + 2048;
/// TLS 1.2 wire version.
pub const VERSION_TLS12: (u8, u8) = (3, 3);

/// Record content types, including the mbTLS additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// change_cipher_spec(20)
    ChangeCipherSpec,
    /// alert(21)
    Alert,
    /// handshake(22)
    Handshake,
    /// application_data(23)
    ApplicationData,
    /// mbtls_encapsulated(30) — wraps secondary-session records.
    MbtlsEncapsulated,
    /// mbtls_key_material(31) — per-hop key delivery.
    MbtlsKeyMaterial,
    /// mbtls_middlebox_announcement(32) — server-side discovery.
    MbtlsMiddleboxAnnouncement,
}

impl ContentType {
    /// Wire byte.
    pub fn to_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::MbtlsEncapsulated => 30,
            ContentType::MbtlsKeyMaterial => 31,
            ContentType::MbtlsMiddleboxAnnouncement => 32,
        }
    }

    /// Parse a wire byte.
    pub fn from_u8(v: u8) -> Option<ContentType> {
        match v {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            30 => Some(ContentType::MbtlsEncapsulated),
            31 => Some(ContentType::MbtlsKeyMaterial),
            32 => Some(ContentType::MbtlsMiddleboxAnnouncement),
            _ => None,
        }
    }

    /// Is this one of the mbTLS extension types?
    pub fn is_mbtls(self) -> bool {
        matches!(
            self,
            ContentType::MbtlsEncapsulated
                | ContentType::MbtlsKeyMaterial
                | ContentType::MbtlsMiddleboxAnnouncement
        )
    }
}

/// A plaintext (decrypted or never-encrypted) record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainRecord {
    /// Content type.
    pub content_type: ContentType,
    /// Payload.
    pub payload: Vec<u8>,
}

/// Frame a plaintext record (no protection).
pub fn frame_plaintext(content_type: ContentType, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAGMENT_LEN);
    let mut e = Encoder::new();
    e.u8(content_type.to_u8());
    e.u8(VERSION_TLS12.0);
    e.u8(VERSION_TLS12.1);
    e.u16(payload.len() as u16);
    e.raw(payload);
    e.into_bytes()
}

/// One direction of record protection state.
pub struct DirectionState {
    key: AeadKey,
    seq: u64,
}

impl DirectionState {
    /// Build from raw key material.
    pub fn new(
        algorithm: BulkAlgorithm,
        key: &[u8],
        fixed_iv: &[u8],
        initial_seq: u64,
    ) -> Result<Self, TlsError> {
        Ok(DirectionState {
            key: AeadKey::new(algorithm, key, fixed_iv)?,
            seq: initial_seq,
        })
    }

    /// Current sequence number (mbTLS key-material messages carry it).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn aad(seq: u64, content_type: ContentType, plain_len: usize) -> [u8; 13] {
        let mut aad = [0u8; 13];
        aad[..8].copy_from_slice(&seq.to_be_bytes());
        aad[8] = content_type.to_u8();
        aad[9] = VERSION_TLS12.0;
        aad[10] = VERSION_TLS12.1;
        aad[11..13].copy_from_slice(&(plain_len as u16).to_be_bytes());
        aad
    }

    /// Protect a fragment; returns the full wire record
    /// (header || explicit_nonce || ciphertext || tag), RFC 5288.
    pub fn seal_record(
        &mut self,
        content_type: ContentType,
        payload: &[u8],
    ) -> Result<Vec<u8>, TlsError> {
        let mut out =
            Vec::with_capacity(5 + EXPLICIT_NONCE_LEN + payload.len() + TAG_LEN);
        self.seal_record_into(content_type, payload, &mut out)?;
        Ok(out)
    }

    /// Protect a fragment, appending the full wire record to `out`.
    ///
    /// This is the zero-copy data-plane path: the payload is written
    /// into `out` once and encrypted there in place, so a caller that
    /// reuses `out` across records does no per-record allocation once
    /// the buffer has grown to its steady-state capacity.
    pub fn seal_record_into(
        &mut self,
        content_type: ContentType,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), TlsError> {
        debug_assert!(payload.len() <= MAX_FRAGMENT_LEN);
        let explicit: [u8; EXPLICIT_NONCE_LEN] = self.seq.to_be_bytes();
        let aad = Self::aad(self.seq, content_type, payload.len());
        let wire_len = EXPLICIT_NONCE_LEN + payload.len() + TAG_LEN;
        out.reserve(5 + wire_len);
        out.extend_from_slice(&[
            content_type.to_u8(),
            VERSION_TLS12.0,
            VERSION_TLS12.1,
            (wire_len >> 8) as u8,
            wire_len as u8,
        ]);
        out.extend_from_slice(&explicit);
        let ct_start = out.len();
        out.extend_from_slice(payload);
        let tag = self.key.seal_in_place(&explicit, &aad, &mut out[ct_start..])?;
        out.extend_from_slice(&tag);
        self.seq = self.seq.wrapping_add(1);
        Ok(())
    }

    /// Unprotect a record body (everything after the 5-byte header).
    pub fn open_record(
        &mut self,
        content_type: ContentType,
        body: &[u8],
    ) -> Result<Vec<u8>, TlsError> {
        let mut buf = body.to_vec();
        let plain_len = self.open_record_in_place(content_type, &mut buf)?.len();
        buf.copy_within(EXPLICIT_NONCE_LEN..EXPLICIT_NONCE_LEN + plain_len, 0);
        buf.truncate(plain_len);
        Ok(buf)
    }

    /// Authenticate a record body without decrypting it, returning
    /// the plaintext length. `body` holds `explicit_nonce ||
    /// ciphertext || tag` and is left untouched — the record can be
    /// forwarded on the wire exactly as it arrived. Advances the
    /// sequence number like [`DirectionState::open_record_in_place`],
    /// so the two are interchangeable per record.
    ///
    /// This is the read-only middlebox fast path: a hop whose inbound
    /// and outbound keys are identical verifies the tag (GHASH plus
    /// one AES block) and skips both the CTR decryption and the
    /// re-encryption.
    pub fn verify_record(
        &mut self,
        content_type: ContentType,
        body: &[u8],
    ) -> Result<usize, TlsError> {
        if body.len() < EXPLICIT_NONCE_LEN + TAG_LEN {
            return Err(TlsError::Decode("record too short for AEAD"));
        }
        let (explicit_part, sealed) = body.split_at(EXPLICIT_NONCE_LEN);
        let explicit: [u8; EXPLICIT_NONCE_LEN] = explicit_part
            .first_chunk::<EXPLICIT_NONCE_LEN>()
            .copied()
            .ok_or(TlsError::Decode("record too short for AEAD"))?;
        let plain_len = sealed.len() - TAG_LEN;
        let (ciphertext, tag) = sealed.split_at(plain_len);
        let aad = Self::aad(self.seq, content_type, plain_len);
        self.key.verify(&explicit, &aad, ciphertext, tag)?;
        self.seq = self.seq.wrapping_add(1);
        Ok(plain_len)
    }

    /// Advance the sequence number without protecting a record. A
    /// read-only forwarder that emits a verified record unchanged must
    /// keep its (aliased-key) write state in lockstep with the read
    /// state, so a later fallback to open-and-reseal still seals under
    /// the sequence number the next hop expects.
    pub fn advance_seq(&mut self) {
        self.seq = self.seq.wrapping_add(1);
    }

    /// Unprotect a record body in place and return the plaintext as a
    /// subslice of `body` (which holds `explicit_nonce || ciphertext
    /// || tag` on entry). No allocation; on authentication failure the
    /// buffer keeps the untouched ciphertext and must not be used.
    pub fn open_record_in_place<'a>(
        &mut self,
        content_type: ContentType,
        body: &'a mut [u8],
    ) -> Result<&'a mut [u8], TlsError> {
        if body.len() < EXPLICIT_NONCE_LEN + TAG_LEN {
            return Err(TlsError::Decode("record too short for AEAD"));
        }
        let (explicit_part, sealed) = body.split_at_mut(EXPLICIT_NONCE_LEN);
        let explicit: [u8; EXPLICIT_NONCE_LEN] = explicit_part
            .first_chunk::<EXPLICIT_NONCE_LEN>()
            .copied()
            .ok_or(TlsError::Decode("record too short for AEAD"))?;
        let plain_len = sealed.len() - TAG_LEN;
        let (ciphertext, tag) = sealed.split_at_mut(plain_len);
        let aad = Self::aad(self.seq, content_type, plain_len);
        self.key.open_in_place(&explicit, &aad, ciphertext, tag)?;
        self.seq = self.seq.wrapping_add(1);
        Ok(ciphertext)
    }
}

/// A reassembling record reader: feed raw stream bytes, pull whole
/// records. Handles the plaintext/ciphertext distinction via the
/// optional read state.
///
/// Consumed records advance a read cursor instead of draining the
/// buffer, so pulling N coalesced records out of one feed is O(total
/// bytes), not O(N · total bytes). The consumed prefix is reclaimed
/// lazily on the next [`RecordReader::feed`] once it outgrows the
/// unread remainder (amortized O(1) per byte).
#[derive(Default)]
pub struct RecordReader {
    buf: Vec<u8>,
    /// Start of unread data in `buf`.
    pos: usize,
}

/// One record framed in place by [`RecordReader::next_record_inplace`]:
/// the content-type byte, the header's version bytes, and the record
/// body as a mutable view into the reassembly buffer.
pub type InplaceRecord<'a> = (u8, [u8; 2], &'a mut [u8]);

/// A raw record as pulled off the stream (body still protected if the
/// sender had activated its cipher).
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Content type byte (may be an unknown value — the caller
    /// decides whether that is fatal).
    pub content_type_byte: u8,
    /// Record body (excluding the 5-byte header).
    pub body: Vec<u8>,
}

impl RecordReader {
    /// Fresh reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append stream bytes, lazily compacting the consumed prefix.
    pub fn feed(&mut self, data: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > self.buf.len() - self.pos {
            // The dead prefix outgrew the live remainder: one memmove
            // now is amortized O(1) per fed byte.
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parse the header at the cursor; `Ok(Some(len))` means a full
    /// record of body length `len` is buffered.
    fn peek_complete(&self) -> Result<Option<usize>, TlsError> {
        let Some(&[_, ver_major, _ver_minor, len_hi, len_lo]) =
            self.buf.get(self.pos..).and_then(|b| b.first_chunk::<5>())
        else {
            return Ok(None);
        };
        // Accept 3.x for the ClientHello's legacy version field.
        if ver_major != 3 {
            return Err(TlsError::Decode("bad record version"));
        }
        let len = usize::from(u16::from_be_bytes([len_hi, len_lo]));
        if len > MAX_WIRE_LEN {
            return Err(TlsError::Decode("record too long"));
        }
        if self.buf.len() - self.pos < 5 + len {
            return Ok(None);
        }
        Ok(Some(len))
    }

    /// Pull the next complete record, if any.
    pub fn next_record(&mut self) -> Result<Option<RawRecord>, TlsError> {
        let Some(len) = self.peek_complete()? else {
            return Ok(None);
        };
        let record = self
            .buf
            .get(self.pos..self.pos + 5 + len)
            .ok_or(TlsError::Decode("record cursor out of range"))?;
        let (&content_type_byte, header_rest) = record
            .split_first()
            .ok_or(TlsError::Decode("record cursor out of range"))?;
        let body = header_rest
            .get(4..)
            .ok_or(TlsError::Decode("record cursor out of range"))?
            .to_vec();
        self.pos += 5 + len;
        Ok(Some(RawRecord {
            content_type_byte,
            body,
        }))
    }

    /// Pull the next complete record without copying: returns the
    /// content-type byte, the header's version bytes, and the record
    /// body as a mutable view into the reassembly buffer (valid until
    /// the next call on this reader). The body is handed out mutable
    /// so [`DirectionState::open_record_in_place`] can decrypt it
    /// where it already is — the zero-copy receive path. The version
    /// bytes are surfaced so a forwarder can echo the header exactly
    /// as it arrived (the reader accepts any 3.x version).
    pub fn next_record_inplace(&mut self) -> Result<Option<InplaceRecord<'_>>, TlsError> {
        let Some(len) = self.peek_complete()? else {
            return Ok(None);
        };
        let start = self.pos;
        self.pos += 5 + len;
        let record = self
            .buf
            .get_mut(start..start + 5 + len)
            .ok_or(TlsError::Decode("record cursor out of range"))?;
        let (header, body) = record.split_at_mut(5);
        let content_type_byte = *header
            .first()
            .ok_or(TlsError::Decode("record cursor out of range"))?;
        let version = header
            .get(1..3)
            .and_then(|v| v.first_chunk::<2>())
            .copied()
            .ok_or(TlsError::Decode("record cursor out of range"))?;
        Ok(Some((content_type_byte, version, body)))
    }
}

/// Split a payload into MAX_FRAGMENT_LEN-sized fragments.
pub fn fragment(payload: &[u8]) -> impl Iterator<Item = &[u8]> {
    payload.chunks(MAX_FRAGMENT_LEN)
}

/// Decode a record header from the front of `data` without consuming:
/// returns (content type byte, body length) if a full header is
/// present.
pub fn peek_header(data: &[u8]) -> Result<Option<(u8, usize)>, CodecError> {
    let Some(header) = data.first_chunk::<5>() else {
        return Ok(None);
    };
    let mut d = Decoder::new(header);
    let ct = d.u8()?;
    let major = d.u8()?;
    let _minor = d.u8()?;
    if major != 3 {
        return Err(CodecError::Malformed);
    }
    let len = d.u16()? as usize;
    Ok(Some((ct, len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (DirectionState, DirectionState) {
        let key = [0x11u8; 32];
        let iv = [0x22u8; 4];
        let tx = DirectionState::new(BulkAlgorithm::Aes256Gcm, &key, &iv, 0).unwrap();
        let rx = DirectionState::new(BulkAlgorithm::Aes256Gcm, &key, &iv, 0).unwrap();
        (tx, rx)
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        let wire = tx.seal_record(ContentType::ApplicationData, b"hello world").unwrap();
        let mut reader = RecordReader::new();
        reader.feed(&wire);
        let rec = reader.next_record().unwrap().unwrap();
        assert_eq!(rec.content_type_byte, 23);
        let plain = rx.open_record(ContentType::ApplicationData, &rec.body).unwrap();
        assert_eq!(plain, b"hello world");
    }

    #[test]
    fn sequence_numbers_advance() {
        let (mut tx, mut rx) = pair();
        for i in 0..5u8 {
            let wire = tx.seal_record(ContentType::ApplicationData, &[i]).unwrap();
            let mut r = RecordReader::new();
            r.feed(&wire);
            let rec = r.next_record().unwrap().unwrap();
            assert_eq!(rx.open_record(ContentType::ApplicationData, &rec.body).unwrap(), vec![i]);
        }
        assert_eq!(tx.seq(), 5);
        assert_eq!(rx.seq(), 5);
    }

    #[test]
    fn replay_detected() {
        let (mut tx, mut rx) = pair();
        let wire = tx.seal_record(ContentType::ApplicationData, b"once").unwrap();
        let mut r = RecordReader::new();
        r.feed(&wire);
        r.feed(&wire); // replayed copy
        let rec1 = r.next_record().unwrap().unwrap();
        assert!(rx.open_record(ContentType::ApplicationData, &rec1.body).is_ok());
        let rec2 = r.next_record().unwrap().unwrap();
        // Receiver seq advanced; the replay fails authentication.
        assert!(rx.open_record(ContentType::ApplicationData, &rec2.body).is_err());
    }

    #[test]
    fn reorder_detected() {
        let (mut tx, mut rx) = pair();
        let w1 = tx.seal_record(ContentType::ApplicationData, b"first").unwrap();
        let w2 = tx.seal_record(ContentType::ApplicationData, b"second").unwrap();
        let mut r = RecordReader::new();
        r.feed(&w2);
        r.feed(&w1);
        let rec = r.next_record().unwrap().unwrap();
        assert!(rx.open_record(ContentType::ApplicationData, &rec.body).is_err());
    }

    #[test]
    fn content_type_is_authenticated() {
        let (mut tx, mut rx) = pair();
        let wire = tx.seal_record(ContentType::ApplicationData, b"data").unwrap();
        let mut r = RecordReader::new();
        r.feed(&wire);
        let rec = r.next_record().unwrap().unwrap();
        // Claim it was a handshake record: AAD mismatch.
        assert!(rx.open_record(ContentType::Handshake, &rec.body).is_err());
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let (mut tx, mut rx) = pair();
        let mut wire = tx.seal_record(ContentType::ApplicationData, b"data").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 1;
        let mut r = RecordReader::new();
        r.feed(&wire);
        let rec = r.next_record().unwrap().unwrap();
        assert!(rx.open_record(ContentType::ApplicationData, &rec.body).is_err());
    }

    #[test]
    fn reader_handles_partial_and_multiple_records() {
        let r1 = frame_plaintext(ContentType::Handshake, b"aaa");
        let r2 = frame_plaintext(ContentType::Alert, b"bb");
        let mut all = r1.clone();
        all.extend_from_slice(&r2);
        let mut reader = RecordReader::new();
        reader.feed(&all[..4]);
        assert!(reader.next_record().unwrap().is_none());
        reader.feed(&all[4..]);
        let rec1 = reader.next_record().unwrap().unwrap();
        assert_eq!(rec1.content_type_byte, 22);
        assert_eq!(rec1.body, b"aaa");
        let rec2 = reader.next_record().unwrap().unwrap();
        assert_eq!(rec2.content_type_byte, 21);
        assert_eq!(rec2.body, b"bb");
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn in_place_seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        let mut wire = Vec::new();
        let mut reader = RecordReader::new();
        // Reuse the same output buffer across records, interleaving
        // both in-place paths with the allocating ones.
        for i in 0..4u8 {
            wire.clear();
            tx.seal_record_into(ContentType::ApplicationData, &[i; 100], &mut wire)
                .unwrap();
            reader.feed(&wire);
            let (ct_byte, version, body) = reader.next_record_inplace().unwrap().unwrap();
            assert_eq!(ct_byte, 23);
            assert_eq!(version, [VERSION_TLS12.0, VERSION_TLS12.1]);
            let plain = rx
                .open_record_in_place(ContentType::ApplicationData, body)
                .unwrap();
            assert_eq!(plain, &[i; 100]);
        }
        // The in-place paths must be wire- and state-compatible with
        // the allocating ones.
        let via_vec = tx.seal_record(ContentType::ApplicationData, b"tail").unwrap();
        let mut r2 = RecordReader::new();
        r2.feed(&via_vec);
        let rec = r2.next_record().unwrap().unwrap();
        assert_eq!(
            rx.open_record(ContentType::ApplicationData, &rec.body).unwrap(),
            b"tail"
        );
    }

    #[test]
    fn verify_record_interchangeable_with_open() {
        let (mut tx, mut rx) = pair();
        // Verifier and opener must agree record-by-record: verify one,
        // open the next, with one shared sequence counter.
        let w1 = tx.seal_record(ContentType::ApplicationData, b"first").unwrap();
        let w2 = tx.seal_record(ContentType::ApplicationData, b"second!").unwrap();
        let body1 = &w1[5..];
        let before = body1.to_vec();
        assert_eq!(
            rx.verify_record(ContentType::ApplicationData, body1).unwrap(),
            5
        );
        assert_eq!(body1, before, "verify must leave the record untouched");
        let mut body2 = w2[5..].to_vec();
        assert_eq!(
            rx.open_record_in_place(ContentType::ApplicationData, &mut body2)
                .unwrap(),
            b"second!"
        );
        assert_eq!(rx.seq(), 2);
    }

    #[test]
    fn verify_record_rejects_tamper_replay_and_type_confusion() {
        let (mut tx, mut rx) = pair();
        let wire = tx.seal_record(ContentType::ApplicationData, b"payload").unwrap();
        let body = &wire[5..];
        // Wrong claimed content type: AAD mismatch.
        assert!(rx.verify_record(ContentType::Handshake, body).is_err());
        // Tampered ciphertext.
        let mut bad = body.to_vec();
        bad[EXPLICIT_NONCE_LEN] ^= 1;
        assert!(rx.verify_record(ContentType::ApplicationData, &bad).is_err());
        // Failed attempts must not advance the sequence number.
        assert_eq!(rx.seq(), 0);
        assert!(rx.verify_record(ContentType::ApplicationData, body).is_ok());
        // Replay: seq advanced, the same record no longer verifies.
        assert!(rx.verify_record(ContentType::ApplicationData, body).is_err());
        // Short body.
        assert!(rx
            .verify_record(ContentType::ApplicationData, &[0u8; EXPLICIT_NONCE_LEN + TAG_LEN - 1])
            .is_err());
    }

    #[test]
    fn advance_seq_keeps_writer_in_lockstep() {
        // A writer that skips a record via advance_seq seals the next
        // record under the sequence number a steadily-advancing reader
        // expects — the reseal-fallback invariant of the read-only
        // forward path.
        let (mut tx, mut rx) = pair();
        let skipped = tx.seal_record(ContentType::ApplicationData, b"skipped").unwrap();
        let mut tx2 = DirectionState::new(BulkAlgorithm::Aes256Gcm, &[0x11u8; 32], &[0x22u8; 4], 0)
            .unwrap();
        tx2.advance_seq(); // forwarded the first record unchanged
        let resealed = tx2.seal_record(ContentType::ApplicationData, b"resealed").unwrap();
        assert_eq!(
            rx.open_record(ContentType::ApplicationData, &skipped[5..]).unwrap(),
            b"skipped"
        );
        assert_eq!(
            rx.open_record(ContentType::ApplicationData, &resealed[5..]).unwrap(),
            b"resealed"
        );
    }

    #[test]
    fn in_place_open_rejects_tamper_and_short_bodies() {
        let (mut tx, mut rx) = pair();
        let wire = tx.seal_record(ContentType::ApplicationData, b"payload").unwrap();
        let mut body = wire[5..].to_vec();
        let n = body.len();
        body[n - 1] ^= 1;
        assert!(rx
            .open_record_in_place(ContentType::ApplicationData, &mut body)
            .is_err());
        let mut short = vec![0u8; EXPLICIT_NONCE_LEN + TAG_LEN - 1];
        assert!(rx
            .open_record_in_place(ContentType::ApplicationData, &mut short)
            .is_err());
    }

    #[test]
    fn reader_cursor_compacts_lazily() {
        // Many coalesced records in one feed: all must come out, and
        // the consumed prefix must be reclaimed by later feeds.
        let mut stream = Vec::new();
        for i in 0..50u8 {
            stream.extend_from_slice(&frame_plaintext(ContentType::ApplicationData, &[i; 32]));
        }
        let mut reader = RecordReader::new();
        reader.feed(&stream);
        for i in 0..50u8 {
            let rec = reader.next_record().unwrap().unwrap();
            assert_eq!(rec.body, vec![i; 32]);
        }
        assert!(reader.next_record().unwrap().is_none());
        assert_eq!(reader.buffered(), 0);
        // After full consumption a feed resets the buffer in place.
        reader.feed(&frame_plaintext(ContentType::Alert, b"zz"));
        assert_eq!(reader.buffered(), 7);
        assert_eq!(reader.next_record().unwrap().unwrap().body, b"zz");

        // Partial-record boundary: consumed prefix + incomplete tail,
        // completed by a later feed (exercises the compaction memmove).
        let r1 = frame_plaintext(ContentType::Handshake, &[7; 200]);
        let r2 = frame_plaintext(ContentType::Handshake, &[8; 200]);
        let mut both = r1;
        both.extend_from_slice(&r2);
        reader.feed(&both[..both.len() - 10]);
        assert_eq!(reader.next_record().unwrap().unwrap().body, vec![7; 200]);
        assert!(reader.next_record().unwrap().is_none());
        reader.feed(&both[both.len() - 10..]);
        assert_eq!(reader.next_record().unwrap().unwrap().body, vec![8; 200]);
    }

    #[test]
    fn mbtls_content_types_roundtrip() {
        for ct in [
            ContentType::MbtlsEncapsulated,
            ContentType::MbtlsKeyMaterial,
            ContentType::MbtlsMiddleboxAnnouncement,
        ] {
            assert_eq!(ContentType::from_u8(ct.to_u8()), Some(ct));
            assert!(ct.is_mbtls());
        }
        assert!(!ContentType::Handshake.is_mbtls());
        assert_eq!(ContentType::from_u8(99), None);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut reader = RecordReader::new();
        let mut bad = vec![23u8, 3, 3];
        bad.extend_from_slice(&(u16::MAX).to_be_bytes());
        reader.feed(&bad);
        assert!(reader.next_record().is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut reader = RecordReader::new();
        reader.feed(&[23, 9, 0, 0, 0]);
        assert!(reader.next_record().is_err());
    }

    #[test]
    fn fragmentation_bounds() {
        let big = vec![0u8; MAX_FRAGMENT_LEN * 2 + 5];
        let frags: Vec<&[u8]> = fragment(&big).collect();
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].len(), MAX_FRAGMENT_LEN);
        assert_eq!(frags[2].len(), 5);
    }

    #[test]
    fn peek_header_works() {
        let rec = frame_plaintext(ContentType::Handshake, b"xyz");
        assert_eq!(peek_header(&rec).unwrap(), Some((22, 3)));
        assert_eq!(peek_header(&rec[..3]).unwrap(), None);
        assert!(peek_header(&[22, 8, 8, 0, 0]).is_err());
    }
}

//! Handshake message definitions and codecs (RFC 5246 §7.4, plus the
//! mbTLS `sgx_attestation(17)` message from the paper's Appendix A.2).

use crate::codec::{CodecError, Decoder, Encoder};
use crate::suites::CipherSuite;
use crate::TlsError;

/// Handshake message type bytes.
pub mod handshake_type {
    /// client_hello(1)
    pub const CLIENT_HELLO: u8 = 1;
    /// server_hello(2)
    pub const SERVER_HELLO: u8 = 2;
    /// new_session_ticket(4), RFC 5077
    pub const NEW_SESSION_TICKET: u8 = 4;
    /// certificate(11)
    pub const CERTIFICATE: u8 = 11;
    /// server_key_exchange(12)
    pub const SERVER_KEY_EXCHANGE: u8 = 12;
    /// server_hello_done(14)
    pub const SERVER_HELLO_DONE: u8 = 14;
    /// client_key_exchange(16)
    pub const CLIENT_KEY_EXCHANGE: u8 = 16;
    /// sgx_attestation(17) — mbTLS addition (paper Appendix A.2).
    pub const SGX_ATTESTATION: u8 = 17;
    /// delegated_credential(18) — mdTLS-style delegated middlebox
    /// authorization (DESIGN.md §6j).
    pub const DELEGATED_CREDENTIAL: u8 = 18;
    /// finished(20)
    pub const FINISHED: u8 = 20;
}

/// Extension type code points.
pub mod extension_type {
    /// RFC 5077 SessionTicket.
    pub const SESSION_TICKET: u16 = 35;
    /// The mbTLS MiddleboxSupport extension (private-range id).
    pub const MIDDLEBOX_SUPPORT: u16 = 0xFF77;
    /// Request/acknowledge an SGX attestation in the handshake
    /// (private-range id; independent of mbTLS per the paper).
    pub const ATTESTATION_REQUEST: u16 = 0xFF78;
    /// Request a delegated credential in the handshake (private-range
    /// id; the mdTLS-style alternative to attestation).
    pub const DELEGATION_REQUEST: u16 = 0xFF79;
}

/// A raw (type, payload) extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Extension type code point.
    pub typ: u16,
    /// Opaque payload.
    pub data: Vec<u8>,
}

fn encode_extensions(e: &mut Encoder, exts: &[Extension]) {
    if exts.is_empty() {
        return;
    }
    let mut inner = Encoder::new();
    for ext in exts {
        inner.u16(ext.typ);
        inner.vec16(&ext.data);
    }
    e.vec16(&inner.into_bytes());
}

fn decode_extensions(d: &mut Decoder<'_>) -> Result<Vec<Extension>, CodecError> {
    if d.remaining() == 0 {
        return Ok(Vec::new());
    }
    let block = d.vec16()?;
    let mut inner = Decoder::new(block);
    let mut out = Vec::new();
    while inner.remaining() > 0 {
        let typ = inner.u16()?;
        let data = inner.vec16()?.to_vec();
        out.push(Extension { typ, data });
    }
    Ok(out)
}

/// ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// 32 bytes of client randomness.
    pub random: [u8; 32],
    /// Session id offered for ID-based resumption (empty = none).
    pub session_id: Vec<u8>,
    /// Offered cipher suites, preference order.
    pub cipher_suites: Vec<u16>,
    /// Extensions, including any mbTLS additions.
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// Encode the handshake body (without the 4-byte header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(3);
        e.u8(3); // client_version = TLS 1.2
        e.raw(&self.random);
        e.vec8(&self.session_id);
        let mut suites = Encoder::new();
        for s in &self.cipher_suites {
            suites.u16(*s);
        }
        e.vec16(&suites.into_bytes());
        e.vec8(&[0]); // null compression only
        encode_extensions(&mut e, &self.extensions);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let major = d.u8()?;
        let _minor = d.u8()?;
        if major != 3 {
            return Err(TlsError::Decode("bad client version"));
        }
        let random: [u8; 32] = d.take_array()?;
        let session_id = d.vec8()?.to_vec();
        if session_id.len() > 32 {
            return Err(TlsError::Decode("session id too long"));
        }
        let suites_raw = d.vec16()?;
        if suites_raw.len() % 2 != 0 || suites_raw.is_empty() {
            return Err(TlsError::Decode("bad cipher suite list"));
        }
        let cipher_suites = suites_raw
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect();
        let compressions = d.vec8()?;
        if !compressions.contains(&0) {
            return Err(TlsError::Decode("null compression not offered"));
        }
        let extensions = decode_extensions(&mut d)?;
        d.expect_end()?;
        Ok(ClientHello {
            random,
            session_id,
            cipher_suites,
            extensions,
        })
    }

    /// Find an extension by type.
    pub fn find_extension(&self, typ: u16) -> Option<&Extension> {
        self.extensions.iter().find(|e| e.typ == typ)
    }
}

/// ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// 32 bytes of server randomness.
    pub random: [u8; 32],
    /// Session id assigned/echoed (ID resumption).
    pub session_id: Vec<u8>,
    /// The selected cipher suite.
    pub cipher_suite: u16,
    /// Extensions (must be a subset of what the client offered).
    pub extensions: Vec<Extension>,
}

impl ServerHello {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(3);
        e.u8(3);
        e.raw(&self.random);
        e.vec8(&self.session_id);
        e.u16(self.cipher_suite);
        e.u8(0); // null compression
        encode_extensions(&mut e, &self.extensions);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let major = d.u8()?;
        let minor = d.u8()?;
        if (major, minor) != (3, 3) {
            return Err(TlsError::Decode("server chose unsupported version"));
        }
        let random: [u8; 32] = d.take_array()?;
        let session_id = d.vec8()?.to_vec();
        let cipher_suite = d.u16()?;
        let compression = d.u8()?;
        if compression != 0 {
            return Err(TlsError::Decode("server chose compression"));
        }
        let extensions = decode_extensions(&mut d)?;
        d.expect_end()?;
        Ok(ServerHello {
            random,
            session_id,
            cipher_suite,
            extensions,
        })
    }

    /// Find an extension by type.
    pub fn find_extension(&self, typ: u16) -> Option<&Extension> {
        self.extensions.iter().find(|e| e.typ == typ)
    }
}

/// Key-exchange parameters carried in ServerKeyExchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerKeyExchangeParams {
    /// ECDHE over X25519: named curve 29 + public point.
    Ecdhe {
        /// 32-byte X25519 public value.
        public: Vec<u8>,
    },
    /// Classic DHE: explicit group + public value.
    Dhe {
        /// Prime modulus, big-endian.
        p: Vec<u8>,
        /// Generator, big-endian.
        g: Vec<u8>,
        /// Server public value, big-endian.
        ys: Vec<u8>,
    },
}

impl ServerKeyExchangeParams {
    /// Encode just the params portion (the part that gets signed,
    /// together with the randoms).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            ServerKeyExchangeParams::Ecdhe { public } => {
                e.u8(3); // curve_type = named_curve
                e.u16(29); // x25519
                e.vec8(public);
            }
            ServerKeyExchangeParams::Dhe { p, g, ys } => {
                e.u8(1); // our tag for explicit FFDHE params
                e.vec16(p);
                e.vec16(g);
                e.vec16(ys);
            }
        }
        e.into_bytes()
    }

    /// Decode the params portion, returning (params, bytes consumed).
    pub fn decode(data: &[u8]) -> Result<(Self, usize), TlsError> {
        let mut d = Decoder::new(data);
        let tag = d.u8()?;
        let params = match tag {
            3 => {
                let curve = d.u16()?;
                if curve != 29 {
                    return Err(TlsError::Decode("unsupported named curve"));
                }
                let public = d.vec8()?.to_vec();
                if public.len() != 32 {
                    return Err(TlsError::Decode("bad x25519 public length"));
                }
                ServerKeyExchangeParams::Ecdhe { public }
            }
            1 => {
                let p = d.vec16()?.to_vec();
                let g = d.vec16()?.to_vec();
                let ys = d.vec16()?.to_vec();
                ServerKeyExchangeParams::Dhe { p, g, ys }
            }
            _ => return Err(TlsError::Decode("unknown key exchange tag")),
        };
        let consumed = data.len() - d.remaining();
        Ok((params, consumed))
    }
}

/// ServerKeyExchange: params + Ed25519 signature over
/// client_random || server_random || params.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerKeyExchange {
    /// The ephemeral parameters.
    pub params: ServerKeyExchangeParams,
    /// Signature by the certified key.
    pub signature: Vec<u8>,
}

impl ServerKeyExchange {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.raw(&self.params.encode());
        e.u16(0x0807); // signature scheme: ed25519
        e.vec16(&self.signature);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let (params, consumed) = ServerKeyExchangeParams::decode(body)?;
        let tail = body
            .get(consumed..)
            .ok_or(TlsError::Decode("server key exchange truncated"))?;
        let mut d = Decoder::new(tail);
        let scheme = d.u16()?;
        if scheme != 0x0807 {
            return Err(TlsError::Decode("unsupported signature scheme"));
        }
        let signature = d.vec16()?.to_vec();
        d.expect_end()?;
        Ok(ServerKeyExchange { params, signature })
    }

    /// The bytes covered by the signature.
    pub fn signed_payload(
        client_random: &[u8; 32],
        server_random: &[u8; 32],
        params: &ServerKeyExchangeParams,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 64);
        out.extend_from_slice(client_random);
        out.extend_from_slice(server_random);
        out.extend_from_slice(&params.encode());
        out
    }
}

/// ClientKeyExchange: the client's ephemeral public value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientKeyExchange {
    /// X25519 public (32 bytes) or DHE Yc (group-sized).
    pub public: Vec<u8>,
}

impl ClientKeyExchange {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.vec16(&self.public);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let public = d.vec16()?.to_vec();
        d.expect_end()?;
        Ok(ClientKeyExchange { public })
    }
}

/// NewSessionTicket (RFC 5077 §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewSessionTicket {
    /// Lifetime hint, seconds.
    pub lifetime_hint: u32,
    /// Opaque ticket.
    pub ticket: Vec<u8>,
}

impl NewSessionTicket {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.lifetime_hint);
        e.vec16(&self.ticket);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let lifetime_hint = d.u32()?;
        let ticket = d.vec16()?.to_vec();
        d.expect_end()?;
        Ok(NewSessionTicket {
            lifetime_hint,
            ticket,
        })
    }
}

/// The mbTLS SGXAttestation handshake message: an opaque quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgxAttestationMsg {
    /// Serialized quote (`sgx_quote_t` analogue).
    pub quote: Vec<u8>,
}

impl SgxAttestationMsg {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.vec16(&self.quote);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let quote = d.vec16()?.to_vec();
        d.expect_end()?;
        Ok(SgxAttestationMsg { quote })
    }
}

/// The DelegatedCredential handshake message: the issuer's encoded
/// certificate chain plus the opaque credential bytes (both parsed by
/// `mbtls-pki`; this layer treats them as payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegatedCredentialMsg {
    /// The delegating endpoint's chain (`pki::cert::encode_chain`).
    pub issuer_chain: Vec<u8>,
    /// The encoded `pki::delegation::DelegatedCredential`.
    pub credential: Vec<u8>,
}

impl DelegatedCredentialMsg {
    /// Encode the handshake body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.vec16(&self.issuer_chain);
        e.vec16(&self.credential);
        e.into_bytes()
    }

    /// Decode a handshake body.
    pub fn decode_body(body: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(body);
        let issuer_chain = d.vec16()?.to_vec();
        let credential = d.vec16()?.to_vec();
        d.expect_end()?;
        Ok(DelegatedCredentialMsg { issuer_chain, credential })
    }
}

/// Wrap a handshake body with its 4-byte header.
pub fn frame_handshake(typ: u8, body: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(typ);
    e.u24(body.len());
    e.raw(body);
    e.into_bytes()
}

/// An iterator-style splitter for concatenated handshake messages
/// inside record payloads, with cross-record reassembly.
#[derive(Default)]
pub struct HandshakeReader {
    buf: Vec<u8>,
}

impl HandshakeReader {
    /// Fresh reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a handshake-record payload.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pull the next complete message: (type, body, full frame bytes).
    /// The frame bytes are what transcript hashing consumes.
    #[allow(clippy::type_complexity)]
    pub fn next_message(&mut self) -> Result<Option<(u8, Vec<u8>, Vec<u8>)>, TlsError> {
        let Some(&[typ, len_hi, len_mid, len_lo]) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = usize::from(len_hi) << 16 | usize::from(len_mid) << 8 | usize::from(len_lo);
        if len > (1 << 20) {
            return Err(TlsError::Decode("handshake message too long"));
        }
        let Some(frame) = self.buf.get(..4 + len) else {
            return Ok(None);
        };
        let frame = frame.to_vec();
        let body = frame.get(4..).unwrap_or(&[]).to_vec();
        self.buf.drain(..4 + len);
        Ok(Some((typ, body, frame)))
    }

    /// True if partial data is buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// Helper: negotiate a suite from client offer and server preference.
pub fn choose_suite(client_offer: &[u16], server_prefs: &[CipherSuite]) -> Option<CipherSuite> {
    server_prefs
        .iter()
        .copied()
        .find(|s| client_offer.contains(&s.id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_roundtrip() {
        let ch = ClientHello {
            random: [7u8; 32],
            session_id: vec![1, 2, 3],
            cipher_suites: vec![0xC02C, 0xC02B],
            extensions: vec![
                Extension {
                    typ: extension_type::MIDDLEBOX_SUPPORT,
                    data: vec![9, 9],
                },
                Extension {
                    typ: extension_type::SESSION_TICKET,
                    data: vec![],
                },
            ],
        };
        let decoded = ClientHello::decode_body(&ch.encode_body()).unwrap();
        assert_eq!(decoded, ch);
        assert!(decoded.find_extension(extension_type::MIDDLEBOX_SUPPORT).is_some());
        assert!(decoded.find_extension(0x1234).is_none());
    }

    #[test]
    fn client_hello_no_extensions() {
        let ch = ClientHello {
            random: [0u8; 32],
            session_id: vec![],
            cipher_suites: vec![0xC02C],
            extensions: vec![],
        };
        assert_eq!(ClientHello::decode_body(&ch.encode_body()).unwrap(), ch);
    }

    #[test]
    fn server_hello_roundtrip() {
        let sh = ServerHello {
            random: [9u8; 32],
            session_id: vec![0xAA; 32],
            cipher_suite: 0xC02C,
            extensions: vec![Extension {
                typ: extension_type::ATTESTATION_REQUEST,
                data: vec![1],
            }],
        };
        assert_eq!(ServerHello::decode_body(&sh.encode_body()).unwrap(), sh);
    }

    #[test]
    fn server_key_exchange_roundtrip_both_kex() {
        for params in [
            ServerKeyExchangeParams::Ecdhe {
                public: vec![5u8; 32],
            },
            ServerKeyExchangeParams::Dhe {
                p: vec![0xFF; 256],
                g: vec![2],
                ys: vec![0xAB; 256],
            },
        ] {
            let ske = ServerKeyExchange {
                params: params.clone(),
                signature: vec![0x55; 64],
            };
            assert_eq!(ServerKeyExchange::decode_body(&ske.encode_body()).unwrap(), ske);
        }
    }

    #[test]
    fn signed_payload_binds_randoms() {
        let params = ServerKeyExchangeParams::Ecdhe {
            public: vec![1u8; 32],
        };
        let p1 = ServerKeyExchange::signed_payload(&[1; 32], &[2; 32], &params);
        let p2 = ServerKeyExchange::signed_payload(&[1; 32], &[3; 32], &params);
        assert_ne!(p1, p2);
    }

    #[test]
    fn handshake_reader_reassembles() {
        let m1 = frame_handshake(handshake_type::CLIENT_HELLO, b"body-1");
        let m2 = frame_handshake(handshake_type::FINISHED, b"xy");
        let mut all = m1.clone();
        all.extend_from_slice(&m2);
        let mut r = HandshakeReader::new();
        r.feed(&all[..5]);
        assert!(r.next_message().unwrap().is_none());
        assert!(r.has_partial());
        r.feed(&all[5..]);
        let (t1, b1, f1) = r.next_message().unwrap().unwrap();
        assert_eq!((t1, b1.as_slice()), (handshake_type::CLIENT_HELLO, &b"body-1"[..]));
        assert_eq!(f1, m1);
        let (t2, b2, _) = r.next_message().unwrap().unwrap();
        assert_eq!((t2, b2.as_slice()), (handshake_type::FINISHED, &b"xy"[..]));
        assert!(r.next_message().unwrap().is_none());
    }

    #[test]
    fn ticket_and_attestation_roundtrip() {
        let t = NewSessionTicket {
            lifetime_hint: 3600,
            ticket: vec![1, 2, 3, 4],
        };
        assert_eq!(NewSessionTicket::decode_body(&t.encode_body()).unwrap(), t);
        let a = SgxAttestationMsg {
            quote: vec![9; 100],
        };
        assert_eq!(SgxAttestationMsg::decode_body(&a.encode_body()).unwrap(), a);
        let c = DelegatedCredentialMsg {
            issuer_chain: vec![7; 80],
            credential: vec![8; 120],
        };
        assert_eq!(DelegatedCredentialMsg::decode_body(&c.encode_body()).unwrap(), c);
        assert!(DelegatedCredentialMsg::decode_body(&c.encode_body()[..5]).is_err());
    }

    #[test]
    fn choose_suite_respects_server_preference() {
        let offer = vec![CipherSuite::EcdheAes128GcmSha256.id(), CipherSuite::EcdheAes256GcmSha384.id()];
        assert_eq!(
            choose_suite(&offer, &CipherSuite::ALL),
            Some(CipherSuite::EcdheAes256GcmSha384)
        );
        assert_eq!(
            choose_suite(&offer, &[CipherSuite::EcdheAes128GcmSha256]),
            Some(CipherSuite::EcdheAes128GcmSha256)
        );
        assert_eq!(choose_suite(&[0x0001], &CipherSuite::ALL), None);
    }

    #[test]
    fn malformed_bodies_rejected() {
        assert!(ClientHello::decode_body(&[]).is_err());
        assert!(ServerHello::decode_body(&[3, 3]).is_err());
        assert!(ServerKeyExchange::decode_body(&[9]).is_err());
        assert!(ClientKeyExchange::decode_body(&[0]).is_err());
        // Trailing garbage.
        let ch = ClientHello {
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![0xC02C],
            extensions: vec![],
        };
        let mut bytes = ch.encode_body();
        bytes.push(0);
        assert!(ClientHello::decode_body(&bytes).is_err());
    }

    #[test]
    fn unknown_extensions_are_preserved_not_fatal() {
        let ch = ClientHello {
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![0xC02C],
            extensions: vec![Extension {
                typ: 0xABCD,
                data: vec![1, 2, 3],
            }],
        };
        let decoded = ClientHello::decode_body(&ch.encode_body()).unwrap();
        assert_eq!(decoded.extensions[0].typ, 0xABCD);
    }
}

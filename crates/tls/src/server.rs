//! The TLS 1.2 server state machine (sans-IO).

use std::sync::Arc;

use mbtls_crypto::dh::DhSecret;
use mbtls_crypto::gcm::AesGcm;
use mbtls_crypto::rng::CryptoRng;
use mbtls_crypto::x25519;
use mbtls_crypto::{ct, CryptoError};

use crate::alert::{Alert, AlertDescription, AlertLevel};
use crate::config::ServerConfig;
use crate::keyschedule::{self, strip_leading_zeros};
use crate::messages::{
    choose_suite, extension_type, frame_handshake, handshake_type, ClientHello,
    ClientKeyExchange, DelegatedCredentialMsg, Extension, HandshakeReader, NewSessionTicket,
    ServerHello, ServerKeyExchange, ServerKeyExchangeParams, SgxAttestationMsg,
};
use crate::record::{ContentType, DirectionState, RecordReader, frame_plaintext, fragment};
use crate::session::{ConnectionSecrets, SessionKeys, TicketPlaintext};
use crate::suites::{CipherSuite, KeyExchange};
use crate::transcript::Transcript;
use crate::TlsError;

/// Server handshake phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitClientHello,
    /// Full handshake: waiting for ClientKeyExchange.
    AwaitClientKeyExchange,
    /// Waiting for the client's CCS+Finished (full handshake).
    AwaitClientFinished,
    /// Abbreviated: we sent Finished; waiting for client CCS+Finished.
    AwaitClientFinishedResumed,
    Established,
    Failed,
}

/// Ephemeral server kex secret between flights.
// lint:allow(secret-hygiene) -- both variants zeroize themselves on drop; a wrapper Drop would forbid the by-value match that moves the secret into the kex computation
enum KexSecret {
    Ecdhe(x25519::SecretKey),
    Dhe(DhSecret),
}

/// A sans-IO TLS 1.2 server connection.
pub struct ServerConnection {
    config: Arc<ServerConfig>,
    phase: Phase,

    record_reader: RecordReader,
    hs_reader: HandshakeReader,
    out: Vec<u8>,

    transcript: Transcript,
    client_random: [u8; 32],
    server_random: [u8; 32],
    client_hello: Option<ClientHello>,

    suite: Option<CipherSuite>,
    kex: Option<KexSecret>,
    secrets: Option<ConnectionSecrets>,

    peer_change_cipher_seen: bool,
    read_cipher: Option<DirectionState>,
    write_cipher: Option<DirectionState>,

    resumed: bool,
    client_offered_ticket_ext: bool,
    /// Session id assigned in this full handshake (cached at
    /// establishment when `assign_session_ids` is on).
    assigned_session_id: Vec<u8>,
    /// Keys to embed in issued tickets (mbTLS middlebox tickets carry
    /// the primary session keys — paper §3.5).
    pub ticket_embed_keys: Option<SessionKeys>,

    nonstandard_in: Vec<(u8, Vec<u8>)>,
    plaintext_in: Vec<u8>,
    early_plaintext_in: Vec<u8>,
    error: Option<TlsError>,
    closed_by_peer: bool,
}

impl ServerConnection {
    /// New server connection awaiting a ClientHello.
    pub fn new(config: Arc<ServerConfig>) -> Self {
        ServerConnection {
            config,
            phase: Phase::AwaitClientHello,
            record_reader: RecordReader::new(),
            hs_reader: HandshakeReader::new(),
            out: Vec::new(),
            transcript: Transcript::new(),
            client_random: [0; 32],
            server_random: [0; 32],
            client_hello: None,
            suite: None,
            kex: None,
            secrets: None,
            peer_change_cipher_seen: false,
            read_cipher: None,
            write_cipher: None,
            resumed: false,
            client_offered_ticket_ext: false,
            assigned_session_id: Vec::new(),
            ticket_embed_keys: None,
            nonstandard_in: Vec::new(),
            plaintext_in: Vec::new(),
            early_plaintext_in: Vec::new(),
            error: None,
            closed_by_peer: false,
        }
    }

    /// Bytes queued for the wire.
    pub fn take_outgoing(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// True once established.
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Established
    }

    /// True if failed.
    pub fn is_failed(&self) -> bool {
        self.phase == Phase::Failed
    }

    /// Failure cause.
    pub fn error(&self) -> Option<&TlsError> {
        self.error.as_ref()
    }

    /// Did this handshake resume?
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The ClientHello received (mbTLS middleboxes reuse it).
    pub fn client_hello(&self) -> Option<&ClientHello> {
        self.client_hello.as_ref()
    }

    /// The negotiated secrets.
    pub fn secrets(&self) -> Option<&ConnectionSecrets> {
        self.secrets.as_ref()
    }

    /// Export session keys + sequence numbers (see the client's
    /// equivalent).
    pub fn export_session_keys(&self) -> Option<SessionKeys> {
        let secrets = self.secrets.as_ref()?;
        let s2c = self.write_cipher.as_ref()?.seq();
        let c2s = self.read_cipher.as_ref()?.seq();
        Some(SessionKeys::from_secrets(secrets, c2s, s2c))
    }

    /// Queue application data.
    pub fn send_data(&mut self, data: &[u8]) -> Result<(), TlsError> {
        if !self.is_established() {
            return Err(TlsError::HandshakeNotDone);
        }
        for frag in fragment(data) {
            let cipher = self
                .write_cipher
                .as_mut()
                .ok_or(TlsError::Internal("write cipher active but missing"))?;
            let rec = cipher.seal_record(ContentType::ApplicationData, frag)?;
            self.out.extend_from_slice(&rec);
        }
        Ok(())
    }

    /// Received application data.
    pub fn take_plaintext(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.plaintext_in)
    }

    /// Application data that arrived encrypted *before* our Finished
    /// was acked — the False-Start-style early data a server-side
    /// mbTLS middlebox may choose to process (paper §3.5).
    pub fn take_early_plaintext(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.early_plaintext_in)
    }

    /// Non-standard records received.
    pub fn take_nonstandard_records(&mut self) -> Vec<(u8, Vec<u8>)> {
        std::mem::take(&mut self.nonstandard_in)
    }

    /// Send a raw plaintext-framed record (mbTLS control records).
    pub fn send_raw_record(&mut self, content_type: ContentType, payload: &[u8]) {
        self.out
            .extend_from_slice(&frame_plaintext(content_type, payload));
    }

    /// True if the peer sent close_notify.
    pub fn peer_closed(&self) -> bool {
        self.closed_by_peer
    }

    /// Feed wire bytes.
    pub fn feed_incoming(&mut self, data: &[u8], rng: &mut CryptoRng) -> Result<(), TlsError> {
        if self.phase == Phase::Failed {
            return Err(self.error.clone().unwrap_or(TlsError::Closed));
        }
        self.record_reader.feed(data);
        loop {
            match self.record_reader.next_record() {
                Ok(Some(record)) => {
                    if let Err(e) = self.process_record(record.content_type_byte, record.body, rng)
                    {
                        self.fail(e.clone());
                        return Err(e);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.fail(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn fail(&mut self, e: TlsError) {
        if self.phase != Phase::Failed {
            let alert = Alert::for_error(&e);
            self.out
                .extend_from_slice(&frame_plaintext(ContentType::Alert, &alert.encode()));
            self.phase = Phase::Failed;
            self.error = Some(e);
        }
    }

    fn process_record(
        &mut self,
        ct_byte: u8,
        body: Vec<u8>,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        let Some(content_type) = ContentType::from_u8(ct_byte) else {
            if self.config.strict_unknown_records {
                return Err(TlsError::Decode("unknown record content type"));
            }
            self.nonstandard_in.push((ct_byte, body));
            return Ok(());
        };
        if content_type.is_mbtls() {
            if self.config.strict_unknown_records {
                return Err(TlsError::Decode("unexpected mbTLS record"));
            }
            self.nonstandard_in.push((ct_byte, body));
            return Ok(());
        }
        let payload = if self.peer_change_cipher_seen
            && content_type != ContentType::ChangeCipherSpec
        {
            self.read_cipher
                .as_mut()
                .ok_or(TlsError::UnexpectedMessage("ciphertext before keys"))?
                .open_record(content_type, &body)?
        } else {
            body
        };
        match content_type {
            ContentType::Alert => {
                let alert = Alert::decode(&payload)?;
                if alert.description == AlertDescription::CloseNotify {
                    self.closed_by_peer = true;
                    return Ok(());
                }
                if alert.level == AlertLevel::Fatal {
                    return Err(TlsError::PeerAlert(alert.description));
                }
                Ok(())
            }
            ContentType::ChangeCipherSpec => {
                if payload != [1] {
                    return Err(TlsError::Decode("bad ChangeCipherSpec"));
                }
                let secrets = self
                    .secrets
                    .as_ref()
                    .ok_or(TlsError::UnexpectedMessage("CCS before key exchange"))?;
                let kb = secrets.key_block();
                self.read_cipher = Some(DirectionState::new(
                    secrets.suite.bulk(),
                    &kb.client_write_key,
                    &kb.client_write_iv,
                    0,
                )?);
                self.peer_change_cipher_seen = true;
                Ok(())
            }
            ContentType::Handshake => {
                self.hs_reader.feed(&payload);
                while let Some((typ, msg_body, frame)) = self.hs_reader.next_message()? {
                    self.handle_handshake(typ, msg_body, frame, rng)?;
                }
                Ok(())
            }
            ContentType::ApplicationData => {
                match self.phase {
                    Phase::Established => {
                        self.plaintext_in.extend_from_slice(&payload);
                        Ok(())
                    }
                    // False-Start data: client sent Finished and data
                    // in the same flight, before seeing ours.
                    Phase::AwaitClientFinished | Phase::AwaitClientFinishedResumed => {
                        Err(TlsError::UnexpectedMessage("data before client Finished"))
                    }
                    _ => Err(TlsError::UnexpectedMessage("early application data")),
                }
            }
            _ => Err(TlsError::Internal("content type handled in an earlier match arm")),
        }
    }

    fn handle_handshake(
        &mut self,
        typ: u8,
        body: Vec<u8>,
        frame: Vec<u8>,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        match (self.phase, typ) {
            (Phase::AwaitClientHello, handshake_type::CLIENT_HELLO) => {
                self.transcript.add(&frame);
                let ch = ClientHello::decode_body(&body)?;
                self.client_random = ch.random;
                self.server_random = rng.gen_array();
                self.client_offered_ticket_ext = ch
                    .find_extension(extension_type::SESSION_TICKET)
                    .is_some();
                let suite = choose_suite(&ch.cipher_suites, &self.config.suites)
                    .ok_or(TlsError::NegotiationFailed("no common cipher suite"))?;
                self.suite = Some(suite);

                // Try ticket resumption first, then session-id.
                let ticket_master = ch
                    .find_extension(extension_type::SESSION_TICKET)
                    .filter(|e| !e.data.is_empty())
                    .and_then(|e| self.open_ticket(&e.data))
                    .filter(|t| t.suite == suite);
                let id_master = if ticket_master.is_none() && !ch.session_id.is_empty() {
                    // A poisoned cache mutex just disables ID resumption.
                    self.config.session_cache.lock().ok().and_then(|cache| {
                        cache
                            .get(&ch.session_id)
                            .filter(|(s, _)| *s == suite)
                            .map(|(s, m)| (*s, m.clone()))
                    })
                } else {
                    None
                };

                if let Some(mut ticket) = ticket_master {
                    self.client_hello = Some(ch.clone());
                    // `TicketPlaintext` zeroizes on drop, so the
                    // master secret cannot be moved out of it;
                    // take-and-replace hands the buffer to the
                    // abbreviated handshake and lets `ticket` wipe
                    // whatever remains.
                    let master = std::mem::take(&mut ticket.master_secret);
                    self.start_abbreviated(suite, master, &ch, rng)?;
                } else if let Some((_, master)) = id_master {
                    self.client_hello = Some(ch.clone());
                    self.start_abbreviated(suite, master, &ch, rng)?;
                } else {
                    self.client_hello = Some(ch.clone());
                    self.start_full(suite, &ch, rng)?;
                }
                Ok(())
            }
            (Phase::AwaitClientKeyExchange, handshake_type::CLIENT_KEY_EXCHANGE) => {
                self.transcript.add(&frame);
                let cke = ClientKeyExchange::decode_body(&body)?;
                let suite = self.suite.ok_or(TlsError::Internal("suite chosen"))?;
                let pre_master: Vec<u8> = match self.kex.take() {
                    Some(KexSecret::Ecdhe(secret)) => {
                        let peer = x25519::PublicKey(
                            cke.public
                                .as_slice()
                                .try_into()
                                .map_err(|_| TlsError::Decode("bad x25519 point"))?,
                        );
                        secret.diffie_hellman(&peer)?.to_vec()
                    }
                    Some(KexSecret::Dhe(secret)) => {
                        let mut padded = vec![0u8; 256usize.saturating_sub(cke.public.len())];
                        padded.extend_from_slice(&cke.public);
                        let shared =
                            secret.diffie_hellman(&mbtls_crypto::dh::DhPublic(padded))?;
                        strip_leading_zeros(&shared).to_vec()
                    }
                    None => return Err(TlsError::UnexpectedMessage("no kex in progress")),
                };
                let master = keyschedule::master_secret(
                    suite,
                    &pre_master,
                    &self.client_random,
                    &self.server_random,
                );
                self.secrets = Some(ConnectionSecrets {
                    suite,
                    master_secret: master,
                    client_random: self.client_random,
                    server_random: self.server_random,
                });
                self.phase = Phase::AwaitClientFinished;
                Ok(())
            }
            (Phase::AwaitClientFinished, handshake_type::FINISHED) => {
                self.verify_client_finished(&body, &frame)?;
                // Send (optional ticket) + CCS + Finished.
                if self.config.issue_tickets && self.client_offered_ticket_ext {
                    let ticket = self.issue_ticket(rng)?;
                    let t_frame =
                        frame_handshake(handshake_type::NEW_SESSION_TICKET, &ticket.encode_body());
                    self.transcript.add(&t_frame);
                    self.out
                        .extend_from_slice(&frame_plaintext(ContentType::Handshake, &t_frame));
                }
                self.send_ccs_and_finished()?;
                if !self.assigned_session_id.is_empty() {
                    let secrets = self
                        .secrets
                        .as_ref()
                        .ok_or(TlsError::Internal("secrets derived before Finished"))?;
                    // A poisoned cache mutex just disables ID resumption.
                    if let Ok(mut cache) = self.config.session_cache.lock() {
                        cache.insert(
                            self.assigned_session_id.clone(),
                            (secrets.suite, secrets.master_secret.clone()),
                        );
                    }
                }
                self.phase = Phase::Established;
                Ok(())
            }
            (Phase::AwaitClientFinishedResumed, handshake_type::FINISHED) => {
                self.verify_client_finished(&body, &frame)?;
                self.phase = Phase::Established;
                Ok(())
            }
            _ => Err(TlsError::UnexpectedMessage("handshake message out of order")),
        }
    }

    /// Full handshake: ServerHello, Certificate, ServerKeyExchange,
    /// [SGXAttestation], ServerHelloDone — one flight.
    fn start_full(
        &mut self,
        suite: CipherSuite,
        ch: &ClientHello,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        let mut extensions = Vec::new();
        // Per RFC 5246 the server may only echo extensions the client
        // offered (the reason server-side mbTLS discovery cannot use
        // the MiddleboxSupport extension — paper §3.4).
        if self.config.issue_tickets && self.client_offered_ticket_ext {
            extensions.push(Extension {
                typ: extension_type::SESSION_TICKET,
                data: vec![],
            });
        }
        let session_id = if self.config.assign_session_ids {
            rng.gen_array::<32>().to_vec()
        } else {
            vec![]
        };
        self.assigned_session_id = session_id.clone();
        let sh = ServerHello {
            random: self.server_random,
            session_id,
            cipher_suite: suite.id(),
            extensions,
        };
        self.queue_handshake_plain(handshake_type::SERVER_HELLO, &sh.encode_body());

        let chain = mbtls_pki::cert::encode_chain(&self.config.certified_key.chain);
        self.queue_handshake_plain(handshake_type::CERTIFICATE, &chain);

        // Ephemeral key exchange.
        let params = match suite.key_exchange() {
            KeyExchange::Ecdhe => {
                let secret = x25519::SecretKey::generate(rng);
                let public = secret.public_key().0.to_vec();
                self.kex = Some(KexSecret::Ecdhe(secret));
                ServerKeyExchangeParams::Ecdhe { public }
            }
            KeyExchange::Dhe => {
                let secret = DhSecret::generate(rng);
                let public = secret.public_value().0;
                self.kex = Some(KexSecret::Dhe(secret));
                ServerKeyExchangeParams::Dhe {
                    p: mbtls_crypto::dh::prime().to_bytes_be_padded(256),
                    g: vec![2],
                    ys: public,
                }
            }
        };
        let signed =
            ServerKeyExchange::signed_payload(&self.client_random, &self.server_random, &params);
        let signature = self.config.certified_key.key.sign(&signed);
        let ske = ServerKeyExchange {
            params,
            signature: signature.0.to_vec(),
        };
        self.queue_handshake_plain(handshake_type::SERVER_KEY_EXCHANGE, &ske.encode_body());

        // Attestation: if we have an attestor and the client asked
        // (or we always attest). Binds the transcript through SKE.
        let client_asked = ch
            .find_extension(extension_type::ATTESTATION_REQUEST)
            .is_some();
        if let Some(attestor) = &self.config.attestor {
            if client_asked || self.config.always_attest {
                let binding = self.transcript.attestation_binding();
                let quote = attestor.quote(binding);
                let msg = SgxAttestationMsg {
                    quote: quote.encode(),
                };
                self.queue_handshake_plain(handshake_type::SGX_ATTESTATION, &msg.encode_body());
            }
        }

        // Delegated credential: the mdTLS-style alternative to
        // attestation, bound to this session through the same
        // transcript binding.
        let client_asked_delegation = ch
            .find_extension(extension_type::DELEGATION_REQUEST)
            .is_some();
        if let Some(provider) = &self.config.credential_provider {
            if client_asked_delegation || self.config.always_delegate {
                let binding = self.transcript.attestation_binding();
                let cred = provider.credential(binding);
                let msg = DelegatedCredentialMsg {
                    issuer_chain: mbtls_pki::cert::encode_chain(&provider.issuer_chain()),
                    credential: cred.encode(),
                };
                self.queue_handshake_plain(
                    handshake_type::DELEGATED_CREDENTIAL,
                    &msg.encode_body(),
                );
            }
        }

        self.queue_handshake_plain(handshake_type::SERVER_HELLO_DONE, &[]);
        self.phase = Phase::AwaitClientKeyExchange;
        Ok(())
    }

    /// Abbreviated handshake: ServerHello, [ticket], CCS, Finished.
    fn start_abbreviated(
        &mut self,
        suite: CipherSuite,
        master_secret: Vec<u8>,
        ch: &ClientHello,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        self.resumed = true;
        self.secrets = Some(ConnectionSecrets {
            suite,
            master_secret,
            client_random: self.client_random,
            server_random: self.server_random,
        });
        let mut extensions = Vec::new();
        if self.client_offered_ticket_ext {
            extensions.push(Extension {
                typ: extension_type::SESSION_TICKET,
                data: vec![],
            });
        }
        let sh = ServerHello {
            random: self.server_random,
            // Echo the client's id to signal resumption (RFC 5246
            // §7.4.1.3); for pure ticket resumption the id may be
            // empty on both sides.
            session_id: ch.session_id.clone(),
            cipher_suite: suite.id(),
            extensions,
        };
        self.queue_handshake_plain(handshake_type::SERVER_HELLO, &sh.encode_body());
        if self.config.issue_tickets && self.client_offered_ticket_ext {
            let ticket = self.issue_ticket(rng)?;
            let t_frame =
                frame_handshake(handshake_type::NEW_SESSION_TICKET, &ticket.encode_body());
            self.transcript.add(&t_frame);
            self.out
                .extend_from_slice(&frame_plaintext(ContentType::Handshake, &t_frame));
        }
        self.send_ccs_and_finished()?;
        self.phase = Phase::AwaitClientFinishedResumed;
        Ok(())
    }

    fn queue_handshake_plain(&mut self, typ: u8, body: &[u8]) {
        let frame = frame_handshake(typ, body);
        self.transcript.add(&frame);
        self.out
            .extend_from_slice(&frame_plaintext(ContentType::Handshake, &frame));
    }

    fn send_ccs_and_finished(&mut self) -> Result<(), TlsError> {
        self.out
            .extend_from_slice(&frame_plaintext(ContentType::ChangeCipherSpec, &[1]));
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::Internal("secrets derived before Finished"))?;
        let kb = secrets.key_block();
        self.write_cipher = Some(DirectionState::new(
            secrets.suite.bulk(),
            &kb.server_write_key,
            &kb.server_write_iv,
            0,
        )?);
        let vd = keyschedule::verify_data(
            secrets.suite,
            &secrets.master_secret,
            b"server finished",
            self.transcript.bytes(),
        );
        let frame = frame_handshake(handshake_type::FINISHED, &vd);
        self.transcript.add(&frame);
        let rec = self
            .write_cipher
            .as_mut()
            .ok_or(TlsError::Internal("write cipher activated above"))?
            .seal_record(ContentType::Handshake, &frame)?;
        self.out.extend_from_slice(&rec);
        Ok(())
    }

    fn verify_client_finished(&mut self, body: &[u8], frame: &[u8]) -> Result<(), TlsError> {
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::UnexpectedMessage("Finished before keys"))?;
        let expected = keyschedule::verify_data(
            secrets.suite,
            &secrets.master_secret,
            b"client finished",
            self.transcript.bytes(),
        );
        if !ct::eq(&expected, body) {
            return Err(TlsError::Crypto(CryptoError::BadTag));
        }
        self.transcript.add(frame);
        Ok(())
    }

    fn ticket_gcm(&self) -> Result<AesGcm, TlsError> {
        AesGcm::new(&self.config.ticket_key)
            .map_err(|_| TlsError::Internal("ticket key is 32 bytes by construction"))
    }

    fn issue_ticket(&mut self, rng: &mut CryptoRng) -> Result<NewSessionTicket, TlsError> {
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::Internal("secrets derived before ticket issue"))?;
        let plain = TicketPlaintext {
            suite: secrets.suite,
            master_secret: secrets.master_secret.clone(),
            primary_keys: self.ticket_embed_keys.clone(),
        };
        let nonce: [u8; 12] = rng.gen_array();
        let sealed = self.ticket_gcm()?.seal(&nonce, b"ticket", &plain.encode())?;
        let mut ticket = nonce.to_vec();
        ticket.extend_from_slice(&sealed);
        Ok(NewSessionTicket {
            lifetime_hint: 3600,
            ticket,
        })
    }

    fn open_ticket(&self, ticket: &[u8]) -> Option<TicketPlaintext> {
        let (nonce, sealed) = ticket.split_first_chunk::<12>()?;
        let plain = self.ticket_gcm().ok()?.open(nonce, b"ticket", sealed).ok()?;
        TicketPlaintext::decode(&plain).ok()
    }

    /// Decrypt a ticket (exposed for mbTLS middlebox resumption where
    /// the mbTLS layer needs the embedded primary keys).
    pub fn peek_ticket(&self, ticket: &[u8]) -> Option<TicketPlaintext> {
        self.open_ticket(ticket)
    }
}

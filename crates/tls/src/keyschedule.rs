//! The TLS 1.2 key schedule (RFC 5246 §8.1, §6.3) over the suite's
//! PRF hash, plus the Finished verify-data computation (§7.4.9).

use crate::suites::{CipherSuite, PrfHash};
use mbtls_crypto::aead::FIXED_IV_LEN;
use mbtls_crypto::ct;
use mbtls_crypto::kdf::tls12_prf;
use mbtls_crypto::sha2::{Hash, Sha256, Sha384};

/// Length of the master secret.
pub const MASTER_SECRET_LEN: usize = 48;
/// Length of Finished verify_data.
pub const VERIFY_DATA_LEN: usize = 12;

/// Run the suite's PRF.
pub fn prf(suite: CipherSuite, secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    match suite.prf_hash() {
        PrfHash::Sha256 => tls12_prf::<Sha256>(secret, label, seed, out_len),
        PrfHash::Sha384 => tls12_prf::<Sha384>(secret, label, seed, out_len),
    }
}

/// Hash a transcript with the suite's PRF hash.
pub fn transcript_hash(suite: CipherSuite, transcript: &[u8]) -> Vec<u8> {
    match suite.prf_hash() {
        PrfHash::Sha256 => {
            let mut h = Sha256::new();
            h.update(transcript);
            h.finalize()
        }
        PrfHash::Sha384 => {
            let mut h = Sha384::new();
            h.update(transcript);
            h.finalize()
        }
    }
}

/// master_secret = PRF(pre_master, "master secret",
///                     client_random || server_random)[0..48]
pub fn master_secret(
    suite: CipherSuite,
    pre_master: &[u8],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> Vec<u8> {
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(client_random);
    seed.extend_from_slice(server_random);
    prf(suite, pre_master, b"master secret", &seed, MASTER_SECRET_LEN)
}

/// The expanded key block for an AEAD suite: write keys and implicit
/// IVs for both directions (no MAC keys, RFC 5288).
#[derive(Clone)]
pub struct KeyBlock {
    /// Client-write AEAD key.
    pub client_write_key: Vec<u8>,
    /// Server-write AEAD key.
    pub server_write_key: Vec<u8>,
    /// Client-write implicit IV (4 bytes).
    pub client_write_iv: Vec<u8>,
    /// Server-write implicit IV (4 bytes).
    pub server_write_iv: Vec<u8>,
}

impl KeyBlock {
    /// Zero every key and IV byte in place. Lengths are preserved so
    /// encodings of a wiped block are still well-formed; this is the
    /// routine [`Drop`] runs, exposed so callers can scrub early.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.client_write_key);
        ct::zeroize(&mut self.server_write_key);
        ct::zeroize(&mut self.client_write_iv);
        ct::zeroize(&mut self.server_write_iv);
    }
}

impl Drop for KeyBlock {
    fn drop(&mut self) {
        self.wipe();
    }
}

// A key block is nothing but live AEAD keys; the derived formatter
// would print all of them. Show only the layout.
impl std::fmt::Debug for KeyBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KeyBlock(key_len={}, iv_len={}, ..)",
            self.client_write_key.len(),
            self.client_write_iv.len()
        )
    }
}

/// key_block = PRF(master, "key expansion",
///                 server_random || client_random)
pub fn key_block(
    suite: CipherSuite,
    master: &[u8],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> KeyBlock {
    let key_len = suite.bulk().key_len();
    let needed = 2 * key_len + 2 * FIXED_IV_LEN;
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(server_random);
    seed.extend_from_slice(client_random);
    let block = prf(suite, master, b"key expansion", &seed, needed);
    let mut at = 0usize;
    let mut take = |n: usize| {
        let out = block[at..at + n].to_vec();
        at += n;
        out
    };
    KeyBlock {
        client_write_key: take(key_len),
        server_write_key: take(key_len),
        client_write_iv: take(FIXED_IV_LEN),
        server_write_iv: take(FIXED_IV_LEN),
    }
}

/// verify_data = PRF(master, label, Hash(handshake_messages))[0..12]
pub fn verify_data(suite: CipherSuite, master: &[u8], label: &[u8], transcript: &[u8]) -> Vec<u8> {
    let hash = transcript_hash(suite, transcript);
    prf(suite, master, label, &hash, VERIFY_DATA_LEN)
}

/// Strip leading zero bytes from a DHE shared secret (RFC 5246
/// §8.1.2: the negotiated key is the positive integer with leading
/// zeros removed).
pub fn strip_leading_zeros(z: &[u8]) -> &[u8] {
    let first = z.iter().position(|&b| b != 0).unwrap_or(z.len().saturating_sub(1));
    &z[first..]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUITE: CipherSuite = CipherSuite::EcdheAes256GcmSha384;

    #[test]
    fn master_secret_is_48_bytes_and_deterministic() {
        let ms1 = master_secret(SUITE, b"premaster", &[1; 32], &[2; 32]);
        let ms2 = master_secret(SUITE, b"premaster", &[1; 32], &[2; 32]);
        assert_eq!(ms1.len(), 48);
        assert_eq!(ms1, ms2);
        // Randoms matter.
        assert_ne!(ms1, master_secret(SUITE, b"premaster", &[1; 32], &[3; 32]));
        // Premaster matters.
        assert_ne!(ms1, master_secret(SUITE, b"other", &[1; 32], &[2; 32]));
    }

    #[test]
    fn key_block_layout() {
        let kb = key_block(SUITE, &[7; 48], &[1; 32], &[2; 32]);
        assert_eq!(kb.client_write_key.len(), 32);
        assert_eq!(kb.server_write_key.len(), 32);
        assert_eq!(kb.client_write_iv.len(), 4);
        assert_eq!(kb.server_write_iv.len(), 4);
        assert_ne!(kb.client_write_key, kb.server_write_key);

        let kb128 = key_block(CipherSuite::EcdheAes128GcmSha256, &[7; 48], &[1; 32], &[2; 32]);
        assert_eq!(kb128.client_write_key.len(), 16);
    }

    #[test]
    fn verify_data_binds_transcript_and_label() {
        let master = [9u8; 48];
        let v1 = verify_data(SUITE, &master, b"client finished", b"transcript");
        let v2 = verify_data(SUITE, &master, b"server finished", b"transcript");
        let v3 = verify_data(SUITE, &master, b"client finished", b"transcript2");
        assert_eq!(v1.len(), VERIFY_DATA_LEN);
        assert_ne!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn prf_hash_depends_on_suite() {
        let a = prf(CipherSuite::EcdheAes128GcmSha256, b"s", b"l", b"x", 16);
        let b = prf(CipherSuite::EcdheAes256GcmSha384, b"s", b"l", b"x", 16);
        assert_ne!(a, b);
    }

    #[test]
    fn strip_leading_zeros_works() {
        assert_eq!(strip_leading_zeros(&[0, 0, 1, 2]), &[1, 2]);
        assert_eq!(strip_leading_zeros(&[5, 0]), &[5, 0]);
        assert_eq!(strip_leading_zeros(&[0, 0]), &[0]);
    }
}

//! Cipher suite definitions.
//!
//! All suites are AEAD (AES-GCM) with signed ephemeral key exchange.
//! Certificate signatures in this workspace are always Ed25519 (see
//! DESIGN.md substitutions), so a suite is identified by its key
//! exchange, bulk cipher, and PRF hash. The wire IDs reuse the IANA
//! code points for the analogous ECDSA/RSA suites so our handshakes
//! look shaped like the paper's (`ECDHE` vs `DHE`, AES-256-GCM
//! default).

use mbtls_crypto::aead::BulkAlgorithm;

/// Key-exchange families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyExchange {
    /// X25519 ephemeral ECDH.
    Ecdhe,
    /// ffdhe2048 ephemeral finite-field DH.
    Dhe,
}

/// PRF hash selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrfHash {
    /// SHA-256-based PRF.
    Sha256,
    /// SHA-384-based PRF.
    Sha384,
}

impl PrfHash {
    /// Length of this hash's output.
    pub fn output_len(self) -> usize {
        match self {
            PrfHash::Sha256 => 32,
            PrfHash::Sha384 => 48,
        }
    }
}

/// A negotiable cipher suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// ECDHE + AES-128-GCM + SHA-256 (wire 0xC02B).
    EcdheAes128GcmSha256,
    /// ECDHE + AES-256-GCM + SHA-384 (wire 0xC02C). The suite the
    /// paper's prototype supports.
    EcdheAes256GcmSha384,
    /// DHE + AES-256-GCM + SHA-384 (wire 0x009F analogue).
    DheAes256GcmSha384,
}

impl CipherSuite {
    /// All suites, preference order (strongest first).
    pub const ALL: [CipherSuite; 3] = [
        CipherSuite::EcdheAes256GcmSha384,
        CipherSuite::EcdheAes128GcmSha256,
        CipherSuite::DheAes256GcmSha384,
    ];

    /// Wire code point.
    pub fn id(self) -> u16 {
        match self {
            CipherSuite::EcdheAes128GcmSha256 => 0xC02B,
            CipherSuite::EcdheAes256GcmSha384 => 0xC02C,
            CipherSuite::DheAes256GcmSha384 => 0x009F,
        }
    }

    /// Reverse lookup.
    pub fn from_id(id: u16) -> Option<CipherSuite> {
        Self::ALL.into_iter().find(|s| s.id() == id)
    }

    /// Key-exchange family.
    pub fn key_exchange(self) -> KeyExchange {
        match self {
            CipherSuite::EcdheAes128GcmSha256 | CipherSuite::EcdheAes256GcmSha384 => {
                KeyExchange::Ecdhe
            }
            CipherSuite::DheAes256GcmSha384 => KeyExchange::Dhe,
        }
    }

    /// Bulk cipher.
    pub fn bulk(self) -> BulkAlgorithm {
        match self {
            CipherSuite::EcdheAes128GcmSha256 => BulkAlgorithm::Aes128Gcm,
            CipherSuite::EcdheAes256GcmSha384 | CipherSuite::DheAes256GcmSha384 => {
                BulkAlgorithm::Aes256Gcm
            }
        }
    }

    /// PRF hash.
    pub fn prf_hash(self) -> PrfHash {
        match self {
            CipherSuite::EcdheAes128GcmSha256 => PrfHash::Sha256,
            CipherSuite::EcdheAes256GcmSha384 | CipherSuite::DheAes256GcmSha384 => PrfHash::Sha384,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for s in CipherSuite::ALL {
            assert_eq!(CipherSuite::from_id(s.id()), Some(s));
        }
        assert_eq!(CipherSuite::from_id(0x0000), None);
        assert_eq!(CipherSuite::from_id(0x1301), None);
    }

    #[test]
    fn suite_properties() {
        let s = CipherSuite::EcdheAes256GcmSha384;
        assert_eq!(s.key_exchange(), KeyExchange::Ecdhe);
        assert_eq!(s.bulk(), BulkAlgorithm::Aes256Gcm);
        assert_eq!(s.prf_hash(), PrfHash::Sha384);
        assert_eq!(s.prf_hash().output_len(), 48);

        let d = CipherSuite::DheAes256GcmSha384;
        assert_eq!(d.key_exchange(), KeyExchange::Dhe);

        let weak = CipherSuite::EcdheAes128GcmSha256;
        assert_eq!(weak.bulk(), BulkAlgorithm::Aes128Gcm);
        assert_eq!(weak.prf_hash().output_len(), 32);
    }

    #[test]
    fn preference_order_prefers_aes256() {
        assert_eq!(CipherSuite::ALL[0], CipherSuite::EcdheAes256GcmSha384);
    }
}

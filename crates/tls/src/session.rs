//! Established-session types: connection secrets, exportable key
//! material, and the resumption data model.
//!
//! The exportable [`SessionKeys`] struct is the heart of mbTLS's key
//! distribution: it is exactly the content of the paper's
//! `MBTLSKeyMaterial` record (Appendix A.1) — directional AEAD keys +
//! implicit IVs + current sequence numbers — so a middlebox that
//! receives one can join an existing record stream mid-flight.

use crate::codec::{Decoder, Encoder};
use crate::keyschedule::{self, KeyBlock};
use crate::record::DirectionState;
use crate::suites::CipherSuite;
use crate::TlsError;
use mbtls_crypto::ct;
use std::mem;

/// The secrets of a completed (or resumed) handshake.
#[derive(Clone)]
pub struct ConnectionSecrets {
    /// Negotiated suite.
    pub suite: CipherSuite,
    /// 48-byte master secret.
    pub master_secret: Vec<u8>,
    /// Client random.
    pub client_random: [u8; 32],
    /// Server random.
    pub server_random: [u8; 32],
}

impl ConnectionSecrets {
    /// Expand the key block for this session.
    pub fn key_block(&self) -> KeyBlock {
        keyschedule::key_block(
            self.suite,
            &self.master_secret,
            &self.client_random,
            &self.server_random,
        )
    }

    /// Zero the master secret in place (the randoms are public wire
    /// data). This is the routine [`Drop`] runs, exposed so callers
    /// can scrub early.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.master_secret);
    }
}

impl Drop for ConnectionSecrets {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl std::fmt::Debug for ConnectionSecrets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConnectionSecrets(suite=0x{:04x}, ..)", self.suite.id())
    }
}

/// Exportable (and wire-encodable) session key material — the
/// `MBTLSKeyMaterial` payload.
#[derive(Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// The cipher suite these keys belong to.
    pub suite: CipherSuite,
    /// Client-write AEAD key.
    pub client_write_key: Vec<u8>,
    /// Client-write implicit IV.
    pub client_write_iv: Vec<u8>,
    /// Server-write AEAD key.
    pub server_write_key: Vec<u8>,
    /// Server-write implicit IV.
    pub server_write_iv: Vec<u8>,
    /// Next sequence number, client-to-server direction.
    pub client_to_server_seq: u64,
    /// Next sequence number, server-to-client direction.
    pub server_to_client_seq: u64,
}

impl SessionKeys {
    /// Derive from connection secrets and the current record-layer
    /// sequence numbers.
    pub fn from_secrets(secrets: &ConnectionSecrets, c2s_seq: u64, s2c_seq: u64) -> Self {
        // `KeyBlock` has a zeroizing `Drop`, so its fields cannot be
        // moved out directly (E0509); take-and-replace transfers each
        // buffer and leaves empty vecs behind for the block's drop.
        let mut kb = secrets.key_block();
        SessionKeys {
            suite: secrets.suite,
            client_write_key: mem::take(&mut kb.client_write_key),
            client_write_iv: mem::take(&mut kb.client_write_iv),
            server_write_key: mem::take(&mut kb.server_write_key),
            server_write_iv: mem::take(&mut kb.server_write_iv),
            client_to_server_seq: c2s_seq,
            server_to_client_seq: s2c_seq,
        }
    }

    /// Zero every key and IV byte in place, preserving lengths. This
    /// is the routine [`Drop`] runs, exposed so callers can scrub a
    /// copy as soon as it has served its purpose.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.client_write_key);
        ct::zeroize(&mut self.client_write_iv);
        ct::zeroize(&mut self.server_write_key);
        ct::zeroize(&mut self.server_write_iv);
    }

    /// Record-protection state for reading the client→server flow.
    pub fn open_client_to_server(&self) -> Result<DirectionState, TlsError> {
        DirectionState::new(
            self.suite.bulk(),
            &self.client_write_key,
            &self.client_write_iv,
            self.client_to_server_seq,
        )
    }

    /// Record-protection state for writing the client→server flow.
    pub fn seal_client_to_server(&self) -> Result<DirectionState, TlsError> {
        self.open_client_to_server()
    }

    /// Record-protection state for reading the server→client flow.
    pub fn open_server_to_client(&self) -> Result<DirectionState, TlsError> {
        DirectionState::new(
            self.suite.bulk(),
            &self.server_write_key,
            &self.server_write_iv,
            self.server_to_client_seq,
        )
    }

    /// Record-protection state for writing the server→client flow.
    pub fn seal_server_to_client(&self) -> Result<DirectionState, TlsError> {
        self.open_server_to_client()
    }

    /// Wire encoding (the MBTLSKeyMaterial body, paper Appendix A.1:
    /// version, sequences, cipher suite, then key/IV material).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(3);
        e.u8(3); // negotiated client/server version
        e.u64(self.client_to_server_seq);
        e.u64(self.server_to_client_seq);
        e.u16(self.suite.id());
        e.u32(self.client_write_key.len() as u32);
        e.u32(self.client_write_iv.len() as u32);
        e.raw(&self.client_write_key);
        e.raw(&self.client_write_iv);
        e.raw(&self.server_write_key);
        e.raw(&self.server_write_iv);
        e.into_bytes()
    }

    /// Parse a wire encoding.
    pub fn decode(bytes: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(bytes);
        let major = d.u8()?;
        let minor = d.u8()?;
        if (major, minor) != (3, 3) {
            return Err(TlsError::Decode("bad key material version"));
        }
        let client_to_server_seq = d.u64()?;
        let server_to_client_seq = d.u64()?;
        let suite =
            CipherSuite::from_id(d.u16()?).ok_or(TlsError::Decode("unknown suite in key material"))?;
        let key_len = d.u32()? as usize;
        let iv_len = d.u32()? as usize;
        if key_len != suite.bulk().key_len() || iv_len != 4 {
            return Err(TlsError::Decode("key material length mismatch"));
        }
        let client_write_key = d.take(key_len)?.to_vec();
        let client_write_iv = d.take(iv_len)?.to_vec();
        let server_write_key = d.take(key_len)?.to_vec();
        let server_write_iv = d.take(iv_len)?.to_vec();
        d.expect_end()?;
        Ok(SessionKeys {
            suite,
            client_write_key,
            client_write_iv,
            server_write_key,
            server_write_iv,
            client_to_server_seq,
            server_to_client_seq,
        })
    }
}

impl Drop for SessionKeys {
    fn drop(&mut self) {
        self.wipe();
    }
}

/// What a client caches per server for resumption.
#[derive(Clone, PartialEq, Eq)]
pub struct ResumptionData {
    /// The suite of the original session.
    pub suite: CipherSuite,
    /// The original master secret.
    pub master_secret: Vec<u8>,
    /// Ticket issued by the server (RFC 5077), if any.
    pub ticket: Option<Vec<u8>>,
    /// Session id assigned by the server, if any.
    pub session_id: Vec<u8>,
}

impl ResumptionData {
    /// Zero the cached master secret in place (ticket and session id
    /// are server-issued opaque values, not key material). This is
    /// the routine [`Drop`] runs, exposed so callers can scrub early.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.master_secret);
    }
}

impl Drop for ResumptionData {
    fn drop(&mut self) {
        self.wipe();
    }
}

/// Server-side plaintext content of a session ticket. The server
/// seals this under its ticket key; the mbTLS variant additionally
/// carries the primary session's keys for middlebox resumption
/// (paper §3.5).
#[derive(Clone, PartialEq, Eq)]
pub struct TicketPlaintext {
    /// Suite of the ticketed session.
    pub suite: CipherSuite,
    /// Master secret of the ticketed session.
    pub master_secret: Vec<u8>,
    /// Optional embedded primary-session keys (mbTLS middlebox
    /// tickets; empty for ordinary tickets).
    pub primary_keys: Option<SessionKeys>,
}

impl TicketPlaintext {
    /// Encode for sealing.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(self.suite.id());
        e.vec16(&self.master_secret);
        match &self.primary_keys {
            Some(keys) => {
                e.u8(1);
                e.vec16(&keys.encode());
            }
            None => e.u8(0),
        }
        e.into_bytes()
    }

    /// Decode after unsealing.
    pub fn decode(bytes: &[u8]) -> Result<Self, TlsError> {
        let mut d = Decoder::new(bytes);
        let suite =
            CipherSuite::from_id(d.u16()?).ok_or(TlsError::Decode("unknown suite in ticket"))?;
        let master_secret = d.vec16()?.to_vec();
        let primary_keys = match d.u8()? {
            0 => None,
            1 => Some(SessionKeys::decode(d.vec16()?)?),
            _ => return Err(TlsError::Decode("bad ticket flag")),
        };
        d.expect_end()?;
        Ok(TicketPlaintext {
            suite,
            master_secret,
            primary_keys,
        })
    }

    /// Zero the embedded master secret in place (the optional primary
    /// keys zeroize themselves on drop). This is the routine [`Drop`]
    /// runs, exposed so callers can scrub early.
    pub fn wipe(&mut self) {
        ct::zeroize(&mut self.master_secret);
    }
}

impl Drop for TicketPlaintext {
    fn drop(&mut self) {
        self.wipe();
    }
}


// Redacted Debug impls: these structs carry live key material, so the
// derived formatter would leak it into logs and panic messages. Only
// public/structural fields are printed.

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionKeys(suite=0x{:04x}, c2s_seq={}, s2c_seq={}, ..)",
            self.suite.id(),
            self.client_to_server_seq,
            self.server_to_client_seq
        )
    }
}

impl std::fmt::Debug for ResumptionData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResumptionData(suite=0x{:04x}, ticket={}, session_id_len={}, ..)",
            self.suite.id(),
            self.ticket.is_some(),
            self.session_id.len()
        )
    }
}

impl std::fmt::Debug for TicketPlaintext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TicketPlaintext(suite=0x{:04x}, primary_keys={}, ..)",
            self.suite.id(),
            self.primary_keys.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_secrets() -> ConnectionSecrets {
        ConnectionSecrets {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![0x42; 48],
            client_random: [1; 32],
            server_random: [2; 32],
        }
    }

    #[test]
    fn session_keys_roundtrip() {
        let keys = SessionKeys::from_secrets(&sample_secrets(), 1, 1);
        let decoded = SessionKeys::decode(&keys.encode()).unwrap();
        assert_eq!(decoded, keys);
    }

    #[test]
    fn session_keys_decode_validates_lengths() {
        let keys = SessionKeys::from_secrets(&sample_secrets(), 0, 0);
        let mut bytes = keys.encode();
        bytes.truncate(bytes.len() - 1);
        assert!(SessionKeys::decode(&bytes).is_err());
    }

    #[test]
    fn exported_keys_can_protect_records() {
        let keys = SessionKeys::from_secrets(&sample_secrets(), 5, 9);
        let mut tx = keys.seal_client_to_server().unwrap();
        let mut rx = keys.open_client_to_server().unwrap();
        assert_eq!(tx.seq(), 5);
        let wire = tx
            .seal_record(crate::record::ContentType::ApplicationData, b"mid-session join")
            .unwrap();
        let mut rr = crate::record::RecordReader::new();
        rr.feed(&wire);
        let rec = rr.next_record().unwrap().unwrap();
        assert_eq!(
            rx.open_record(crate::record::ContentType::ApplicationData, &rec.body)
                .unwrap(),
            b"mid-session join"
        );
    }

    #[test]
    fn directions_use_distinct_keys() {
        let keys = SessionKeys::from_secrets(&sample_secrets(), 0, 0);
        assert_ne!(keys.client_write_key, keys.server_write_key);
        let mut c2s_tx = keys.seal_client_to_server().unwrap();
        let mut s2c_rx = keys.open_server_to_client().unwrap();
        let wire = c2s_tx
            .seal_record(crate::record::ContentType::ApplicationData, b"x")
            .unwrap();
        let mut rr = crate::record::RecordReader::new();
        rr.feed(&wire);
        let rec = rr.next_record().unwrap().unwrap();
        // Opening client→server traffic with the server-write state fails.
        assert!(s2c_rx
            .open_record(crate::record::ContentType::ApplicationData, &rec.body)
            .is_err());
    }

    #[test]
    fn ticket_roundtrip_with_and_without_primary_keys() {
        let plain = TicketPlaintext {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![7; 48],
            primary_keys: None,
        };
        assert_eq!(TicketPlaintext::decode(&plain.encode()).unwrap(), plain);

        let with_keys = TicketPlaintext {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![7; 48],
            primary_keys: Some(SessionKeys::from_secrets(&sample_secrets(), 3, 4)),
        };
        assert_eq!(TicketPlaintext::decode(&with_keys.encode()).unwrap(), with_keys);
    }
}

//! The TLS 1.2 client state machine (sans-IO).

use std::sync::Arc;

use mbtls_crypto::dh::{DhPublic, DhSecret};
use mbtls_crypto::rng::CryptoRng;
use mbtls_crypto::x25519;
use mbtls_crypto::{ct, CryptoError};
use mbtls_pki::cert::Certificate;
use mbtls_pki::delegation::{CredentialError, CredentialVerifier, DelegatedCredential};
use mbtls_pki::SignatureCheck;
use mbtls_sgx::Quote;

use crate::alert::{Alert, AlertDescription, AlertLevel};
use crate::config::ClientConfig;
use crate::keyschedule::{self, strip_leading_zeros};
use crate::messages::{
    choose_suite, extension_type, frame_handshake, handshake_type, ClientHello,
    ClientKeyExchange, DelegatedCredentialMsg, Extension, HandshakeReader, NewSessionTicket,
    ServerHello, ServerKeyExchange, ServerKeyExchangeParams, SgxAttestationMsg,
};
use crate::record::{ContentType, DirectionState, RecordReader, frame_plaintext, fragment};
use crate::session::{ConnectionSecrets, ResumptionData, SessionKeys};
use crate::suites::{CipherSuite, KeyExchange};
use crate::transcript::Transcript;
use crate::TlsError;

/// Client handshake phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// ClientHello queued; waiting for ServerHello.
    AwaitServerHello,
    /// Full handshake: collecting the server's first flight.
    AwaitServerFlight,
    /// Full handshake: flight sent, waiting for server CCS+Finished.
    AwaitServerFinished,
    /// Abbreviated handshake: waiting for server CCS+Finished first.
    AwaitServerFinishedResumed,
    /// Handshake complete.
    Established,
    /// Fatal error occurred.
    Failed,
}

/// A sans-IO TLS 1.2 client connection.
pub struct ClientConnection {
    config: Arc<ClientConfig>,
    server_name: String,
    phase: Phase,

    record_reader: RecordReader,
    hs_reader: HandshakeReader,
    out: Vec<u8>,

    transcript: Transcript,
    hello: ClientHello,
    client_random: [u8; 32],
    server_random: [u8; 32],

    suite: Option<CipherSuite>,
    secrets: Option<ConnectionSecrets>,

    peer_change_cipher_seen: bool,
    read_cipher: Option<DirectionState>,
    write_cipher: Option<DirectionState>,

    peer_extensions: Vec<Extension>,
    peer_chain: Vec<Certificate>,
    peer_quote: Option<Quote>,
    peer_credential: Option<DelegatedCredential>,
    server_flight: ServerFlight,

    new_ticket: Option<NewSessionTicket>,
    /// Session id the server assigned in a full handshake.
    assigned_session_id: Vec<u8>,
    offered_resumption: Option<ResumptionData>,
    /// Set after ServerHello when the server *might* be resuming;
    /// resolved by the next message (Certificate vs ticket/CCS).
    pending_resumption: Option<ResumptionData>,
    resumed: bool,
    false_started: bool,

    nonstandard_in: Vec<(u8, Vec<u8>)>,
    plaintext_in: Vec<u8>,
    error: Option<TlsError>,
    closed_by_peer: bool,

    /// Deferred signature checks (`ClientConfig::defer_verify`)
    /// collected during the server flight, awaiting pickup.
    pending_checks: Option<Vec<SignatureCheck>>,
    /// True while deferred checks exist whose verdict has not been
    /// delivered; gates `is_established`.
    verify_outstanding: bool,
}

/// Accumulates the server's first flight until ServerHelloDone.
#[derive(Default)]
struct ServerFlight {
    server_hello: Option<ServerHello>,
    certificate_chain: Option<Vec<Certificate>>,
    key_exchange: Option<ServerKeyExchange>,
    attestation: Option<SgxAttestationMsg>,
    credential: Option<DelegatedCredentialMsg>,
    /// Transcript bytes up to and including ServerKeyExchange — the
    /// state the attestation quote must bind (paper §3.4); a
    /// delegated credential's session nonce binds the same state.
    attestation_binding: Option<[u8; 64]>,
}

impl ClientConnection {
    /// Start a connection to `server_name`; the ClientHello is queued
    /// for sending immediately.
    pub fn new(config: Arc<ClientConfig>, server_name: &str, rng: &mut CryptoRng) -> Self {
        let hello = Self::build_hello(&config, server_name, rng);
        Self::with_hello(config, server_name, hello, true)
    }

    /// Start a connection that *reuses* an existing ClientHello (the
    /// mbTLS secondary-handshake trick: the primary ClientHello serves
    /// double duty, so the secondary connection must treat those exact
    /// bytes as its first message without re-sending them).
    pub fn with_reused_hello(
        config: Arc<ClientConfig>,
        server_name: &str,
        hello: ClientHello,
    ) -> Self {
        Self::with_hello(config, server_name, hello, false)
    }

    fn with_hello(
        config: Arc<ClientConfig>,
        server_name: &str,
        hello: ClientHello,
        send: bool,
    ) -> Self {
        let client_random = hello.random;
        let offered_resumption = config.resumption_cache.get(server_name).cloned();
        let frame = frame_handshake(handshake_type::CLIENT_HELLO, &hello.encode_body());
        let mut transcript = Transcript::new();
        transcript.add(&frame);
        let mut out = Vec::new();
        if send {
            out.extend_from_slice(&frame_plaintext(ContentType::Handshake, &frame));
        }
        ClientConnection {
            config,
            server_name: server_name.to_string(),
            phase: Phase::AwaitServerHello,
            record_reader: RecordReader::new(),
            hs_reader: HandshakeReader::new(),
            out,
            transcript,
            hello,
            client_random,
            server_random: [0; 32],
            suite: None,
            secrets: None,
            peer_change_cipher_seen: false,
            read_cipher: None,
            write_cipher: None,
            peer_extensions: Vec::new(),
            peer_chain: Vec::new(),
            peer_quote: None,
            peer_credential: None,
            server_flight: ServerFlight::default(),
            new_ticket: None,
            assigned_session_id: Vec::new(),
            offered_resumption,
            pending_resumption: None,
            resumed: false,
            false_started: false,
            nonstandard_in: Vec::new(),
            plaintext_in: Vec::new(),
            error: None,
            closed_by_peer: false,
            pending_checks: None,
            verify_outstanding: false,
        }
    }

    /// Build the ClientHello this config would send to `server_name`.
    /// Public so mbTLS can construct it once and share it between the
    /// primary and secondary connections.
    pub fn build_hello(
        config: &ClientConfig,
        server_name: &str,
        rng: &mut CryptoRng,
    ) -> ClientHello {
        let mut extensions = config.extra_extensions.clone();
        let cached = config.resumption_cache.get(server_name);
        if config.enable_tickets {
            let ticket_bytes = cached
                .and_then(|r| r.ticket.clone())
                .unwrap_or_default();
            extensions.push(Extension {
                typ: extension_type::SESSION_TICKET,
                data: ticket_bytes,
            });
        }
        if config.attestation_policy.is_some() {
            extensions.push(Extension {
                typ: extension_type::ATTESTATION_REQUEST,
                data: vec![1],
            });
        }
        if config.delegation_policy.is_some() {
            extensions.push(Extension {
                typ: extension_type::DELEGATION_REQUEST,
                data: vec![1],
            });
        }
        let session_id = cached.map(|r| r.session_id.clone()).unwrap_or_default();
        ClientHello {
            random: rng.gen_array(),
            session_id,
            cipher_suites: config.suites.iter().map(|s| s.id()).collect(),
            extensions,
        }
    }

    /// The ClientHello this connection sent (mbTLS shares it with
    /// secondary connections).
    pub fn hello(&self) -> &ClientHello {
        &self.hello
    }

    /// Bytes queued for the wire; call after every feed/send.
    pub fn take_outgoing(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// True once the handshake completed — including resolution of
    /// any deferred signature checks.
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Established && !self.verify_outstanding
    }

    /// Deferred signature checks collected under
    /// `ClientConfig::defer_verify` (certificate chain +
    /// ServerKeyExchange signature). Taking them obliges the caller
    /// to deliver a verdict via
    /// [`ClientConnection::resolve_verify`]; until then the
    /// connection does not report established.
    pub fn take_pending_verify(&mut self) -> Option<Vec<SignatureCheck>> {
        self.pending_checks.take()
    }

    /// Deliver the verdict for checks taken with
    /// [`ClientConnection::take_pending_verify`]: `true` (every check
    /// passed) unblocks establishment; `false` fails the connection
    /// with a bad-signature error. A no-op when nothing is
    /// outstanding.
    pub fn resolve_verify(&mut self, valid: bool) {
        if !self.verify_outstanding {
            return;
        }
        self.verify_outstanding = false;
        self.pending_checks = None;
        if !valid {
            self.fail(TlsError::Crypto(CryptoError::BadSignature));
        }
    }

    /// True while deferred signature checks are unresolved.
    pub fn verify_outstanding(&self) -> bool {
        self.verify_outstanding
    }

    /// True if the connection failed fatally.
    pub fn is_failed(&self) -> bool {
        self.phase == Phase::Failed
    }

    /// The error that failed the connection, if any.
    pub fn error(&self) -> Option<&TlsError> {
        self.error.as_ref()
    }

    /// Did this handshake resume a cached session?
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Extensions the server echoed in its ServerHello.
    pub fn peer_extensions(&self) -> &[Extension] {
        &self.peer_extensions
    }

    /// The server's certificate chain (empty until received).
    pub fn peer_certificates(&self) -> &[Certificate] {
        &self.peer_chain
    }

    /// The verified attestation quote, if the server attested.
    pub fn peer_quote(&self) -> Option<&Quote> {
        self.peer_quote.as_ref()
    }

    /// The verified delegated credential, if the peer authorized via
    /// delegation (`ClientConfig::delegation_policy`).
    pub fn peer_credential(&self) -> Option<&DelegatedCredential> {
        self.peer_credential.as_ref()
    }

    /// Ticket issued this session (store for resumption).
    pub fn issued_ticket(&self) -> Option<&NewSessionTicket> {
        self.new_ticket.as_ref()
    }

    /// Resumption data to cache for the next connection to this
    /// server (available once established).
    pub fn resumption_data(&self) -> Option<ResumptionData> {
        let secrets = self.secrets.as_ref()?;
        if !self.is_established() {
            return None;
        }
        Some(ResumptionData {
            suite: secrets.suite,
            master_secret: secrets.master_secret.clone(),
            ticket: self.new_ticket.as_ref().map(|t| t.ticket.clone()),
            session_id: self.assigned_session_id.clone(),
        })
    }

    /// The negotiated secrets (available once the key exchange is
    /// done; mbTLS uses this to derive per-hop key material).
    pub fn secrets(&self) -> Option<&ConnectionSecrets> {
        self.secrets.as_ref()
    }

    /// Export the session keys and current sequence numbers — what an
    /// mbTLS endpoint hands to its middleboxes for the bridge hop.
    pub fn export_session_keys(&self) -> Option<SessionKeys> {
        let secrets = self.secrets.as_ref()?;
        let c2s = self.write_cipher.as_ref()?.seq();
        let s2c = self.read_cipher.as_ref()?.seq();
        Some(SessionKeys::from_secrets(secrets, c2s, s2c))
    }

    /// Queue application data (fragmenting as needed). Requires an
    /// established session, or — with False Start enabled — a sent
    /// client Finished.
    pub fn send_data(&mut self, data: &[u8]) -> Result<(), TlsError> {
        let can_send = self.is_established()
            || (self.config.enable_false_start
                && matches!(self.phase, Phase::AwaitServerFinished)
                && !self.verify_outstanding
                && self.write_cipher.is_some());
        if !can_send {
            return Err(TlsError::HandshakeNotDone);
        }
        if !self.is_established() {
            self.false_started = true;
        }
        for frag in fragment(data) {
            let cipher = self
                .write_cipher
                .as_mut()
                .ok_or(TlsError::Internal("write cipher active but missing"))?;
            let rec = cipher.seal_record(ContentType::ApplicationData, frag)?;
            self.out.extend_from_slice(&rec);
        }
        Ok(())
    }

    /// Received application data.
    pub fn take_plaintext(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.plaintext_in)
    }

    /// Records with non-standard content types received (mbTLS
    /// subchannel records land here).
    pub fn take_nonstandard_records(&mut self) -> Vec<(u8, Vec<u8>)> {
        std::mem::take(&mut self.nonstandard_in)
    }

    /// Send a raw plaintext-framed record of the given content type
    /// (mbTLS Encapsulated / KeyMaterial records).
    pub fn send_raw_record(&mut self, content_type: ContentType, payload: &[u8]) {
        self.out
            .extend_from_slice(&frame_plaintext(content_type, payload));
    }

    /// True if the peer sent close_notify.
    pub fn peer_closed(&self) -> bool {
        self.closed_by_peer
    }

    /// Feed bytes from the wire; processes as many records as
    /// possible. On error the connection moves to Failed and a fatal
    /// alert is queued.
    pub fn feed_incoming(&mut self, data: &[u8], rng: &mut CryptoRng) -> Result<(), TlsError> {
        if self.phase == Phase::Failed {
            return Err(self.error.clone().unwrap_or(TlsError::Closed));
        }
        self.record_reader.feed(data);
        loop {
            match self.record_reader.next_record() {
                Ok(Some(record)) => {
                    if let Err(e) = self.process_record(record.content_type_byte, record.body, rng)
                    {
                        self.fail(e.clone());
                        return Err(e);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.fail(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn fail(&mut self, e: TlsError) {
        if self.phase != Phase::Failed {
            let alert = Alert::for_error(&e);
            self.out
                .extend_from_slice(&frame_plaintext(ContentType::Alert, &alert.encode()));
            self.phase = Phase::Failed;
            self.error = Some(e);
        }
    }

    fn process_record(
        &mut self,
        ct_byte: u8,
        body: Vec<u8>,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        let Some(content_type) = ContentType::from_u8(ct_byte) else {
            // Unknown content type: surface to the caller (tolerant
            // behaviour; mbTLS relies on this).
            self.nonstandard_in.push((ct_byte, body));
            return Ok(());
        };
        if content_type.is_mbtls() {
            self.nonstandard_in.push((ct_byte, body));
            return Ok(());
        }
        // Decrypt if the peer has activated its cipher.
        let payload = if self.peer_change_cipher_seen
            && content_type != ContentType::ChangeCipherSpec
        {
            self.read_cipher
                .as_mut()
                .ok_or(TlsError::UnexpectedMessage("ciphertext before keys"))?
                .open_record(content_type, &body)?
        } else {
            body
        };
        match content_type {
            ContentType::Alert => self.handle_alert(&payload),
            ContentType::ChangeCipherSpec => {
                if payload != [1] {
                    return Err(TlsError::Decode("bad ChangeCipherSpec"));
                }
                if self.hs_reader.has_partial() {
                    return Err(TlsError::UnexpectedMessage("CCS mid-handshake-message"));
                }
                self.activate_read_cipher()?;
                Ok(())
            }
            ContentType::Handshake => {
                self.hs_reader.feed(&payload);
                while let Some((typ, msg_body, frame)) = self.hs_reader.next_message()? {
                    self.handle_handshake(typ, msg_body, frame, rng)?;
                }
                Ok(())
            }
            ContentType::ApplicationData => {
                if !self.is_established() {
                    return Err(TlsError::UnexpectedMessage("early application data"));
                }
                self.plaintext_in.extend_from_slice(&payload);
                Ok(())
            }
            _ => Err(TlsError::Internal("content type handled in an earlier match arm")),
        }
    }

    fn handle_alert(&mut self, payload: &[u8]) -> Result<(), TlsError> {
        let alert = Alert::decode(payload)?;
        if alert.description == AlertDescription::CloseNotify {
            self.closed_by_peer = true;
            return Ok(());
        }
        if alert.level == AlertLevel::Fatal {
            return Err(TlsError::PeerAlert(alert.description));
        }
        Ok(())
    }

    /// Commit to the abbreviated handshake path: the server resumed
    /// our cached session (signalled by sending NewSessionTicket or
    /// ChangeCipherSpec straight after ServerHello).
    fn commit_resumption(&mut self) -> Result<(), TlsError> {
        if self.resumed {
            return Ok(());
        }
        let mut res = self
            .pending_resumption
            .take()
            .ok_or(TlsError::UnexpectedMessage("abbreviated flight without offer"))?;
        let suite = self
            .suite
            .ok_or(TlsError::Internal("suite chosen with ServerHello"))?;
        self.secrets = Some(ConnectionSecrets {
            suite,
            // `ResumptionData` zeroizes on drop, so the secret cannot
            // be moved out of it; take-and-replace transfers the
            // buffer and leaves an empty vec for `res` to wipe.
            master_secret: std::mem::take(&mut res.master_secret),
            client_random: self.client_random,
            server_random: self.server_random,
        });
        self.resumed = true;
        Ok(())
    }

    fn activate_read_cipher(&mut self) -> Result<(), TlsError> {
        // CCS right after ServerHello is the resumption signal when a
        // ticket/id was offered and no full-handshake flight arrived.
        if self.secrets.is_none()
            && self.phase == Phase::AwaitServerFlight
            && self.pending_resumption.is_some()
        {
            self.commit_resumption()?;
            self.phase = Phase::AwaitServerFinishedResumed;
        }
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::UnexpectedMessage("CCS before key exchange"))?;
        let kb = secrets.key_block();
        self.read_cipher = Some(DirectionState::new(
            secrets.suite.bulk(),
            &kb.server_write_key,
            &kb.server_write_iv,
            0,
        )?);
        self.peer_change_cipher_seen = true;
        Ok(())
    }

    fn activate_write_cipher(&mut self) -> Result<(), TlsError> {
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::UnexpectedMessage("no secrets for write cipher"))?;
        let kb = secrets.key_block();
        self.write_cipher = Some(DirectionState::new(
            secrets.suite.bulk(),
            &kb.client_write_key,
            &kb.client_write_iv,
            0,
        )?);
        Ok(())
    }

    fn handle_handshake(
        &mut self,
        typ: u8,
        body: Vec<u8>,
        frame: Vec<u8>,
        rng: &mut CryptoRng,
    ) -> Result<(), TlsError> {
        match (self.phase, typ) {
            (Phase::AwaitServerHello, handshake_type::SERVER_HELLO) => {
                self.transcript.add(&frame);
                let sh = ServerHello::decode_body(&body)?;
                let suite = CipherSuite::from_id(sh.cipher_suite)
                    .filter(|s| self.config.suites.contains(s))
                    .ok_or(TlsError::NegotiationFailed("server chose unknown suite"))?;
                if choose_suite(&self.hello.cipher_suites, &[suite]).is_none() {
                    return Err(TlsError::NegotiationFailed("suite not offered"));
                }
                self.server_random = sh.random;
                self.peer_extensions = sh.extensions.clone();
                self.suite = Some(suite);

                // Resumption: the server echoing our SessionTicket
                // extension (or session id) is *not* a commitment to
                // resume — RFC 5077 servers echo it on full handshakes
                // too, to signal a ticket will be issued. The client
                // learns the server's choice from the next message:
                // Certificate → full handshake; NewSessionTicket/CCS →
                // abbreviated. Record the possibility and defer.
                let offered = self.offered_resumption.clone();
                let id_match = !self.hello.session_id.is_empty()
                    && sh.session_id == self.hello.session_id;
                let ticket_offered = offered.as_ref().is_some_and(|r| r.ticket.is_some());
                self.pending_resumption =
                    offered.filter(|r| (id_match || ticket_offered) && r.suite == suite);
                // A *new* session id (not an echo of ours) is the
                // server offering ID-based resumption for next time.
                if !id_match {
                    self.assigned_session_id = sh.session_id.clone();
                }
                self.server_flight.server_hello = Some(sh);
                self.phase = Phase::AwaitServerFlight;
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::CERTIFICATE) => {
                // The server chose a full handshake.
                self.pending_resumption = None;
                self.transcript.add(&frame);
                let chain = mbtls_pki::cert::decode_chain(&body)
                    .map_err(|_| TlsError::Decode("bad certificate chain"))?;
                self.server_flight.certificate_chain = Some(chain);
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::NEW_SESSION_TICKET) => {
                // A ticket this early means the server resumed and is
                // renewing the ticket (abbreviated flight:
                // ServerHello, NewSessionTicket, CCS, Finished).
                self.commit_resumption()?;
                self.transcript.add(&frame);
                let ticket = NewSessionTicket::decode_body(&body)?;
                self.new_ticket = Some(ticket);
                self.phase = Phase::AwaitServerFinishedResumed;
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::SERVER_KEY_EXCHANGE) => {
                self.transcript.add(&frame);
                let ske = ServerKeyExchange::decode_body(&body)?;
                self.server_flight.key_exchange = Some(ske);
                // Capture the binding the attestation must carry.
                self.server_flight.attestation_binding =
                    Some(self.transcript.attestation_binding());
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::SGX_ATTESTATION) => {
                self.transcript.add(&frame);
                let msg = SgxAttestationMsg::decode_body(&body)?;
                self.server_flight.attestation = Some(msg);
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::DELEGATED_CREDENTIAL) => {
                self.transcript.add(&frame);
                let msg = DelegatedCredentialMsg::decode_body(&body)?;
                self.server_flight.credential = Some(msg);
                Ok(())
            }
            (Phase::AwaitServerFlight, handshake_type::SERVER_HELLO_DONE) => {
                if !body.is_empty() {
                    return Err(TlsError::Decode("non-empty ServerHelloDone"));
                }
                self.transcript.add(&frame);
                self.finish_client_flight(rng)
            }
            (
                Phase::AwaitServerFinished | Phase::AwaitServerFinishedResumed,
                handshake_type::NEW_SESSION_TICKET,
            ) => {
                self.transcript.add(&frame);
                let ticket = NewSessionTicket::decode_body(&body)?;
                self.new_ticket = Some(ticket);
                Ok(())
            }
            (Phase::AwaitServerFinished, handshake_type::FINISHED) => {
                self.verify_server_finished(&body, &frame)?;
                self.phase = Phase::Established;
                Ok(())
            }
            (Phase::AwaitServerFinishedResumed, handshake_type::FINISHED) => {
                self.verify_server_finished(&body, &frame)?;
                // Abbreviated: now send our CCS + Finished.
                self.activate_write_cipher()?;
                self.out
                    .extend_from_slice(&frame_plaintext(ContentType::ChangeCipherSpec, &[1]));
                let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::Internal("secrets derived before Finished"))?;
                let vd = keyschedule::verify_data(
                    secrets.suite,
                    &secrets.master_secret,
                    b"client finished",
                    self.transcript.bytes(),
                );
                let fin = frame_handshake(handshake_type::FINISHED, &vd);
                self.transcript.add(&fin);
                let rec = self
                    .write_cipher
                    .as_mut()
                    .ok_or(TlsError::Internal("write cipher activated above"))?
                    .seal_record(ContentType::Handshake, &fin)?;
                self.out.extend_from_slice(&rec);
                self.phase = Phase::Established;
                Ok(())
            }
            _ => Err(TlsError::UnexpectedMessage("handshake message out of order")),
        }
    }

    /// Process the complete server flight and send the client's
    /// second flight (CKE, CCS, Finished).
    fn finish_client_flight(&mut self, rng: &mut CryptoRng) -> Result<(), TlsError> {
        let suite = self.suite.ok_or(TlsError::Internal("suite chosen"))?;
        let chain = self
            .server_flight
            .certificate_chain
            .take()
            .ok_or(TlsError::UnexpectedMessage("missing Certificate"))?;
        let ske = self
            .server_flight
            .key_exchange
            .take()
            .ok_or(TlsError::UnexpectedMessage("missing ServerKeyExchange"))?;

        // 1. Peer identity. Two shapes: a certificate chain for the
        // peer's own key (the default), or — under a delegation
        // policy — an endpoint-signed credential naming the peer's
        // key, in which case the presented chain may be empty and the
        // credential *is* the identity (DESIGN.md §6j). Under
        // `defer_verify` the structural checks still run (and fail)
        // inline; only the Ed25519 signature work is collected for
        // the driver to discharge.
        let mut deferred: Vec<SignatureCheck> = Vec::new();
        let server_key = if let Some(policy) = &self.config.delegation_policy {
            let msg = self
                .server_flight
                .credential
                .take()
                .ok_or(TlsError::UnexpectedMessage("delegated credential required but absent"))?;
            let issuer_chain = mbtls_pki::cert::decode_chain(&msg.issuer_chain)
                .map_err(|_| TlsError::Decode("bad credential issuer chain"))?;
            let cred =
                DelegatedCredential::decode(&msg.credential).map_err(TlsError::Credential)?;
            let binding = self
                .server_flight
                .attestation_binding
                .ok_or(TlsError::UnexpectedMessage("credential before key exchange"))?;
            let mut nonce = [0u8; 32];
            nonce.copy_from_slice(&binding[..32]);
            let verifier = CredentialVerifier {
                trust: &policy.trust_store,
                expected_issuer: &policy.issuer,
                now: self.config.current_time,
                session_nonce: nonce,
                required_role: policy.required_role,
            };
            let checks = verifier
                .verify_deferred(&issuer_chain, &cred)
                .map_err(TlsError::Credential)?;
            if self.config.defer_verify {
                deferred.extend(checks);
            } else if !checks.iter().all(|c| c.check()) {
                return Err(TlsError::Credential(CredentialError::BadSignature));
            }
            let key = cred.middlebox_key;
            self.peer_credential = Some(cred);
            key
        } else {
            if !self.config.danger_disable_cert_verify {
                if self.config.defer_verify {
                    deferred = self.config.trust_store.verify_chain_deferred(
                        &chain,
                        &self.server_name,
                        self.config.current_time,
                        None,
                    )?;
                } else {
                    self.config.trust_store.verify_chain(
                        &chain,
                        &self.server_name,
                        self.config.current_time,
                        None,
                    )?;
                }
            }
            chain
                .first()
                .ok_or(TlsError::Certificate(mbtls_pki::CertError::EmptyChain))?
                .payload
                .public_key
        };

        // 2. ServerKeyExchange signature.
        let signed =
            ServerKeyExchange::signed_payload(&self.client_random, &self.server_random, &ske.params);
        let sig = mbtls_crypto::ed25519::Signature::from_bytes(&ske.signature)
            .map_err(|_| TlsError::Decode("bad signature encoding"))?;
        if self.config.defer_verify {
            deferred.push(SignatureCheck {
                key: server_key,
                msg: signed,
                sig,
            });
        } else {
            server_key
                .verify(&signed, &sig)
                .map_err(|_| TlsError::Crypto(CryptoError::BadSignature))?;
        }
        if !deferred.is_empty() {
            self.pending_checks = Some(deferred);
            self.verify_outstanding = true;
        }

        // 3. Attestation, if required.
        if let Some(policy) = &self.config.attestation_policy {
            let msg = self
                .server_flight
                .attestation
                .take()
                .ok_or(TlsError::UnexpectedMessage("attestation required but absent"))?;
            let quote = Quote::decode(&msg.quote).ok_or(TlsError::Decode("bad quote"))?;
            let binding = self
                .server_flight
                .attestation_binding
                .ok_or(TlsError::UnexpectedMessage("attestation before key exchange"))?;
            quote.verify(&policy.root, &policy.acceptable, &binding)?;
            self.peer_quote = Some(quote);
        }
        self.peer_chain = chain;

        // 4. Key exchange.
        let (cke_public, pre_master): (Vec<u8>, Vec<u8>) = match (&ske.params, suite.key_exchange())
        {
            (ServerKeyExchangeParams::Ecdhe { public }, KeyExchange::Ecdhe) => {
                let server_pub = x25519::PublicKey(
                    public
                        .as_slice()
                        .try_into()
                        .map_err(|_| TlsError::Decode("bad x25519 point"))?,
                );
                let secret = x25519::SecretKey::generate(rng);
                let shared = secret.diffie_hellman(&server_pub)?;
                let my_pub = secret.public_key().0.to_vec();
                (my_pub, shared.to_vec())
            }
            (ServerKeyExchangeParams::Dhe { p, g, ys }, KeyExchange::Dhe) => {
                // Validate the group is the one we support.
                if *p != mbtls_crypto::dh::prime().to_bytes_be_padded(256)
                    || mbtls_crypto::bignum::BigUint::from_bytes_be(g)
                        .cmp_val(&mbtls_crypto::dh::generator())
                        != std::cmp::Ordering::Equal
                {
                    return Err(TlsError::NegotiationFailed("unexpected DH group"));
                }
                let secret = DhSecret::generate(rng);
                let mut ys_padded = vec![0u8; 256usize.saturating_sub(ys.len())];
                ys_padded.extend_from_slice(ys);
                let shared = secret.diffie_hellman(&DhPublic(ys_padded))?;
                let my_pub = secret.public_value().0;
                (my_pub, strip_leading_zeros(&shared).to_vec())
            }
            _ => return Err(TlsError::NegotiationFailed("kex/suite mismatch")),
        };

        let master =
            keyschedule::master_secret(suite, &pre_master, &self.client_random, &self.server_random);
        self.secrets = Some(ConnectionSecrets {
            suite,
            master_secret: master,
            client_random: self.client_random,
            server_random: self.server_random,
        });

        // 5. Send ClientKeyExchange + CCS + Finished.
        let cke = ClientKeyExchange { public: cke_public };
        let cke_frame = frame_handshake(handshake_type::CLIENT_KEY_EXCHANGE, &cke.encode_body());
        self.transcript.add(&cke_frame);
        self.out
            .extend_from_slice(&frame_plaintext(ContentType::Handshake, &cke_frame));

        self.out
            .extend_from_slice(&frame_plaintext(ContentType::ChangeCipherSpec, &[1]));
        self.activate_write_cipher()?;

        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::Internal("secrets derived before Finished"))?;
        let vd = keyschedule::verify_data(
            suite,
            &secrets.master_secret,
            b"client finished",
            self.transcript.bytes(),
        );
        let fin_frame = frame_handshake(handshake_type::FINISHED, &vd);
        self.transcript.add(&fin_frame);
        let rec = self
            .write_cipher
            .as_mut()
            .ok_or(TlsError::Internal("write cipher activated above"))?
            .seal_record(ContentType::Handshake, &fin_frame)?;
        self.out.extend_from_slice(&rec);

        self.phase = Phase::AwaitServerFinished;
        Ok(())
    }

    fn verify_server_finished(&mut self, body: &[u8], frame: &[u8]) -> Result<(), TlsError> {
        let secrets = self
            .secrets
            .as_ref()
            .ok_or(TlsError::UnexpectedMessage("Finished before keys"))?;
        let expected = keyschedule::verify_data(
            secrets.suite,
            &secrets.master_secret,
            b"server finished",
            self.transcript.bytes(),
        );
        if !ct::eq(&expected, body) {
            return Err(TlsError::Crypto(CryptoError::BadTag));
        }
        self.transcript.add(frame);
        Ok(())
    }
}

//! TLS alerts (RFC 5246 §7.2).

use crate::codec::{Decoder, Encoder};
use crate::TlsError;

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertLevel {
    /// warning(1)
    Warning,
    /// fatal(2)
    Fatal,
}

/// Alert descriptions (the subset this stack emits or interprets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertDescription {
    /// close_notify(0)
    CloseNotify,
    /// unexpected_message(10)
    UnexpectedMessage,
    /// bad_record_mac(20)
    BadRecordMac,
    /// handshake_failure(40)
    HandshakeFailure,
    /// bad_certificate(42)
    BadCertificate,
    /// certificate_expired(45)
    CertificateExpired,
    /// certificate_unknown(46)
    CertificateUnknown,
    /// illegal_parameter(47)
    IllegalParameter,
    /// unknown_ca(48)
    UnknownCa,
    /// decode_error(50)
    DecodeError,
    /// decrypt_error(51)
    DecryptError,
    /// protocol_version(70)
    ProtocolVersion,
    /// internal_error(80)
    InternalError,
    /// Any description byte we do not model.
    Unknown(u8),
}

impl AlertLevel {
    fn to_u8(self) -> u8 {
        match self {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(AlertLevel::Warning),
            2 => Some(AlertLevel::Fatal),
            _ => None,
        }
    }
}

impl AlertDescription {
    fn to_u8(self) -> u8 {
        match self {
            AlertDescription::CloseNotify => 0,
            AlertDescription::UnexpectedMessage => 10,
            AlertDescription::BadRecordMac => 20,
            AlertDescription::HandshakeFailure => 40,
            AlertDescription::BadCertificate => 42,
            AlertDescription::CertificateExpired => 45,
            AlertDescription::CertificateUnknown => 46,
            AlertDescription::IllegalParameter => 47,
            AlertDescription::UnknownCa => 48,
            AlertDescription::DecodeError => 50,
            AlertDescription::DecryptError => 51,
            AlertDescription::ProtocolVersion => 70,
            AlertDescription::InternalError => 80,
            AlertDescription::Unknown(v) => v,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => AlertDescription::CloseNotify,
            10 => AlertDescription::UnexpectedMessage,
            20 => AlertDescription::BadRecordMac,
            40 => AlertDescription::HandshakeFailure,
            42 => AlertDescription::BadCertificate,
            45 => AlertDescription::CertificateExpired,
            46 => AlertDescription::CertificateUnknown,
            47 => AlertDescription::IllegalParameter,
            48 => AlertDescription::UnknownCa,
            50 => AlertDescription::DecodeError,
            51 => AlertDescription::DecryptError,
            70 => AlertDescription::ProtocolVersion,
            80 => AlertDescription::InternalError,
            other => AlertDescription::Unknown(other),
        }
    }
}

impl std::fmt::Display for AlertDescription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AlertDescription::CloseNotify => "close_notify",
            AlertDescription::UnexpectedMessage => "unexpected_message",
            AlertDescription::BadRecordMac => "bad_record_mac",
            AlertDescription::HandshakeFailure => "handshake_failure",
            AlertDescription::BadCertificate => "bad_certificate",
            AlertDescription::CertificateExpired => "certificate_expired",
            AlertDescription::CertificateUnknown => "certificate_unknown",
            AlertDescription::IllegalParameter => "illegal_parameter",
            AlertDescription::UnknownCa => "unknown_ca",
            AlertDescription::DecodeError => "decode_error",
            AlertDescription::DecryptError => "decrypt_error",
            AlertDescription::ProtocolVersion => "protocol_version",
            AlertDescription::InternalError => "internal_error",
            AlertDescription::Unknown(v) => return write!(f, "unknown_alert({v})"),
        };
        f.write_str(name)
    }
}

/// A parsed alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// What happened.
    pub description: AlertDescription,
}

impl Alert {
    /// A fatal alert.
    pub fn fatal(description: AlertDescription) -> Self {
        Alert {
            level: AlertLevel::Fatal,
            description,
        }
    }

    /// The warning-level close_notify.
    pub fn close_notify() -> Self {
        Alert {
            level: AlertLevel::Warning,
            description: AlertDescription::CloseNotify,
        }
    }

    /// Encode the 2-byte alert payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(self.level.to_u8());
        e.u8(self.description.to_u8());
        e.into_bytes()
    }

    /// Parse an alert payload.
    pub fn decode(payload: &[u8]) -> Result<Alert, TlsError> {
        let mut d = Decoder::new(payload);
        let level =
            AlertLevel::from_u8(d.u8()?).ok_or(TlsError::Decode("bad alert level"))?;
        let description = AlertDescription::from_u8(d.u8()?);
        d.expect_end()?;
        Ok(Alert { level, description })
    }

    /// Pick an alert appropriate for an error we generated.
    pub fn for_error(err: &TlsError) -> Alert {
        let description = match err {
            TlsError::Decode(_) => AlertDescription::DecodeError,
            TlsError::Crypto(mbtls_crypto::CryptoError::BadTag) => AlertDescription::BadRecordMac,
            TlsError::Crypto(_) => AlertDescription::DecryptError,
            TlsError::Certificate(mbtls_pki::CertError::Expired) => {
                AlertDescription::CertificateExpired
            }
            TlsError::Certificate(mbtls_pki::CertError::UnknownIssuer) => {
                AlertDescription::UnknownCa
            }
            TlsError::Certificate(_) => AlertDescription::BadCertificate,
            TlsError::Attestation(_) => AlertDescription::BadCertificate,
            TlsError::UnexpectedMessage(_) => AlertDescription::UnexpectedMessage,
            TlsError::NegotiationFailed(_) => AlertDescription::HandshakeFailure,
            _ => AlertDescription::InternalError,
        };
        Alert::fatal(description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for alert in [
            Alert::close_notify(),
            Alert::fatal(AlertDescription::BadRecordMac),
            Alert::fatal(AlertDescription::Unknown(123)),
        ] {
            assert_eq!(Alert::decode(&alert.encode()).unwrap(), alert);
        }
    }

    #[test]
    fn bad_payloads_rejected() {
        assert!(Alert::decode(&[]).is_err());
        assert!(Alert::decode(&[1]).is_err());
        assert!(Alert::decode(&[9, 0]).is_err());
        assert!(Alert::decode(&[1, 0, 0]).is_err());
    }

    #[test]
    fn error_mapping() {
        assert_eq!(
            Alert::for_error(&TlsError::Decode("x")).description,
            AlertDescription::DecodeError
        );
        assert_eq!(
            Alert::for_error(&TlsError::Crypto(mbtls_crypto::CryptoError::BadTag)).description,
            AlertDescription::BadRecordMac
        );
        assert_eq!(
            Alert::for_error(&TlsError::Certificate(mbtls_pki::CertError::Expired)).description,
            AlertDescription::CertificateExpired
        );
    }
}

//! The running handshake transcript.
//!
//! Kept as raw bytes rather than an incremental hash because (a) the
//! PRF hash is only known after negotiation, and (b) mbTLS binds
//! attestations to intermediate transcript states (paper §3.4), so
//! arbitrary-point hashing has to be cheap and explicit.

use mbtls_crypto::sha2::Sha256;

/// The accumulated handshake messages (full frames, header included),
/// in order, excluding HelloRequest and the Finished of the *other*
/// side where the spec says so.
#[derive(Default, Clone)]
pub struct Transcript {
    data: Vec<u8>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a complete handshake frame.
    pub fn add(&mut self, frame: &[u8]) {
        self.data.extend_from_slice(frame);
    }

    /// The raw bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// SHA-256 of the transcript so far, truncated/padded to 64 bytes
    /// — the report-data binding mbTLS puts in attestation quotes
    /// (the quote's REPORTDATA field is 64 bytes; we place the 32-byte
    /// hash in the first half, zeros in the second).
    pub fn attestation_binding(&self) -> [u8; 64] {
        let digest = Sha256::digest(&self.data);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&digest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_in_order() {
        let mut t = Transcript::new();
        t.add(b"one");
        t.add(b"two");
        assert_eq!(t.bytes(), b"onetwo");
    }

    #[test]
    fn binding_changes_with_content() {
        let mut t1 = Transcript::new();
        t1.add(b"hello-a");
        let mut t2 = Transcript::new();
        t2.add(b"hello-b");
        assert_ne!(t1.attestation_binding(), t2.attestation_binding());
        // Deterministic.
        assert_eq!(t1.attestation_binding(), t1.attestation_binding());
        // Upper half zero-padded.
        assert_eq!(&t1.attestation_binding()[32..], &[0u8; 32]);
    }

    #[test]
    fn binding_changes_as_handshake_progresses() {
        let mut t = Transcript::new();
        t.add(b"client hello");
        let b1 = t.attestation_binding();
        t.add(b"server hello");
        let b2 = t.attestation_binding();
        assert_ne!(b1, b2);
    }
}

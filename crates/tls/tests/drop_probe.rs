//! Secret-lifecycle probes: every secret-bearing TLS type must scrub
//! its key bytes when dropped.
//!
//! Each probe drives the type's public `wipe()` — the exact routine
//! its `Drop` impl runs — through `ct::assert_wipes`, which also
//! asserts the type actually has a destructor (`needs_drop`), so
//! deleting an `impl Drop` fails these tests even though `wipe()`
//! still compiles. The proptests then exercise the move-out refactor:
//! `SessionKeys::from_secrets` transfers buffers out of a `KeyBlock`
//! with take-and-replace, and decode error paths must neither panic
//! nor double-free on corrupted encodings.

use mbtls_crypto::ct::assert_wipes;
use mbtls_tls::keyschedule::{key_block, KeyBlock};
use mbtls_tls::session::{ConnectionSecrets, ResumptionData, SessionKeys, TicketPlaintext};
use mbtls_tls::suites::CipherSuite;
use proptest::prelude::*;

fn sample_secrets(fill: u8) -> ConnectionSecrets {
    ConnectionSecrets {
        suite: CipherSuite::EcdheAes256GcmSha384,
        master_secret: vec![fill; 48],
        client_random: [1; 32],
        server_random: [2; 32],
    }
}

#[test]
fn session_keys_zero_on_drop() {
    assert_wipes(
        SessionKeys::from_secrets(&sample_secrets(0x42), 3, 4),
        SessionKeys::wipe,
        |k| {
            vec![
                k.client_write_key.clone(),
                k.client_write_iv.clone(),
                k.server_write_key.clone(),
                k.server_write_iv.clone(),
            ]
        },
    );
}

#[test]
fn key_block_zeroes_on_drop() {
    let s = sample_secrets(0x17);
    assert_wipes(
        key_block(s.suite, &s.master_secret, &s.client_random, &s.server_random),
        KeyBlock::wipe,
        |kb| {
            vec![
                kb.client_write_key.clone(),
                kb.server_write_key.clone(),
                kb.client_write_iv.clone(),
                kb.server_write_iv.clone(),
            ]
        },
    );
}

#[test]
fn connection_secrets_zero_on_drop() {
    assert_wipes(sample_secrets(0x99), ConnectionSecrets::wipe, |s| {
        vec![s.master_secret.clone()]
    });
}

#[test]
fn resumption_data_zeroes_on_drop() {
    assert_wipes(
        ResumptionData {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![0x55; 48],
            ticket: Some(vec![9; 16]),
            session_id: vec![3; 32],
        },
        ResumptionData::wipe,
        |r| vec![r.master_secret.clone()],
    );
}

#[test]
fn ticket_plaintext_zeroes_on_drop() {
    assert_wipes(
        TicketPlaintext {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![0x77; 48],
            primary_keys: Some(SessionKeys::from_secrets(&sample_secrets(0x11), 0, 0)),
        },
        TicketPlaintext::wipe,
        |t| vec![t.master_secret.clone()],
    );
}

#[test]
fn from_secrets_leaves_donor_key_block_droppable() {
    // The take-and-replace in `from_secrets` must leave the donor
    // `KeyBlock` in a state its own Drop can handle (empty buffers),
    // while the extracted keys still protect records.
    let keys = SessionKeys::from_secrets(&sample_secrets(0x21), 0, 0);
    assert_eq!(keys.client_write_key.len(), 32);
    assert!(keys.client_write_key.iter().any(|&b| b != 0));
    let mut tx = keys.seal_client_to_server().expect("direction state");
    tx.seal_record(mbtls_tls::ContentType::ApplicationData, b"probe")
        .expect("sealing works with moved-out keys");
}

proptest! {
    /// Arbitrary master secrets and sequence numbers: derive, encode,
    /// decode, and compare — then wipe both copies. The encode/decode
    /// pair runs on every value, so an early return in `decode` (bad
    /// length, unknown suite) can never leave a half-built value that
    /// double-frees when dropped.
    #[test]
    fn from_secrets_encode_decode_roundtrip(
        master in proptest::collection::vec(any::<u8>(), 48..=48),
        c2s in any::<u64>(),
        s2c in any::<u64>(),
    ) {
        let secrets = ConnectionSecrets {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: master,
            client_random: [1; 32],
            server_random: [2; 32],
        };
        let keys = SessionKeys::from_secrets(&secrets, c2s, s2c);
        let decoded = SessionKeys::decode(&keys.encode()).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &keys);
        // Both copies (and `secrets`) drop here; a double-free or a
        // wipe that reads freed memory aborts the test process.
    }

    /// Corrupted encodings must error, never panic, and the error
    /// path must drop cleanly whatever it built before bailing out.
    #[test]
    fn corrupted_key_material_never_panics(
        master in proptest::collection::vec(any::<u8>(), 48..=48),
        cut in any::<prop::sample::Index>(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let keys = SessionKeys::from_secrets(
            &ConnectionSecrets {
                suite: CipherSuite::EcdheAes256GcmSha384,
                master_secret: master,
                client_random: [3; 32],
                server_random: [4; 32],
            },
            7,
            9,
        );
        let wire = keys.encode();
        // Truncation at every possible point.
        let truncated = &wire[..cut.index(wire.len())];
        let _ = SessionKeys::decode(truncated);
        // Single bit flip anywhere (header, lengths, key bytes).
        let mut flipped = wire.clone();
        let i = flip_at.index(flipped.len());
        flipped[i] ^= 1 << flip_bit;
        if let Ok(decoded) = SessionKeys::decode(&flipped) {
            // A flip inside key bytes still decodes; it must drop
            // cleanly like any other value.
            drop(decoded);
        }
        // Ticket wrapping of the same material exercises the nested
        // decode error path.
        let ticket = TicketPlaintext {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![0xAB; 48],
            primary_keys: Some(keys),
        };
        let mut tw = ticket.encode();
        let j = flip_at.index(tw.len());
        tw[j] ^= 1 << flip_bit;
        let _ = TicketPlaintext::decode(&tw);
    }
}

//! Robustness: the TLS state machines must never panic on hostile
//! input — malformed bytes produce errors and alerts, not crashes.

use std::sync::Arc;

use mbtls_crypto::rng::CryptoRng;
use mbtls_pki::cert::{CertificateAuthority, CertifiedKey};
use mbtls_pki::{KeyUsage, TrustStore};
use mbtls_tls::config::{ClientConfig, ServerConfig};
use mbtls_tls::record::{frame_plaintext, ContentType};
use mbtls_tls::{ClientConnection, ServerConnection};
use proptest::prelude::*;

fn fixture() -> (Arc<ClientConfig>, Arc<ServerConfig>, CryptoRng) {
    let mut rng = CryptoRng::from_seed(0x20B);
    let mut ca = CertificateAuthority::new_root("Root", 0, 1_000_000, &mut rng);
    let key = CertifiedKey::issue(&mut ca, "s", &[], 0, 1_000_000, KeyUsage::Endpoint, &mut rng);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    (
        Arc::new(ClientConfig::new(Arc::new(trust))),
        Arc::new(ServerConfig::new(Arc::new(key), [1u8; 32])),
        rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random bytes fed to a fresh server: never panics.
    #[test]
    fn server_survives_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..600)) {
        let (_, sc, mut rng) = fixture();
        let mut server = ServerConnection::new(sc);
        let _ = server.feed_incoming(&garbage, &mut rng);
    }

    /// Random bytes fed to a client mid-handshake: never panics.
    #[test]
    fn client_survives_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..600)) {
        let (cc, _, mut rng) = fixture();
        let mut client = ClientConnection::new(cc, "s", &mut rng);
        let _ = client.take_outgoing();
        let _ = client.feed_incoming(&garbage, &mut rng);
    }

    /// Structurally valid records with garbage payloads: never panics.
    #[test]
    fn valid_framing_garbage_payloads(ct in 20u8..33, payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let (_, sc, mut rng) = fixture();
        let mut server = ServerConnection::new(sc);
        let mut rec = vec![ct, 3, 3];
        rec.extend((payload.len() as u16).to_be_bytes());
        rec.extend(&payload);
        let _ = server.feed_incoming(&rec, &mut rng);
    }

    /// Mutating a single byte anywhere in the client's first flight:
    /// the server errors or ignores — never panics, never establishes.
    #[test]
    fn mutated_client_hello(idx in any::<prop::sample::Index>(), xor in 1u8..=255) {
        let (cc, sc, mut rng) = fixture();
        let mut client = ClientConnection::new(cc, "s", &mut rng);
        let mut hello = client.take_outgoing();
        let i = idx.index(hello.len());
        hello[i] ^= xor;
        let mut server = ServerConnection::new(sc);
        let _ = server.feed_incoming(&hello, &mut rng);
        prop_assert!(!server.is_established());
    }
}

#[test]
fn handshake_messages_fragmented_across_records() {
    // A ClientHello split over several tiny handshake records must
    // still be reassembled (RFC 5246 §6.2.1 allows arbitrary
    // fragmentation of the handshake stream).
    let (cc, sc, mut rng) = fixture();
    let mut client = ClientConnection::new(cc, "s", &mut rng);
    let hello_record = client.take_outgoing();
    // Strip the record header; re-frame the handshake bytes as many
    // 10-byte records.
    let payload = &hello_record[5..];
    let mut refragmented = Vec::new();
    for piece in payload.chunks(10) {
        refragmented.extend(frame_plaintext(ContentType::Handshake, piece));
    }
    let mut server = ServerConnection::new(sc);
    server.feed_incoming(&refragmented, &mut rng).unwrap();
    // The server responded with its flight — reassembly worked.
    assert!(!server.take_outgoing().is_empty());
}

#[test]
fn full_handshake_byte_by_byte() {
    // Deliver every byte of both directions one at a time.
    let (cc, sc, mut rng) = fixture();
    let mut client = ClientConnection::new(cc, "s", &mut rng);
    let mut server = ServerConnection::new(sc);
    for _ in 0..10 {
        for byte in client.take_outgoing() {
            server.feed_incoming(&[byte], &mut rng).unwrap();
        }
        for byte in server.take_outgoing() {
            client.feed_incoming(&[byte], &mut rng).unwrap();
        }
        if client.is_established() && server.is_established() {
            break;
        }
    }
    assert!(client.is_established() && server.is_established());
}

#[test]
fn failed_connection_stays_failed() {
    let (_, sc, mut rng) = fixture();
    let mut server = ServerConnection::new(sc);
    assert!(server.feed_incoming(&[22, 9, 9, 0, 0], &mut rng).is_err());
    assert!(server.is_failed());
    // Subsequent valid input still errors (fail-closed).
    assert!(server
        .feed_incoming(&frame_plaintext(ContentType::Handshake, b""), &mut rng)
        .is_err());
    // An alert was queued for the peer.
    let out = server.take_outgoing();
    assert_eq!(out[0], 21, "fatal alert queued");
}

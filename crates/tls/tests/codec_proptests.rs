//! Property-based tests over the TLS message codecs and record layer.

use mbtls_tls::messages::{
    frame_handshake, ClientHello, Extension, HandshakeReader, NewSessionTicket, ServerHello,
    ServerKeyExchange, ServerKeyExchangeParams,
};
use mbtls_tls::record::{frame_plaintext, ContentType, RecordReader};
use proptest::prelude::*;

fn arb_extensions() -> impl Strategy<Value = Vec<Extension>> {
    proptest::collection::vec(
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(typ, data)| Extension { typ, data }),
        0..6,
    )
}

proptest! {
    /// ClientHello round-trips with arbitrary extensions, session ids,
    /// and suite lists.
    #[test]
    fn client_hello_roundtrip(random in proptest::array::uniform32(any::<u8>()),
                              session_id in proptest::collection::vec(any::<u8>(), 0..33),
                              suites in proptest::collection::vec(any::<u16>(), 1..16),
                              extensions in arb_extensions()) {
        let ch = ClientHello { random, session_id, cipher_suites: suites, extensions };
        prop_assert_eq!(ClientHello::decode_body(&ch.encode_body()).unwrap(), ch);
    }

    /// ServerHello round-trips.
    #[test]
    fn server_hello_roundtrip(random in proptest::array::uniform32(any::<u8>()),
                              session_id in proptest::collection::vec(any::<u8>(), 0..33),
                              suite in any::<u16>(),
                              extensions in arb_extensions()) {
        let sh = ServerHello { random, session_id, cipher_suite: suite, extensions };
        prop_assert_eq!(ServerHello::decode_body(&sh.encode_body()).unwrap(), sh);
    }

    /// ServerKeyExchange round-trips for both kex families.
    #[test]
    fn ske_roundtrip(ecdhe in any::<bool>(),
                     sig in proptest::collection::vec(any::<u8>(), 64..=64),
                     blob in proptest::collection::vec(any::<u8>(), 1..256)) {
        let params = if ecdhe {
            ServerKeyExchangeParams::Ecdhe { public: vec![7u8; 32] }
        } else {
            ServerKeyExchangeParams::Dhe { p: blob.clone(), g: vec![2], ys: blob }
        };
        let ske = ServerKeyExchange { params, signature: sig };
        prop_assert_eq!(ServerKeyExchange::decode_body(&ske.encode_body()).unwrap(), ske);
    }

    /// Ticket round-trips.
    #[test]
    fn ticket_roundtrip(hint in any::<u32>(), ticket in proptest::collection::vec(any::<u8>(), 0..512)) {
        let t = NewSessionTicket { lifetime_hint: hint, ticket };
        prop_assert_eq!(NewSessionTicket::decode_body(&t.encode_body()).unwrap(), t);
    }

    /// Decoding arbitrary bytes as any message type never panics.
    #[test]
    fn decoders_are_total(garbage in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = ClientHello::decode_body(&garbage);
        let _ = ServerHello::decode_body(&garbage);
        let _ = ServerKeyExchange::decode_body(&garbage);
        let _ = NewSessionTicket::decode_body(&garbage);
        let _ = mbtls_tls::alert::Alert::decode(&garbage);
    }

    /// The record reader reassembles any sequence of records from any
    /// chunking, preserving payloads and types.
    #[test]
    fn record_reader_invariant(records in proptest::collection::vec(
                                   (20u8..33, proptest::collection::vec(any::<u8>(), 0..512)), 1..6),
                               chunk in 1usize..128) {
        let mut stream = Vec::new();
        for (ct, payload) in &records {
            // frame_plaintext requires a known ContentType; frame
            // manually so unknown types are covered too.
            stream.push(*ct);
            stream.push(3);
            stream.push(3);
            stream.extend((payload.len() as u16).to_be_bytes());
            stream.extend(payload);
        }
        let mut reader = RecordReader::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(rec) = reader.next_record().unwrap() {
                got.push((rec.content_type_byte, rec.body));
            }
        }
        prop_assert_eq!(got, records);
    }

    /// The handshake reader reassembles any sequence of handshake
    /// messages carried in arbitrary record-sized slices.
    #[test]
    fn handshake_reader_invariant(messages in proptest::collection::vec(
                                      (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..300)), 1..5),
                                  chunk in 1usize..64) {
        let mut stream = Vec::new();
        for (typ, body) in &messages {
            stream.extend(frame_handshake(*typ, body));
        }
        let mut reader = HandshakeReader::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some((typ, body, _frame)) = reader.next_message().unwrap() {
                got.push((typ, body));
            }
        }
        prop_assert_eq!(got, messages);
    }
}

#[test]
fn frame_plaintext_matches_manual_framing() {
    let rec = frame_plaintext(ContentType::Handshake, b"abc");
    assert_eq!(rec, vec![22, 3, 3, 0, 3, b'a', b'b', b'c']);
}

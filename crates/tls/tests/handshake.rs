//! End-to-end TLS handshake tests over an in-memory pipe.

use std::sync::Arc;

use mbtls_crypto::rng::CryptoRng;
use mbtls_pki::cert::{CertificateAuthority, CertifiedKey};
use mbtls_pki::{KeyUsage, TrustStore};
use mbtls_sgx::{AttestationService, CodeIdentity, Enclave, Platform, Quote};
use mbtls_tls::config::{AttestationPolicy, Attestor, ClientConfig, ServerConfig};
use mbtls_tls::suites::CipherSuite;
use mbtls_tls::{ClientConnection, ServerConnection, TlsError};

/// Test fixture: a CA, a server identity, and matching configs.
struct Fixture {
    trust: Arc<TrustStore>,
    server_key: Arc<CertifiedKey>,
    rng: CryptoRng,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = CryptoRng::from_seed(seed);
    let mut ca = CertificateAuthority::new_root("Test Root", 0, 1_000_000, &mut rng);
    let server_key = CertifiedKey::issue(
        &mut ca,
        "server.example",
        &["*.server.example"],
        0,
        1_000_000,
        KeyUsage::Endpoint,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    Fixture {
        trust: Arc::new(trust),
        server_key: Arc::new(server_key),
        rng,
    }
}

/// Pump bytes between client and server until quiescent.
fn run_to_completion(
    client: &mut ClientConnection,
    server: &mut ServerConnection,
    rng: &mut CryptoRng,
) -> Result<(), TlsError> {
    for _ in 0..20 {
        let c_out = client.take_outgoing();
        if !c_out.is_empty() {
            server.feed_incoming(&c_out, rng)?;
        }
        let s_out = server.take_outgoing();
        if !s_out.is_empty() {
            client.feed_incoming(&s_out, rng)?;
        }
        if c_out.is_empty() && s_out.is_empty() {
            break;
        }
    }
    Ok(())
}

#[test]
fn full_handshake_all_suites() {
    for suite in CipherSuite::ALL {
        let mut f = fixture(100 + suite.id() as u64);
        let mut cc = ClientConfig::new(f.trust.clone());
        cc.suites = vec![suite];
        let sc = ServerConfig::new(f.server_key.clone(), [7u8; 32]);
        let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
        let mut server = ServerConnection::new(Arc::new(sc));
        run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
        assert!(client.is_established(), "{suite:?} client");
        assert!(server.is_established(), "{suite:?} server");
        assert!(!client.resumed());
        // Both sides agree on the master secret.
        assert_eq!(
            client.secrets().unwrap().master_secret,
            server.secrets().unwrap().master_secret
        );
    }
}

#[test]
fn application_data_both_directions() {
    let mut f = fixture(2);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();

    client.send_data(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    server
        .feed_incoming(&client.take_outgoing(), &mut f.rng)
        .unwrap();
    assert_eq!(server.take_plaintext(), b"GET / HTTP/1.1\r\n\r\n");

    server.send_data(b"HTTP/1.1 200 OK\r\n\r\nhello").unwrap();
    client
        .feed_incoming(&server.take_outgoing(), &mut f.rng)
        .unwrap();
    assert_eq!(client.take_plaintext(), b"HTTP/1.1 200 OK\r\n\r\nhello");
}

#[test]
fn large_data_fragments_and_reassembles() {
    let mut f = fixture(3);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();

    let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    client.send_data(&big).unwrap();
    let wire = client.take_outgoing();
    // Feed in awkward chunks to exercise reassembly.
    for chunk in wire.chunks(4096) {
        server.feed_incoming(chunk, &mut f.rng).unwrap();
    }
    assert_eq!(server.take_plaintext(), big);
}

#[test]
fn wrong_name_rejected() {
    let mut f = fixture(4);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "other.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(
        result,
        Err(TlsError::Certificate(mbtls_pki::CertError::NameMismatch))
    ));
    assert!(client.is_failed());
}

#[test]
fn wildcard_name_accepted() {
    let mut f = fixture(5);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "www.server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.is_established());
}

#[test]
fn untrusted_ca_rejected() {
    let mut f = fixture(6);
    // Client trusts a different root.
    let mut other_ca = CertificateAuthority::new_root("Other Root", 0, 1_000_000, &mut f.rng);
    let _ = other_ca; // name emphasises the mismatch
    let mut empty_trust = TrustStore::new();
    empty_trust.add_root(other_ca.issue_intermediate("x", 0, 10, &mut f.rng).certificate().clone());
    let cc = Arc::new(ClientConfig::new(Arc::new(empty_trust)));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(result, Err(TlsError::Certificate(_))));
}

#[test]
fn expired_certificate_rejected() {
    let mut f = fixture(7);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.current_time = 2_000_000; // past not_after
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(
        result,
        Err(TlsError::Certificate(mbtls_pki::CertError::Expired))
    ));
}

#[test]
fn no_common_suite_fails_cleanly() {
    let mut f = fixture(8);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.suites = vec![CipherSuite::EcdheAes128GcmSha256];
    let mut sc = ServerConfig::new(f.server_key.clone(), [7u8; 32]);
    sc.suites = vec![CipherSuite::DheAes256GcmSha384];
    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(result, Err(TlsError::NegotiationFailed(_))));
    assert!(server.is_failed());
}

#[test]
fn ticket_resumption_works() {
    let mut f = fixture(9);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc.clone());
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.issued_ticket().is_some(), "server should issue a ticket");
    let resumption = client.resumption_data().unwrap();

    // Second connection offering the ticket.
    let mut cc2 = ClientConfig::new(f.trust.clone());
    cc2.resumption_cache
        .insert("server.example".to_string(), resumption.clone());
    let mut client2 = ClientConnection::new(Arc::new(cc2), "server.example", &mut f.rng);
    let mut server2 = ServerConnection::new(sc);
    run_to_completion(&mut client2, &mut server2, &mut f.rng).unwrap();
    assert!(client2.is_established());
    assert!(server2.is_established());
    assert!(client2.resumed(), "client should resume");
    assert!(server2.resumed(), "server should resume");
    // Fresh randoms → fresh key block, same master secret.
    assert_eq!(
        client2.secrets().unwrap().master_secret,
        resumption.master_secret
    );

    // Data still flows.
    client2.send_data(b"resumed!").unwrap();
    server2
        .feed_incoming(&client2.take_outgoing(), &mut f.rng)
        .unwrap();
    assert_eq!(server2.take_plaintext(), b"resumed!");
}

#[test]
fn bogus_ticket_falls_back_to_full_handshake() {
    let mut f = fixture(10);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.resumption_cache.insert(
        "server.example".to_string(),
        mbtls_tls::session::ResumptionData {
            suite: CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![0xEE; 48],
            ticket: Some(vec![0xAB; 60]),
            session_id: vec![],
        },
    );
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.is_established());
    assert!(!server.resumed());
    assert!(!client.resumed());
}

#[test]
fn tampered_record_fails_connection() {
    let mut f = fixture(11);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();

    client.send_data(b"sensitive").unwrap();
    let mut wire = client.take_outgoing();
    let n = wire.len();
    wire[n - 3] ^= 0x01; // flip a ciphertext bit
    let result = server.feed_incoming(&wire, &mut f.rng);
    assert!(matches!(
        result,
        Err(TlsError::Crypto(mbtls_crypto::CryptoError::BadTag))
    ));
    assert!(server.is_failed());
}

#[test]
fn attestation_verified_when_required() {
    let mut f = fixture(12);
    // Stand up a simulated SGX platform running the server.
    let mut svc = AttestationService::new(&mut f.rng);
    let pak = svc.provision_platform(&mut f.rng);
    let mut platform = Platform::new(pak, &mut f.rng);
    let code = CodeIdentity::new("mbtls-server", "1.0", b"strong-ciphers-only");
    let enclave = Enclave::create(&mut platform, &code, Vec::new());

    struct EnclaveAttestor {
        platform: Platform,
        enclave: Enclave<Vec<u8>>,
    }
    impl Attestor for EnclaveAttestor {
        fn quote(&self, report_data: [u8; 64]) -> Quote {
            self.enclave.quote(&self.platform, report_data)
        }
    }

    let mut sc = ServerConfig::new(f.server_key.clone(), [7u8; 32]);
    sc.attestor = Some(Arc::new(EnclaveAttestor { platform, enclave }));
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.attestation_policy = Some(AttestationPolicy {
        root: svc.root_verifying_key(),
        acceptable: vec![code.measure()],
    });

    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.is_established());
    let quote = client.peer_quote().expect("quote captured");
    assert_eq!(quote.measurement, code.measure());
}

#[test]
fn attestation_with_wrong_measurement_rejected() {
    let mut f = fixture(13);
    let mut svc = AttestationService::new(&mut f.rng);
    let pak = svc.provision_platform(&mut f.rng);
    let mut platform = Platform::new(pak, &mut f.rng);
    let evil_code = CodeIdentity::new("mbtls-server-evil", "1.0", b"");
    let enclave = Enclave::create(&mut platform, &evil_code, Vec::new());

    struct EnclaveAttestor {
        platform: Platform,
        enclave: Enclave<Vec<u8>>,
    }
    impl Attestor for EnclaveAttestor {
        fn quote(&self, report_data: [u8; 64]) -> Quote {
            self.enclave.quote(&self.platform, report_data)
        }
    }

    let mut sc = ServerConfig::new(f.server_key.clone(), [7u8; 32]);
    sc.attestor = Some(Arc::new(EnclaveAttestor { platform, enclave }));
    let expected = CodeIdentity::new("mbtls-server", "1.0", b"strong-ciphers-only");
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.attestation_policy = Some(AttestationPolicy {
        root: svc.root_verifying_key(),
        acceptable: vec![expected.measure()],
    });

    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(
        result,
        Err(TlsError::Attestation(
            mbtls_sgx::AttestationError::MeasurementMismatch
        ))
    ));
}

#[test]
fn attestation_required_but_server_cannot_attest() {
    let mut f = fixture(14);
    let mut svc = AttestationService::new(&mut f.rng);
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.attestation_policy = Some(AttestationPolicy {
        root: svc.root_verifying_key(),
        acceptable: vec![],
    });
    let _ = svc.provision_platform(&mut f.rng);
    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    let result = run_to_completion(&mut client, &mut server, &mut f.rng);
    assert!(matches!(result, Err(TlsError::UnexpectedMessage(_))));
}

#[test]
fn false_start_data_arrives_with_finished() {
    let mut f = fixture(15);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.enable_false_start = true;
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(Arc::new(cc), "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);

    // Flight 1: CH -> server.
    server
        .feed_incoming(&client.take_outgoing(), &mut f.rng)
        .unwrap();
    // Flight 2: server flight -> client.
    client
        .feed_incoming(&server.take_outgoing(), &mut f.rng)
        .unwrap();
    // Client now has CKE+CCS+Finished queued; send early data too.
    client.send_data(b"early request").unwrap();
    server
        .feed_incoming(&client.take_outgoing(), &mut f.rng)
        .unwrap();
    // Server is established after the client Finished; data that
    // followed in the same flight is delivered.
    assert!(server.is_established());
    assert_eq!(server.take_plaintext(), b"early request");
    // Complete the handshake on the client side.
    client
        .feed_incoming(&server.take_outgoing(), &mut f.rng)
        .unwrap();
    assert!(client.is_established());
}

#[test]
fn false_start_disabled_blocks_early_send() {
    let mut f = fixture(16);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    server
        .feed_incoming(&client.take_outgoing(), &mut f.rng)
        .unwrap();
    client
        .feed_incoming(&server.take_outgoing(), &mut f.rng)
        .unwrap();
    assert!(matches!(
        client.send_data(b"too early"),
        Err(TlsError::HandshakeNotDone)
    ));
}

#[test]
fn exported_keys_match_between_peers() {
    let mut f = fixture(17);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    let ck = client.export_session_keys().unwrap();
    let sk = server.export_session_keys().unwrap();
    assert_eq!(ck.client_write_key, sk.client_write_key);
    assert_eq!(ck.server_write_key, sk.server_write_key);
    assert_eq!(ck.client_to_server_seq, sk.client_to_server_seq);
    assert_eq!(ck.server_to_client_seq, sk.server_to_client_seq);
}

#[test]
fn nonstandard_records_surfaced_not_fatal() {
    let mut f = fixture(18);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(cc, "server.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    // Inject an mbTLS MiddleboxAnnouncement record ahead of the CH.
    let announce = mbtls_tls::record::frame_plaintext(
        mbtls_tls::ContentType::MbtlsMiddleboxAnnouncement,
        b"",
    );
    server.feed_incoming(&announce, &mut f.rng).unwrap();
    let surfaced = server.take_nonstandard_records();
    assert_eq!(surfaced.len(), 1);
    assert_eq!(surfaced[0].0, 32);
    // Handshake still completes afterwards.
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(server.is_established());
}

#[test]
fn strict_server_rejects_nonstandard_records() {
    let mut f = fixture(19);
    let mut sc = ServerConfig::new(f.server_key.clone(), [7u8; 32]);
    sc.strict_unknown_records = true;
    let mut server = ServerConnection::new(Arc::new(sc));
    let announce = mbtls_tls::record::frame_plaintext(
        mbtls_tls::ContentType::MbtlsMiddleboxAnnouncement,
        b"",
    );
    let result = server.feed_incoming(&announce, &mut f.rng);
    assert!(matches!(result, Err(TlsError::Decode(_))));
    assert!(server.is_failed());
}

#[test]
fn danger_disable_cert_verify_accepts_anything() {
    let mut f = fixture(20);
    // Client with empty trust store but verification disabled.
    let mut cc = ClientConfig::new(Arc::new(TrustStore::new()));
    cc.danger_disable_cert_verify = true;
    let sc = Arc::new(ServerConfig::new(f.server_key.clone(), [7u8; 32]));
    let mut client = ClientConnection::new(Arc::new(cc), "whatever.example", &mut f.rng);
    let mut server = ServerConnection::new(sc);
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.is_established());
}

#[test]
fn reused_hello_transcripts_agree() {
    // The mbTLS secondary-handshake construction: a second client
    // connection built from the same ClientHello completes against a
    // different server that received those same CH bytes.
    let mut f = fixture(21);
    let cc = Arc::new(ClientConfig::new(f.trust.clone()));
    let hello = ClientConnection::build_hello(&cc, "server.example", &mut f.rng);

    // "Middlebox" server identity.
    let mut ca2 = CertificateAuthority::new_root("Test Root 2", 0, 1_000_000, &mut f.rng);
    let mbox_key = CertifiedKey::issue(
        &mut ca2,
        "mbox.example",
        &[],
        0,
        1_000_000,
        KeyUsage::Middlebox,
        &mut f.rng,
    );
    let mut trust2 = TrustStore::new();
    trust2.add_root(ca2.certificate().clone());
    let cc2 = Arc::new(ClientConfig::new(Arc::new(trust2)));

    let mut secondary =
        ClientConnection::with_reused_hello(cc2, "mbox.example", hello.clone());
    // Nothing is sent by the secondary connection itself.
    assert!(secondary.take_outgoing().is_empty());

    let mut mbox_server = ServerConnection::new(Arc::new(ServerConfig::new(
        Arc::new(mbox_key),
        [9u8; 32],
    )));
    // Deliver the shared CH bytes to the middlebox's server side.
    let ch_record = mbtls_tls::record::frame_plaintext(
        mbtls_tls::ContentType::Handshake,
        &mbtls_tls::messages::frame_handshake(
            mbtls_tls::messages::handshake_type::CLIENT_HELLO,
            &hello.encode_body(),
        ),
    );
    mbox_server.feed_incoming(&ch_record, &mut f.rng).unwrap();
    run_to_completion(&mut secondary, &mut mbox_server, &mut f.rng).unwrap();
    assert!(secondary.is_established());
    assert!(mbox_server.is_established());
}

// ---------------------------------------------------------------------------
// Delegated middlebox credentials (mdTLS-style, DESIGN.md §6j)
// ---------------------------------------------------------------------------

use mbtls_pki::cert::Certificate;
use mbtls_pki::delegation::{
    CredentialError, CredentialIssuer, DelegatedCredential, DelegatedDirection, DelegatedKeyPair,
    DelegatedRole,
};
use mbtls_tls::config::{CredentialProvider, DelegationPolicy};

/// Test double: an endpoint that delegates to one middlebox key,
/// issuing a fresh credential bound to each handshake's transcript.
struct TestProvider {
    issuer: CredentialIssuer,
    mbox_key: mbtls_crypto::ed25519::VerifyingKey,
    role: DelegatedRole,
    /// When set, ignore the session binding and always use this nonce
    /// (models a replayed credential from another session).
    fixed_nonce: Option<[u8; 32]>,
}

impl CredentialProvider for TestProvider {
    fn credential(&self, session_binding: [u8; 64]) -> DelegatedCredential {
        let nonce = self.fixed_nonce.unwrap_or_else(|| {
            let mut n = [0u8; 32];
            n.copy_from_slice(&session_binding[..32]);
            n
        });
        self.issuer.issue(
            "proxy.msp.example",
            self.mbox_key,
            0,
            1_000_000,
            self.role,
            DelegatedDirection::Both,
            nonce,
        )
    }

    fn issuer_chain(&self) -> Vec<Certificate> {
        self.issuer.issuer_chain().to_vec()
    }
}

/// Fixture for delegation tests: a CA-certified endpoint that acts as
/// credential issuer, plus a delegated middlebox keypair.
struct DelegationFixture {
    trust: Arc<TrustStore>,
    issuer_seed: [u8; 32],
    issuer_chain: Vec<Certificate>,
    mbox: DelegatedKeyPair,
    rng: CryptoRng,
}

fn delegation_fixture(seed: u64) -> DelegationFixture {
    let mut rng = CryptoRng::from_seed(seed);
    let mut ca = CertificateAuthority::new_root("Test Root", 0, 1_000_000, &mut rng);
    let issuer_seed: [u8; 32] = rng.gen_array();
    let issuer_key = mbtls_crypto::ed25519::SigningKey::from_seed(&issuer_seed);
    let cert = ca.issue(
        "server.example",
        &[],
        issuer_key.verifying_key(),
        0,
        1_000_000,
        KeyUsage::Endpoint,
    );
    let mbox = DelegatedKeyPair::generate(&mut rng);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    DelegationFixture {
        trust: Arc::new(trust),
        issuer_seed,
        issuer_chain: vec![cert],
        mbox,
        rng,
    }
}

impl DelegationFixture {
    fn provider(&self, role: DelegatedRole, fixed_nonce: Option<[u8; 32]>) -> Arc<TestProvider> {
        Arc::new(TestProvider {
            issuer: CredentialIssuer::new(
                self.issuer_seed,
                "server.example",
                self.issuer_chain.clone(),
            ),
            mbox_key: self.mbox.verifying_key(),
            role,
            fixed_nonce,
        })
    }

    /// The delegated middlebox's server-side identity: its delegated
    /// key with an *empty* chain — the credential is its identity.
    fn mbox_identity(&self) -> Arc<CertifiedKey> {
        Arc::new(CertifiedKey {
            key: self.mbox.signing_key(),
            chain: vec![],
        })
    }

    fn policy(&self, required_role: Option<DelegatedRole>) -> DelegationPolicy {
        DelegationPolicy {
            trust_store: self.trust.clone(),
            issuer: "server.example".to_string(),
            required_role,
        }
    }
}

#[test]
fn delegated_handshake_establishes_with_empty_chain() {
    let mut f = delegation_fixture(70);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.delegation_policy = Some(f.policy(Some(DelegatedRole::ReadOnly)));
    let mut sc = ServerConfig::new(f.mbox_identity(), [7u8; 32]);
    sc.credential_provider = Some(f.provider(DelegatedRole::ReadWrite, None));
    sc.always_delegate = true;

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(client.is_established());
    assert!(server.is_established());

    let cred = client.peer_credential().expect("credential retained");
    assert_eq!(cred.subject, "proxy.msp.example");
    assert_eq!(cred.issuer, "server.example");
    assert_eq!(cred.middlebox_key, f.mbox.verifying_key());

    // Application data flows normally under the delegated identity.
    client.send_data(b"ping").unwrap();
    server
        .feed_incoming(&client.take_outgoing(), &mut f.rng)
        .unwrap();
    assert_eq!(server.take_plaintext(), b"ping");
}

#[test]
fn delegated_handshake_feeds_deferred_verify_seam() {
    let mut f = delegation_fixture(71);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.delegation_policy = Some(f.policy(None));
    cc.defer_verify = true;
    let mut sc = ServerConfig::new(f.mbox_identity(), [7u8; 32]);
    sc.credential_provider = Some(f.provider(DelegatedRole::ReadWrite, None));
    sc.always_delegate = true;

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();

    // Not established until the deferred batch is resolved.
    assert!(!client.is_established());
    let checks = client.take_pending_verify().expect("deferred checks");
    // Chain anchor + credential signature + ServerKeyExchange signature.
    assert!(checks.len() >= 3, "got {} checks", checks.len());
    assert!(checks.iter().all(|c| c.check()));
    client.resolve_verify(true);
    assert!(client.is_established());
    run_to_completion(&mut client, &mut server, &mut f.rng).unwrap();
    assert!(server.is_established());
}

#[test]
fn delegation_required_but_absent_fails() {
    let mut f = delegation_fixture(72);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.delegation_policy = Some(f.policy(None));
    // Server has a normal CA-issued identity and no credential provider.
    let mut rng2 = CryptoRng::from_seed(720);
    let mut ca2 = CertificateAuthority::new_root("Test Root", 0, 1_000_000, &mut rng2);
    let plain_key = CertifiedKey::issue(
        &mut ca2,
        "proxy.msp.example",
        &[],
        0,
        1_000_000,
        KeyUsage::Endpoint,
        &mut rng2,
    );
    let sc = ServerConfig::new(Arc::new(plain_key), [7u8; 32]);

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let err = run_to_completion(&mut client, &mut server, &mut f.rng).unwrap_err();
    assert!(matches!(err, TlsError::UnexpectedMessage(_)), "{err:?}");
}

#[test]
fn delegated_credential_replayed_from_other_session_rejected() {
    // Provider that replays a credential minted for a *different*
    // session nonce: the client must reject it (SessionMismatch).
    let mut f = delegation_fixture(73);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.delegation_policy = Some(f.policy(None));
    let mut sc = ServerConfig::new(f.mbox_identity(), [7u8; 32]);
    sc.credential_provider = Some(f.provider(DelegatedRole::ReadWrite, Some([0xAB; 32])));
    sc.always_delegate = true;

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let err = run_to_completion(&mut client, &mut server, &mut f.rng).unwrap_err();
    assert_eq!(
        err,
        TlsError::Credential(CredentialError::SessionMismatch)
    );
}

#[test]
fn delegated_credential_insufficient_role_rejected() {
    let mut f = delegation_fixture(74);
    let mut cc = ClientConfig::new(f.trust.clone());
    // Client demands write capability; credential only grants read.
    cc.delegation_policy = Some(f.policy(Some(DelegatedRole::ReadWrite)));
    let mut sc = ServerConfig::new(f.mbox_identity(), [7u8; 32]);
    sc.credential_provider = Some(f.provider(DelegatedRole::ReadOnly, None));
    sc.always_delegate = true;

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let err = run_to_completion(&mut client, &mut server, &mut f.rng).unwrap_err();
    assert_eq!(
        err,
        TlsError::Credential(CredentialError::RoleNotPermitted)
    );
}

#[test]
fn delegated_key_mismatch_breaks_key_exchange_signature() {
    // Credential names a different key than the one the server signs
    // its ServerKeyExchange with: verification of the SKE must fail.
    let mut f = delegation_fixture(75);
    let other = DelegatedKeyPair::generate(&mut f.rng);
    let mut cc = ClientConfig::new(f.trust.clone());
    cc.delegation_policy = Some(f.policy(None));
    let mut sc = ServerConfig::new(f.mbox_identity(), [7u8; 32]);
    sc.credential_provider = Some(Arc::new(TestProvider {
        issuer: CredentialIssuer::new(f.issuer_seed, "server.example", f.issuer_chain.clone()),
        mbox_key: other.verifying_key(),
        role: DelegatedRole::ReadWrite,
        fixed_nonce: None,
    }));
    sc.always_delegate = true;

    let mut client = ClientConnection::new(Arc::new(cc), "proxy.msp.example", &mut f.rng);
    let mut server = ServerConnection::new(Arc::new(sc));
    let err = run_to_completion(&mut client, &mut server, &mut f.rng).unwrap_err();
    assert!(
        matches!(err, TlsError::Crypto(_) | TlsError::Credential(_)),
        "{err:?}"
    );
}

//! RFC 5246 session-ID resumption (the second resumption mechanism
//! the paper's §3.5 covers, alongside tickets).

use std::sync::Arc;

use mbtls_crypto::rng::CryptoRng;
use mbtls_pki::cert::{CertificateAuthority, CertifiedKey};
use mbtls_pki::{KeyUsage, TrustStore};
use mbtls_tls::config::{ClientConfig, ServerConfig};
use mbtls_tls::{ClientConnection, ServerConnection};

fn fixture() -> (Arc<TrustStore>, Arc<CertifiedKey>, CryptoRng) {
    let mut rng = CryptoRng::from_seed(0x1D);
    let mut ca = CertificateAuthority::new_root("Root", 0, 1_000_000, &mut rng);
    let key = CertifiedKey::issue(&mut ca, "s.example", &[], 0, 1_000_000, KeyUsage::Endpoint, &mut rng);
    let mut trust = TrustStore::new();
    trust.add_root(ca.certificate().clone());
    (Arc::new(trust), Arc::new(key), rng)
}

fn pump(client: &mut ClientConnection, server: &mut ServerConnection, rng: &mut CryptoRng) {
    for _ in 0..20 {
        let b = client.take_outgoing();
        if !b.is_empty() {
            server.feed_incoming(&b, rng).unwrap();
        }
        let b = server.take_outgoing();
        if !b.is_empty() {
            client.feed_incoming(&b, rng).unwrap();
        }
        if client.is_established() && server.is_established() {
            return;
        }
    }
    panic!("handshake did not complete");
}

#[test]
fn session_id_resumption_roundtrip() {
    let (trust, key, mut rng) = fixture();
    // Tickets off on both sides; IDs on.
    let mut server_config = ServerConfig::new(key, [9u8; 32]);
    server_config.issue_tickets = false;
    server_config.assign_session_ids = true;
    let server_config = Arc::new(server_config);

    let mut client_config = ClientConfig::new(trust.clone());
    client_config.enable_tickets = false;

    // Session 1: full handshake; the server assigns an ID.
    let mut client = ClientConnection::new(Arc::new(client_config), "s.example", &mut rng);
    // Clone of the shared-cache config for connection 2.
    let mut server = ServerConnection::new(server_config.clone());
    pump(&mut client, &mut server, &mut rng);
    assert!(!client.resumed());
    let resumption = client.resumption_data().expect("resumption data");
    assert!(!resumption.session_id.is_empty(), "server assigned an ID");
    assert!(resumption.ticket.is_none(), "tickets were off");

    // Session 2: offer the ID; abbreviated handshake.
    let mut client_config = ClientConfig::new(trust);
    client_config.enable_tickets = false;
    client_config
        .resumption_cache
        .insert("s.example".into(), resumption);
    let mut client2 = ClientConnection::new(Arc::new(client_config), "s.example", &mut rng);
    let mut server2 = ServerConnection::new(server_config);
    pump(&mut client2, &mut server2, &mut rng);
    assert!(client2.resumed(), "client resumed by session ID");
    assert!(server2.resumed(), "server resumed by session ID");

    // Data flows on the resumed session.
    client2.send_data(b"id-resumed").unwrap();
    server2
        .feed_incoming(&client2.take_outgoing(), &mut rng)
        .unwrap();
    assert_eq!(server2.take_plaintext(), b"id-resumed");
}

#[test]
fn unknown_session_id_falls_back_to_full() {
    let (trust, key, mut rng) = fixture();
    let mut server_config = ServerConfig::new(key, [9u8; 32]);
    server_config.issue_tickets = false;
    server_config.assign_session_ids = true;
    let server_config = Arc::new(server_config);

    let mut client_config = ClientConfig::new(trust);
    client_config.enable_tickets = false;
    client_config.resumption_cache.insert(
        "s.example".into(),
        mbtls_tls::session::ResumptionData {
            suite: mbtls_tls::suites::CipherSuite::EcdheAes256GcmSha384,
            master_secret: vec![1; 48],
            ticket: None,
            session_id: vec![0xAB; 32], // the server has never seen this
        },
    );
    let mut client = ClientConnection::new(Arc::new(client_config), "s.example", &mut rng);
    let mut server = ServerConnection::new(server_config);
    pump(&mut client, &mut server, &mut rng);
    assert!(!client.resumed());
    assert!(!server.resumed());
}

#[test]
fn cache_is_shared_across_connections() {
    let (trust, key, mut rng) = fixture();
    let mut server_config = ServerConfig::new(key, [9u8; 32]);
    server_config.issue_tickets = false;
    server_config.assign_session_ids = true;
    let server_config = Arc::new(server_config);
    let mut client_config = ClientConfig::new(trust.clone());
    client_config.enable_tickets = false;
    let mut c1 = ClientConnection::new(Arc::new(client_config), "s.example", &mut rng);
    let mut s1 = ServerConnection::new(server_config.clone());
    pump(&mut c1, &mut s1, &mut rng);
    assert_eq!(
        server_config.session_cache.lock().unwrap().len(),
        1,
        "master secret cached under the assigned ID"
    );
}

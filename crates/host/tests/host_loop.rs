//! End-to-end tests for the concurrent session host: fleet churn
//! over the network simulator, seeded determinism, stale-id
//! rejection, timeout surfacing under total loss, idle eviction, and
//! multi-shard equivalence.

use mbtls_core::MbError;
use mbtls_host::{
    Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, PipeSubstrate, SessionOutcome,
    Workload,
};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;
use mbtls_telemetry::{merge_shard_traces, EventKind, Recorder};

fn small_load(sessions: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(400),
        middlebox_every: 3,
        latency: Duration::from_micros(50),
        workload: Workload { request_len: 256, response_len: 1024, exchanges: 2 },
        seed,
        ..LoadConfig::default()
    }
}

#[test]
fn fleet_completes_over_netsim() {
    let config = small_load(9, 11);
    let mut generator = LoadGenerator::new(config.clone());
    let mut host = Host::new(HostConfig::default(), |_| NetSubstrate::new(config.seed));
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
        .expect("fleet drains");

    let counters = host.counters();
    assert_eq!(counters.opened(), 9);
    assert_eq!(counters.completed(), 9);
    assert_eq!(counters.timed_out() + counters.evicted() + counters.failed(), 0);
    assert_eq!(counters.exchanges_completed(), 18);
    assert_eq!(counters.handshake_latencies_ns().len(), 9);
    assert!(counters.bytes_moved() > 0);
    assert!(counters.handshake_latencies_ns().iter().all(|&ns| ns > 0));
    // Completed sessions cached their resumption tickets.
    assert_eq!(host.cached_tickets(), 9);
    assert!(host.shard(0).results().iter().all(|(_, outcome)| outcome.is_completed()));
}

#[test]
fn same_seed_same_trace_and_counters() {
    let run = |config: LoadConfig| {
        let recorder = Recorder::new();
        let seed = config.seed;
        let mut generator = LoadGenerator::new(config);
        let mut host = Host::new(HostConfig::default(), |_| NetSubstrate::new(seed));
        host.set_telemetry(recorder.sink());
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
            .expect("fleet drains");
        (recorder.snapshot(), host.counters())
    };
    let (trace_a, counters_a) = run(small_load(7, 42));
    let (trace_b, counters_b) = run(small_load(7, 42));
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same seed and schedule must replay bit-identically");
    assert_eq!(counters_a, counters_b);

    // A different churn schedule must not replay the same trace.
    let mut other = small_load(7, 42);
    other.arrival_spacing = Duration::from_micros(700);
    let (trace_c, _) = run(other);
    assert_ne!(trace_a, trace_c, "different schedule should differ");
}

#[test]
fn stale_ids_rejected_after_slot_reuse_under_churn() {
    // Two sequential batches: the second reuses the first batch's
    // slab slots, under bumped generations.
    let mut generator = LoadGenerator::new(small_load(6, 5));
    let mut host = Host::new(HostConfig::default(), |_| NetSubstrate::new(5));

    let mut first_batch = Vec::new();
    for _ in 0..3 {
        first_batch.push(host.open(generator.make_spec()).expect("open"));
    }
    host.run(SimTime::ZERO.plus(Duration::from_secs(60))).expect("first batch drains");

    let mut second_batch = Vec::new();
    for _ in 0..3 {
        second_batch.push(host.open(generator.make_spec()).expect("open"));
    }
    // LIFO slot reuse: same indices, new generations.
    let mut first_indices: Vec<u32> = first_batch.iter().map(|id| id.index()).collect();
    let mut second_indices: Vec<u32> = second_batch.iter().map(|id| id.index()).collect();
    first_indices.sort_unstable();
    second_indices.sort_unstable();
    assert_eq!(first_indices, second_indices, "slots are recycled");
    for new in &second_batch {
        let old = first_batch
            .iter()
            .find(|o| o.index() == new.index())
            .expect("every second-batch slot was recycled from the first batch");
        assert_ne!(old.generation(), new.generation(), "recycled slot must bump generation");
    }
    host.run(SimTime::ZERO.plus(Duration::from_secs(120))).expect("second batch drains");
    assert_eq!(host.counters().completed(), 6);
}

/// Regression: a handshake flight silently dropped by the network
/// used to stall the session forever with no error anywhere. The
/// host's timer wheel must retry with backoff, then surface
/// `MbError::Timeout`.
#[test]
fn blackholed_handshake_surfaces_timeout() {
    let recorder = Recorder::new();
    let mut generator = LoadGenerator::new(small_load(1, 3));
    let config = HostConfig::builder()
        .handshake_timeout(Duration::from_millis(10))
        .handshake_attempts(2)
        .build()
        .expect("valid config");
    let mut host = Host::new(config, |_| NetSubstrate::new(3));
    host.set_telemetry(recorder.sink());

    let mut spec = generator.make_spec();
    // 100% loss for the whole run: every flight is swallowed.
    spec.faults = FaultConfig::blackhole_window(SimTime::ZERO, SimTime(u64::MAX));
    let id = host.open(spec).expect("open");

    // Without the timer wheel this would spin to the deadline (the
    // old `NetChain::run_until` just reported a quiescent network).
    host.run(SimTime::ZERO.plus(Duration::from_secs(10))).expect("host stays live and drains");

    let results = host.take_results();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, id);
    assert!(matches!(results[0].1, SessionOutcome::TimedOut));
    assert!(matches!(results[0].1.as_error(), Some(MbError::Timeout(_))));
    let counters = host.counters();
    assert_eq!(counters.timed_out(), 1);
    assert_eq!(counters.retries(), 1);
    assert_eq!(counters.completed(), 0);

    let trace = recorder.snapshot();
    let timeouts = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::HostTimeout { .. }))
        .count();
    let backoffs = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::HostRetryBackoff { .. }))
        .count();
    assert_eq!(timeouts, 2, "one HostTimeout per attempt");
    assert_eq!(backoffs, 1, "one retry between the two attempts");
}

/// A session whose peer goes silent mid-workload is evicted by the
/// idle timer rather than held forever.
#[test]
fn mid_session_blackhole_leads_to_idle_eviction() {
    let recorder = Recorder::new();
    let mut generator = LoadGenerator::new(LoadConfig {
        sessions: 1,
        // Long workload so the blackhole window opens mid-transfer.
        workload: Workload { request_len: 256, response_len: 1024, exchanges: 100_000 },
        ..small_load(1, 8)
    });
    let config = HostConfig::builder()
        .idle_timeout(Duration::from_millis(20))
        .build()
        .expect("valid config");
    let mut host = Host::new(config, |_| NetSubstrate::new(8));
    host.set_telemetry(recorder.sink());

    let mut spec = generator.make_spec();
    // Handshake (sub-millisecond at 50 µs latency) completes well
    // before the lights go out at 50 ms.
    spec.faults = FaultConfig::blackhole_window(
        SimTime::ZERO.plus(Duration::from_millis(50)),
        SimTime(u64::MAX),
    );
    host.open(spec).expect("open");
    host.run(SimTime::ZERO.plus(Duration::from_secs(10))).expect("host drains");

    let counters = host.counters();
    assert_eq!(counters.evicted(), 1, "session must be evicted, not hung");
    assert_eq!(counters.handshake_latencies_ns().len(), 1, "handshake did complete first");
    assert!(counters.exchanges_completed() > 0, "workload ran until the blackhole");
    assert!(matches!(host.shard(0).results()[0].1, SessionOutcome::Evicted));
    assert!(recorder
        .snapshot()
        .iter()
        .any(|e| matches!(e.kind, EventKind::HostEvict { .. })));
}

#[test]
fn pipe_substrate_completes_and_reuses_buffers() {
    let config = small_load(8, 21);
    let mut generator = LoadGenerator::new(config.clone());
    let mut host = Host::new(HostConfig::default(), |_| PipeSubstrate::new());
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
        .expect("fleet drains");
    assert_eq!(host.counters().completed(), 8);
    let (acquired, reused) = host.pool_stats();
    // One staging buffer is in flight at a time, so after the first
    // acquisition every later one is served from the pool.
    assert!(acquired > 1);
    assert_eq!(reused, acquired - 1, "steady state allocates no staging buffers");
}

/// A sharded fleet completes the same sessions with the same
/// virtual-time handshake latencies as a single-shard host: sessions
/// derive from the global index, shards share nothing, so slicing
/// the load is observationally equivalent.
#[test]
fn sharded_fleet_matches_single_shard_outcomes() {
    let run = |shards: u32| {
        let seed = 77;
        let config = small_load(12, seed);
        let host_cfg = HostConfig::builder().shards(shards).build().expect("valid config");
        let mut host = Host::new(host_cfg, |k| NetSubstrate::new(seed ^ k as u64));
        let mut generator = LoadGenerator::new(config);
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
            .expect("fleet drains");
        host.counters()
    };
    let single = run(1);
    let tri = run(3);
    assert_eq!(single.completed(), 12);
    assert_eq!(tri.completed(), 12);
    assert_eq!(single.opened(), tri.opened());
    assert_eq!(single.exchanges_completed(), tri.exchanges_completed());
    assert_eq!(single.bytes_moved(), tri.bytes_moved());
    // Per-session virtual-time latencies are identical; only the
    // completion order (shard-major when merged) differs.
    let mut a: Vec<u64> = single.handshake_latencies_ns().to_vec();
    let mut b: Vec<u64> = tri.handshake_latencies_ns().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "sharding must not change any session's virtual timing");
}

/// Double-run determinism for a multi-shard host: per-shard traces
/// merged by (virtual time, shard) are bit-identical across runs.
#[test]
fn sharded_double_run_merged_trace_is_bit_identical() {
    let run = || {
        let seed = 99;
        let config = small_load(10, seed);
        let host_cfg = HostConfig::builder().shards(4).build().expect("valid config");
        let mut host = Host::new(host_cfg, |k| NetSubstrate::new(seed ^ k as u64));
        let recorders = host.record_telemetry();
        let mut generator = LoadGenerator::new(config);
        generator
            .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
            .expect("fleet drains");
        merge_shard_traces(recorders.iter().map(|r| r.snapshot()).collect())
    };
    let trace_a = run();
    let trace_b = run();
    assert!(!trace_a.is_empty());
    // Events from every shard are present, tagged with their worker.
    for shard in 0..4u16 {
        assert!(trace_a.iter().any(|e| e.shard == shard), "shard {shard} emitted nothing");
    }
    // Merge order is (ts_ns, shard) — monotone by construction.
    assert!(trace_a.windows(2).all(|w| (w[0].ts_ns, w[0].shard) <= (w[1].ts_ns, w[1].shard)));
    assert_eq!(trace_a, trace_b, "sharded runs must replay bit-identically");
}

//! Service-function-chain scenarios through the concurrent host:
//! Slick-style chains at fleet scale, read-only fast-path key reuse,
//! and the bit-identical replay guarantee with shared middlebox state
//! (the cache's deterministic eviction) in the loop.

use mbtls_host::{ChainMix, Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, Workload};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::{EventKind, Recorder};

fn chain_load(sessions: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(400),
        middlebox_every: 2,
        latency: Duration::from_micros(50),
        workload: Workload { request_len: 256, response_len: 1024, exchanges: 2 },
        seed,
        chain_mix: ChainMix::SlickWeb,
        ..LoadConfig::default()
    }
}

fn run(config: LoadConfig) -> (Vec<mbtls_telemetry::Event>, mbtls_host::HostCounters) {
    let recorder = Recorder::new();
    let seed = config.seed;
    let sessions = config.sessions;
    let mut generator = LoadGenerator::new(config);
    generator.set_telemetry(recorder.sink());
    let mut host = Host::new(HostConfig::default(), |_| NetSubstrate::new(seed));
    host.set_telemetry(recorder.sink());
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(120)))
        .expect("fleet drains");
    assert_eq!(host.counters().completed(), sessions as u64);
    (recorder.snapshot(), host.counters())
}

#[test]
fn service_chain_fleet_completes_and_replays() {
    // Three-middlebox chains on every other session, with the shared
    // cache (deterministic FIFO eviction) in the path: two identical
    // runs must produce bit-identical traces and counters.
    let (trace_a, counters_a) = run(chain_load(6, 21));
    let (trace_b, counters_b) = run(chain_load(6, 21));
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "chain runs must replay bit-identically");
    assert_eq!(counters_a, counters_b);
}

#[test]
fn seeded_chain_mix_varies_composition_and_replays() {
    // The seeded mix draws a per-session chain composition from the
    // global session index. It must actually vary across the fleet —
    // and two identical runs must still replay bit-identically, with
    // a shard slice agreeing on each session's chain by construction.
    let seed = 21;
    let lens: Vec<usize> = (0..6u64)
        .filter(|i| i % 2 == 0)
        .map(|i| ChainMix::Seeded.compose(seed, i).expect("seeded mix always composes").len())
        .collect();
    assert!(
        lens.iter().any(|&n| n != lens[0]),
        "seeded mix must not degenerate to a fixed chain: {lens:?}"
    );
    assert!(lens.iter().all(|&n| (1..=3).contains(&n)));

    let config = LoadConfig { chain_mix: ChainMix::Seeded, ..chain_load(6, seed) };
    let (trace_a, counters_a) = run(config.clone());
    let (trace_b, counters_b) = run(config);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "seeded chain mix must replay bit-identically");
    assert_eq!(counters_a, counters_b);
}

#[test]
fn read_only_path_fast_forwards_at_scale() {
    // Aliased hop keys + pass-through middleboxes: records traverse
    // middleboxes via the tag-verify fast path, visible in telemetry
    // as RecordForwardedReadOnly instead of decrypt/encrypt pairs.
    let config = LoadConfig {
        sessions: 4,
        middlebox_every: 1,
        workload: Workload { request_len: 256, response_len: 1024, exchanges: 2 },
        seed: 33,
        read_only_path: true,
        ..chain_load(4, 33)
    };
    let config = LoadConfig { chain_mix: ChainMix::PassThrough, ..config };
    let (trace, _) = run(config);
    let fast = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecordForwardedReadOnly { .. }))
        .count();
    let resealed = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecordEncrypt { .. }))
        .count();
    assert!(fast > 0, "read-only path must take the fast path");
    assert_eq!(resealed, 0, "no middlebox re-encryption on a read-only path");
}

#[test]
fn modifying_chain_on_aliased_keys_still_reseals() {
    // The fast path is gated on the processor declaration, not just
    // the keys: a chain of undeclared (modification-capable)
    // processors under a read-only key distribution keeps re-sealing.
    // That reseal only proceeds because these processors leave the
    // raw workload bytes untouched, making it byte-identical; an
    // actual modification on aliased keys is rejected by the data
    // plane as a nonce-reuse hazard (see the dataplane unit tests).
    let config = LoadConfig { read_only_path: true, ..chain_load(4, 55) };
    let (trace, _) = run(config);
    let fast = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecordForwardedReadOnly { .. }))
        .count();
    let resealed = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecordEncrypt { .. }))
        .count();
    assert_eq!(fast, 0, "modifying processors must never fast-forward");
    assert!(resealed > 0);
}

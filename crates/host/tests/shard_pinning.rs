//! Property tests for shard pinning: under arbitrary create/evict
//! churn across a fleet of per-shard session tables, every live
//! [`SessionId`] routes to exactly one shard — the one encoded in its
//! index bits — and every stale or shard-foreign id is rejected by
//! every table.

use mbtls_host::{SessionId, ShardMux, Slab};
use proptest::prelude::*;

/// One step of churn, interpreted against the current fleet state.
#[derive(Debug, Clone)]
enum Op {
    /// Insert into shard `pick % shards`.
    Insert { pick: u16 },
    /// Evict the `pick % live`-th live id (generation-bumps its slot).
    Evict { pick: u16 },
}

/// Decode a raw `(kind, pick)` pair into an [`Op`], biased 3:2
/// toward inserts so fleets grow enough to churn.
fn decode(kind: u8, pick: u16) -> Op {
    if kind % 5 < 3 {
        Op::Insert { pick }
    } else {
        Op::Evict { pick }
    }
}

proptest! {
    /// Fleet-wide routing invariant: after any churn schedule, each
    /// live id is held by exactly the shard its index bits name, and
    /// every id that was ever evicted is held by no shard at all —
    /// even though its slot has usually been recycled (generation
    /// bump) or belongs to another shard's table at the same local
    /// index.
    #[test]
    fn every_id_routes_to_exactly_one_shard(
        shards in 1u16..9,
        raw_ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..200),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(kind, pick)| decode(kind, pick)).collect();
        let mut fleet: Vec<Slab<u64>> =
            (0..shards).map(Slab::for_shard).collect();
        let mut live: Vec<SessionId> = Vec::new();
        let mut stale: Vec<SessionId> = Vec::new();
        let mut minted: u64 = 0;

        for op in ops {
            match op {
                Op::Insert { pick } => {
                    let shard = pick % shards;
                    let id = fleet[shard as usize]
                        .try_insert(minted)
                        .expect("local address space is nowhere near exhausted");
                    minted += 1;
                    prop_assert_eq!(id.shard(), shard, "minted id carries its shard");
                    live.push(id);
                }
                Op::Evict { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(pick as usize % live.len());
                    prop_assert!(
                        fleet[id.shard() as usize].remove(id).is_some(),
                        "live id must evict from its own shard"
                    );
                    stale.push(id);
                }
            }

            // The invariant holds at every step, not just at the end.
            for &id in &live {
                let owner = ShardMux::shard_of(id);
                prop_assert_eq!(owner, id.shard(), "mux routes by the id's shard bits");
                let holders = fleet
                    .iter()
                    .filter(|slab| slab.contains(id))
                    .count();
                prop_assert_eq!(holders, 1, "live id {} held by exactly one shard", id);
                prop_assert!(
                    fleet[owner as usize].contains(id),
                    "the holder is the routed shard"
                );
            }
            for &id in &stale {
                prop_assert!(
                    fleet.iter().all(|slab| !slab.contains(id)),
                    "stale id {} must be dead fleet-wide",
                    id
                );
            }
        }
    }

    /// A stale id stays unresolvable through every accessor of every
    /// shard — including the foreign shard whose table has a live
    /// session at the same local slot.
    #[test]
    fn stale_and_foreign_ids_rejected_by_every_accessor(
        shards in 2u16..9,
        churn in 1u16..40,
    ) {
        let mut fleet: Vec<Slab<u64>> =
            (0..shards).map(Slab::for_shard).collect();
        // Churn shard 0 so its slot generations run ahead, keeping a
        // stale id from each round.
        let mut stale = Vec::new();
        for round in 0..churn {
            let id = fleet[0].try_insert(round as u64).unwrap();
            fleet[0].remove(id);
            stale.push(id);
        }
        // Re-populate every shard so each table has a *live* session
        // at local slot 0 — the exact slot the stale ids point at.
        let fresh: Vec<SessionId> = fleet
            .iter_mut()
            .map(|slab| slab.try_insert(1000).unwrap())
            .collect();
        for &id in &fresh {
            prop_assert_eq!(id.local(), 0);
        }

        for &old in &stale {
            for slab in &mut fleet {
                prop_assert!(slab.get(old).is_none());
                prop_assert!(slab.get_mut(old).is_none());
                prop_assert!(!slab.contains(old));
                prop_assert!(slab.remove(old).is_none());
            }
        }
        // The live sessions were untouched by all those probes.
        for (k, &id) in fresh.iter().enumerate() {
            prop_assert_eq!(fleet[k].get(id), Some(&1000));
        }
        // And a live id from shard A is rejected by shard B even with
        // a matching live slot and generation.
        for (k, &id) in fresh.iter().enumerate() {
            for (j, slab) in fleet.iter().enumerate() {
                prop_assert_eq!(slab.contains(id), j == k);
            }
        }
    }
}

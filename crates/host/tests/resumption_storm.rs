//! Reconnect-storm workload tests: primed session tickets make
//! abbreviated handshakes the hot path, stale tickets degrade to
//! full handshakes (counted separately), and deferred/batched
//! signature verification preserves both outcomes and determinism.

use mbtls_host::{Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, Workload};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::{merge_shard_traces, EventKind};

fn storm_load(sessions: usize, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions,
        arrival_spacing: Duration::from_micros(400),
        // Abbreviated handshakes and middlebox announcement are
        // orthogonal machinery; the storm scenario models legacy
        // reconnect floods, so no middleboxes on the resumed path.
        middlebox_every: 0,
        latency: Duration::from_micros(50),
        workload: Workload { request_len: 256, response_len: 512, exchanges: 1 },
        seed,
        resumption_storm: true,
        stale_every: 0,
        defer_verify: false,
        chain_mix: mbtls_host::ChainMix::PassThrough,
        auth_mode: mbtls_core::MiddleboxAuthMode::SgxAttested,
        read_only_path: false,
    }
}

fn drive(config: LoadConfig, shards: u16) -> (Vec<mbtls_telemetry::Event>, mbtls_host::HostCounters) {
    let seed = config.seed;
    let mut generator = LoadGenerator::new(config);
    let host_config = HostConfig::builder().shards(shards.into()).build().expect("valid config");
    let mut host = Host::new(host_config, |k| NetSubstrate::new(seed ^ k as u64));
    let recorders = host.record_telemetry();
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(60)))
        .expect("storm drains");
    let trace = merge_shard_traces(recorders.iter().map(|r| r.snapshot()).collect());
    (trace, host.counters())
}

/// Every session resumes from the primed ticket: all handshakes
/// abbreviated, no certificate signature checks owed anywhere.
#[test]
fn fresh_storm_resumes_every_session() {
    let (_, counters) = drive(storm_load(10, 21), 1);
    assert_eq!(counters.opened(), 10);
    assert_eq!(counters.completed(), 10);
    assert_eq!(counters.handshakes_resumed(), 10);
    assert_eq!(counters.handshakes_full(), 0);
    // Abbreviated handshakes skip certificate verification entirely,
    // so even a batching-capable shard has nothing to batch.
    assert_eq!(counters.verify_checks(), 0);
}

/// Sessions on the stale cadence offer a corrupted ticket; the
/// server rejects the seal and falls back to a full handshake, which
/// the counters report separately.
#[test]
fn stale_tickets_degrade_to_full_handshakes() {
    let mut config = storm_load(12, 33);
    config.stale_every = 4; // sessions 0, 4, 8 go stale
    let (_, counters) = drive(config, 1);
    assert_eq!(counters.completed(), 12);
    assert_eq!(counters.handshakes_full(), 3);
    assert_eq!(counters.handshakes_resumed(), 9);
}

/// With `defer_verify` on, the degraded (full) handshakes park their
/// certificate checks for the shard's end-of-turn batch flush; the
/// storm still completes with identical resumed/full splits.
#[test]
fn batched_verification_matches_inline_outcome() {
    let mut inline_cfg = storm_load(12, 55);
    inline_cfg.stale_every = 3; // sessions 0, 3, 6, 9 go stale
    let mut deferred_cfg = inline_cfg.clone();
    deferred_cfg.defer_verify = true;

    let (_, inline) = drive(inline_cfg, 1);
    let (_, deferred) = drive(deferred_cfg, 1);

    assert_eq!(inline.completed(), 12);
    assert_eq!(deferred.completed(), 12);
    assert_eq!(inline.handshakes_full(), deferred.handshakes_full());
    assert_eq!(inline.handshakes_resumed(), deferred.handshakes_resumed());
    // Inline verification never reaches the batch path; deferred
    // verification pushes every full handshake's checks through it.
    assert_eq!(inline.verify_batches(), 0);
    assert!(deferred.verify_batches() > 0, "deferred checks must flush through batches");
    assert!(deferred.verify_checks() >= deferred.handshakes_full());
}

/// Same seed, batching enabled, two shards: double runs must replay
/// bit-identical merged traces and counters, and the trace must
/// carry the batch-size telemetry.
#[test]
fn storm_with_batching_is_bit_identical_across_runs() {
    let mut config = storm_load(14, 77);
    config.stale_every = 3;
    config.defer_verify = true;

    let (trace_a, counters_a) = drive(config.clone(), 2);
    let (trace_b, counters_b) = drive(config, 2);

    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "seeded storm must replay bit-identically");
    assert_eq!(counters_a, counters_b);
    let batch_events: Vec<_> = trace_a
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::HostVerifyBatch { groups, checks } => Some((groups, checks)),
            _ => None,
        })
        .collect();
    assert!(!batch_events.is_empty(), "batched turns must be visible in telemetry");
    assert!(batch_events.iter().all(|&(g, c)| g > 0 && c >= g));
}

/// Deferred verification also covers the non-storm path: full
/// handshakes with middlebox chains screen their middlebox
/// certificates through the same batch seam.
#[test]
fn batched_verification_covers_middlebox_screening() {
    let config = LoadConfig {
        sessions: 6,
        arrival_spacing: Duration::from_micros(400),
        middlebox_every: 2,
        latency: Duration::from_micros(50),
        workload: Workload { request_len: 256, response_len: 512, exchanges: 1 },
        seed: 91,
        resumption_storm: false,
        stale_every: 0,
        defer_verify: true,
        chain_mix: mbtls_host::ChainMix::PassThrough,
        auth_mode: mbtls_core::MiddleboxAuthMode::SgxAttested,
        read_only_path: false,
    };
    let (_, counters) = drive(config, 1);
    assert_eq!(counters.completed(), 6);
    assert_eq!(counters.handshakes_full(), 6);
    assert!(counters.verify_batches() > 0);
    // Every session owes at least its primary chain's checks; the
    // middlebox sessions owe their screening checks on top.
    assert!(counters.verify_checks() > 6);
}

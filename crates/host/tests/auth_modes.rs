//! Fleet scenarios under each middlebox authorization mode
//! (`MiddleboxAuthMode`): SGX-attested (paper mbTLS), delegated
//! credentials (mdTLS-style, DESIGN.md §6j), and the naive key-shared
//! baseline. Same seed, same arrival schedule, same workload — only
//! the trust mechanism changes, which is exactly the axis
//! `BENCH_auth.json` measures.

use mbtls_core::MiddleboxAuthMode;
use mbtls_host::{Host, HostConfig, LoadConfig, LoadGenerator, NetSubstrate, Workload};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_telemetry::{EventKind, Party, Recorder};

fn fleet(mode: MiddleboxAuthMode, seed: u64) -> LoadConfig {
    LoadConfig {
        sessions: 6,
        arrival_spacing: Duration::from_micros(400),
        middlebox_every: 2,
        latency: Duration::from_micros(50),
        workload: Workload { request_len: 256, response_len: 512, exchanges: 2 },
        seed,
        auth_mode: mode,
        ..LoadConfig::default()
    }
}

fn run(config: LoadConfig) -> (Vec<mbtls_telemetry::Event>, mbtls_host::HostCounters) {
    let recorder = Recorder::new();
    let seed = config.seed;
    let sessions = config.sessions;
    let mut generator = LoadGenerator::new(config);
    generator.set_telemetry(recorder.sink());
    let mut host = Host::new(HostConfig::default(), |_| NetSubstrate::new(seed));
    host.set_telemetry(recorder.sink());
    generator
        .drive(&mut host, SimTime::ZERO.plus(Duration::from_secs(120)))
        .expect("fleet drains");
    assert_eq!(host.counters().completed(), sessions as u64);
    (recorder.snapshot(), host.counters())
}

#[test]
fn delegated_fleet_completes_and_replays() {
    // Delegated middleboxes run the full secondary-handshake
    // authorization (credential verification on the client, key
    // delivery after approval), so reaching the data plane — visible
    // as middlebox decrypt events — proves the credentials verified.
    let (trace_a, counters_a) = run(fleet(MiddleboxAuthMode::Delegated, 61));
    let (trace_b, counters_b) = run(fleet(MiddleboxAuthMode::Delegated, 61));
    assert_eq!(trace_a, trace_b, "delegated fleet must replay bit-identically");
    assert_eq!(counters_a, counters_b);
    let mbox_decrypts = trace_a
        .iter()
        .filter(|e| {
            matches!(e.party, Party::Middlebox(_))
                && matches!(e.kind, EventKind::RecordDecrypt { .. })
        })
        .count();
    assert!(
        mbox_decrypts > 0,
        "delegated middleboxes must join the data plane (credential accepted)"
    );
}

#[test]
fn all_auth_modes_drain_the_same_schedule() {
    for mode in [
        MiddleboxAuthMode::SgxAttested,
        MiddleboxAuthMode::Delegated,
        MiddleboxAuthMode::KeyShared,
    ] {
        let (_, counters) = run(fleet(mode, 62));
        assert_eq!(counters.completed(), 6, "{} fleet must drain", mode.name());
    }
}

#[test]
fn key_shared_fleet_needs_no_authorization_handshake() {
    // The naive baseline's middleboxes are on-path relays with no
    // identity: no secondary handshakes, no middlebox crypto events —
    // the cheapness the bench measures and the security matrix
    // punishes.
    let (trace, counters) = run(fleet(MiddleboxAuthMode::KeyShared, 63));
    assert_eq!(counters.completed(), 6);
    let mbox_crypto = trace
        .iter()
        .filter(|e| {
            matches!(e.party, Party::Middlebox(_))
                && matches!(
                    e.kind,
                    EventKind::RecordDecrypt { .. } | EventKind::RecordEncrypt { .. }
                )
        })
        .count();
    assert_eq!(mbox_crypto, 0, "key-shared relays do no per-hop crypto");
}

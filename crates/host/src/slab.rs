//! Generational slab: the host's session table.
//!
//! Sessions are addressed by [`SessionId`] — a slot index plus a
//! generation. Freeing a slot bumps its generation, so an id held
//! past its session's eviction dangles *detectably*: every accessor
//! checks the generation and returns `None` for stale ids instead of
//! silently aliasing whatever session reused the slot. Slots are
//! recycled LIFO, which keeps the table dense under open/close churn.

/// Handle to one hosted session: slot index + generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId {
    index: u32,
    generation: u32,
}

impl SessionId {
    /// The slot index (stable only while this generation is live).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The slot generation this id is valid for.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}g{}", self.index, self.generation)
    }
}

struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + vacant).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Insert a value, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> SessionId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            entry.value = Some(value);
            SessionId { index, generation: entry.generation }
        } else {
            let index = self.entries.len() as u32;
            self.entries.push(Entry { generation: 0, value: Some(value) });
            SessionId { index, generation: 0 }
        }
    }

    /// The value for `id`, unless the id is stale or never existed.
    pub fn get(&self, id: SessionId) -> Option<&T> {
        self.entries
            .get(id.index as usize)
            .filter(|e| e.generation == id.generation)
            .and_then(|e| e.value.as_ref())
    }

    /// Mutable access, with the same staleness check as [`Slab::get`].
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut T> {
        self.entries
            .get_mut(id.index as usize)
            .filter(|e| e.generation == id.generation)
            .and_then(|e| e.value.as_mut())
    }

    /// True if `id` names a live session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.get(id).is_some()
    }

    /// The live id occupying slot `index`, if any. Used to map a
    /// substrate token (a bare slot index) back to a full
    /// generational id.
    pub fn id_at(&self, index: u32) -> Option<SessionId> {
        self.entries
            .get(index as usize)
            .filter(|e| e.value.is_some())
            .map(|e| SessionId { index, generation: e.generation })
    }

    /// Remove and return the value for `id`. Bumps the slot
    /// generation so the id (and any copies of it) go stale.
    pub fn remove(&mut self, id: SessionId) -> Option<T> {
        let entry = self
            .entries
            .get_mut(id.index as usize)
            .filter(|e| e.generation == id.generation)?;
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Iterate live sessions in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value
                .as_ref()
                .map(|v| (SessionId { index: i as u32, generation: e.generation }, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
    }

    #[test]
    fn stale_id_rejected_after_slot_reuse() {
        let mut slab = Slab::new();
        let first = slab.insert(1);
        slab.remove(first);
        let second = slab.insert(2);
        // LIFO free list: the slot is reused...
        assert_eq!(second.index(), first.index());
        // ...under a new generation, so the old id stays dead.
        assert_ne!(second.generation(), first.generation());
        assert_eq!(slab.get(first), None);
        assert!(!slab.contains(first));
        assert_eq!(slab.get_mut(first), None);
        assert_eq!(slab.remove(first), None);
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut slab = Slab::new();
        let id = slab.insert(9);
        assert_eq!(slab.remove(id), Some(9));
        assert_eq!(slab.remove(id), None);
        assert!(slab.is_empty());
    }

    #[test]
    fn iter_is_slot_ordered() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let _b = slab.insert("b");
        let _c = slab.insert("c");
        slab.remove(a);
        let order: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["b", "c"]);
    }
}

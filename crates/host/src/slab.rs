//! Generational slab: the host's session table.
//!
//! Sessions are addressed by [`SessionId`] — a slot index plus a
//! generation. Freeing a slot bumps its generation, so an id held
//! past its session's eviction dangles *detectably*: every accessor
//! checks the generation and returns `None` for stale ids instead of
//! silently aliasing whatever session reused the slot. Slots are
//! recycled LIFO, which keeps the table dense under open/close churn.
//!
//! # Shard encoding
//!
//! The 32-bit slot index carries the owning shard in its top
//! [`SessionId::SHARD_BITS`] bits and the shard-local slot in the low
//! [`SessionId::LOCAL_BITS`] bits. A slab is constructed *for* one
//! shard ([`Slab::for_shard`]) and stamps that shard into every id it
//! hands out; every accessor first checks the id's shard bits, so an
//! id minted by shard A presented to shard B's table is rejected
//! outright — cross-shard routing mistakes surface as a miss, never
//! as silent aliasing. [`Slab::new`] builds the shard-0 table, which
//! behaves exactly like the pre-sharding slab.

/// Handle to one hosted session: shard-tagged slot index +
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId {
    index: u32,
    generation: u32,
}

impl SessionId {
    /// Bits of the slot index reserved for the owning shard.
    pub const SHARD_BITS: u32 = 8;
    /// Bits of the slot index addressing a slot within one shard.
    pub const LOCAL_BITS: u32 = 32 - Self::SHARD_BITS;
    /// Maximum number of shards the encoding can address.
    pub const MAX_SHARDS: u16 = 1 << Self::SHARD_BITS;
    /// Maximum live sessions per shard.
    pub const MAX_LOCAL: u32 = 1 << Self::LOCAL_BITS;

    fn compose(shard: u16, local: u32) -> u32 {
        ((shard as u32) << Self::LOCAL_BITS) | local
    }

    /// The full slot index, shard bits included (stable only while
    /// this generation is live).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The shard this session is pinned to.
    pub fn shard(&self) -> u16 {
        (self.index >> Self::LOCAL_BITS) as u16
    }

    /// The slot index within the owning shard's table.
    pub fn local(&self) -> u32 {
        self.index & (Self::MAX_LOCAL - 1)
    }

    /// The slot generation this id is valid for.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}g{}", self.index, self.generation)
    }
}

struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab owned by one shard.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
    shard: u16,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty shard-0 slab (the single-shard configuration).
    pub fn new() -> Self {
        Slab::for_shard(0)
    }

    /// An empty slab whose ids carry `shard` in their index bits.
    pub fn for_shard(shard: u16) -> Self {
        Slab { entries: Vec::new(), free: Vec::new(), len: 0, shard }
    }

    /// The shard this table mints ids for.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + vacant).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// The shard-local slot this id addresses, unless the id belongs
    /// to a different shard.
    fn local_of(&self, id: SessionId) -> Option<usize> {
        (id.shard() == self.shard).then_some(id.local() as usize)
    }

    /// Insert a value, reusing the most recently freed slot if any.
    /// Returns `None` when the shard-local address space
    /// ([`SessionId::MAX_LOCAL`] slots) is exhausted.
    pub fn try_insert(&mut self, value: T) -> Option<SessionId> {
        if let Some(local) = self.free.pop() {
            self.len += 1;
            let entry = &mut self.entries[local as usize];
            entry.value = Some(value);
            return Some(SessionId {
                index: SessionId::compose(self.shard, local),
                generation: entry.generation,
            });
        }
        let local = self.entries.len() as u32;
        if local >= SessionId::MAX_LOCAL {
            return None;
        }
        self.len += 1;
        self.entries.push(Entry { generation: 0, value: Some(value) });
        Some(SessionId { index: SessionId::compose(self.shard, local), generation: 0 })
    }

    /// The value for `id`, unless the id is stale, shard-foreign, or
    /// never existed.
    pub fn get(&self, id: SessionId) -> Option<&T> {
        let local = self.local_of(id)?;
        self.entries
            .get(local)
            .filter(|e| e.generation == id.generation)
            .and_then(|e| e.value.as_ref())
    }

    /// Mutable access, with the same staleness and shard checks as
    /// [`Slab::get`].
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut T> {
        let local = self.local_of(id)?;
        self.entries
            .get_mut(local)
            .filter(|e| e.generation == id.generation)
            .and_then(|e| e.value.as_mut())
    }

    /// True if `id` names a live session in this shard's table.
    pub fn contains(&self, id: SessionId) -> bool {
        self.get(id).is_some()
    }

    /// The live id occupying shard-local slot `local`, if any. Used
    /// to map a substrate token (a bare shard-local slot index) back
    /// to a full generational id.
    pub fn id_at(&self, local: u32) -> Option<SessionId> {
        self.entries.get(local as usize).filter(|e| e.value.is_some()).map(|e| SessionId {
            index: SessionId::compose(self.shard, local),
            generation: e.generation,
        })
    }

    /// Remove and return the value for `id`. Bumps the slot
    /// generation so the id (and any copies of it) go stale.
    pub fn remove(&mut self, id: SessionId) -> Option<T> {
        let local = self.local_of(id)?;
        let entry =
            self.entries.get_mut(local).filter(|e| e.generation == id.generation)?;
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(local as u32);
        self.len -= 1;
        Some(value)
    }

    /// Iterate live sessions in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value.as_ref().map(|v| {
                (
                    SessionId {
                        index: SessionId::compose(self.shard, i as u32),
                        generation: e.generation,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.try_insert("a").unwrap();
        let b = slab.try_insert("b").unwrap();
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
    }

    #[test]
    fn stale_id_rejected_after_slot_reuse() {
        let mut slab = Slab::new();
        let first = slab.try_insert(1).unwrap();
        slab.remove(first);
        let second = slab.try_insert(2).unwrap();
        // LIFO free list: the slot is reused...
        assert_eq!(second.index(), first.index());
        // ...under a new generation, so the old id stays dead.
        assert_ne!(second.generation(), first.generation());
        assert_eq!(slab.get(first), None);
        assert!(!slab.contains(first));
        assert_eq!(slab.get_mut(first), None);
        assert_eq!(slab.remove(first), None);
        assert_eq!(slab.get(second), Some(&2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut slab = Slab::new();
        let id = slab.try_insert(9).unwrap();
        assert_eq!(slab.remove(id), Some(9));
        assert_eq!(slab.remove(id), None);
        assert!(slab.is_empty());
    }

    #[test]
    fn iter_is_slot_ordered() {
        let mut slab = Slab::new();
        let a = slab.try_insert("a").unwrap();
        let _b = slab.try_insert("b").unwrap();
        let _c = slab.try_insert("c").unwrap();
        slab.remove(a);
        let order: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["b", "c"]);
    }

    #[test]
    fn shard_bits_round_trip() {
        let mut slab = Slab::for_shard(7);
        let id = slab.try_insert("x").unwrap();
        assert_eq!(id.shard(), 7);
        assert_eq!(id.local(), 0);
        assert_eq!(id.index(), 7 << SessionId::LOCAL_BITS);
        assert_eq!(slab.get(id), Some(&"x"));
        assert_eq!(slab.id_at(0), Some(id));
    }

    #[test]
    fn foreign_shard_id_rejected_even_with_matching_slot() {
        let mut a = Slab::for_shard(1);
        let mut b = Slab::for_shard(2);
        let id_a = a.try_insert("in-a").unwrap();
        let id_b = b.try_insert("in-b").unwrap();
        // Same local slot and generation — only the shard differs.
        assert_eq!(id_a.local(), id_b.local());
        assert_eq!(id_a.generation(), id_b.generation());
        assert_eq!(b.get(id_a), None);
        assert_eq!(a.get(id_b), None);
        assert_eq!(b.remove(id_a), None);
        assert!(!b.contains(id_a));
        assert_eq!(b.get(id_b), Some(&"in-b"));
    }
}

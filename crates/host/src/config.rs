//! Validated host configuration.
//!
//! [`HostConfig`] follows the builder convention mbtls-core's config
//! types established: a chainable [`HostConfigBuilder`] whose
//! [`build`](HostConfigBuilder::build) rejects zero and overflowing
//! values with a typed [`HostConfigError`] instead of letting a bad
//! knob surface later as a hung event loop or a panicking shift. The
//! built config is opaque — fields are read through accessors, so
//! invariants checked at build time hold for the config's lifetime.

use mbtls_netsim::time::Duration;

use crate::slab::SessionId;

/// Why a [`HostConfigBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostConfigError {
    /// Shard count must be at least 1.
    ZeroShards,
    /// Shard count exceeds what the [`SessionId`] encoding can
    /// address ([`SessionId::MAX_SHARDS`]).
    TooManyShards {
        /// The rejected shard count.
        got: u32,
    },
    /// A duration knob was zero; the field name says which.
    ZeroDuration(&'static str),
    /// Handshake attempts must be at least 1.
    ZeroAttempts,
    /// The pump pass cap must be at least 1.
    ZeroPumpPasses,
    /// The ticket cache capacity must be at least 1.
    ZeroTicketCap,
    /// Retry backoff doubled per attempt would overflow virtual time
    /// (`backoff × 2^attempts` exceeds `u64` nanoseconds).
    BackoffOverflow,
}

impl std::fmt::Display for HostConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            HostConfigError::TooManyShards { got } => write!(
                f,
                "shard count {got} exceeds the SessionId encoding limit of {}",
                SessionId::MAX_SHARDS
            ),
            HostConfigError::ZeroDuration(field) => write!(f, "{field} must be non-zero"),
            HostConfigError::ZeroAttempts => write!(f, "handshake attempts must be at least 1"),
            HostConfigError::ZeroPumpPasses => write!(f, "pump pass cap must be at least 1"),
            HostConfigError::ZeroTicketCap => {
                write!(f, "ticket cache capacity must be at least 1")
            }
            HostConfigError::BackoffOverflow => {
                write!(f, "retry backoff doubled per attempt overflows virtual time")
            }
        }
    }
}

impl std::error::Error for HostConfigError {}

/// Host tuning knobs, validated at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostConfig {
    shards: u16,
    handshake_timeout: Duration,
    handshake_attempts: u32,
    retry_backoff: Duration,
    idle_timeout: Duration,
    ticket_ttl: Duration,
    ticket_cache_cap: usize,
    max_pump_passes: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        // The builder defaults are valid by construction.
        match HostConfig::builder().build() {
            Ok(config) => config,
            Err(_) => unreachable!("builder defaults are valid"),
        }
    }
}

impl HostConfig {
    /// Start from the defaults: 1 shard, 1 s handshake timeout, 3
    /// attempts, 1 s base retry backoff, 30 s idle eviction, 300 s
    /// ticket TTL, 65 536-entry ticket cache, 8-pass pump cap.
    pub fn builder() -> HostConfigBuilder {
        HostConfigBuilder {
            shards: 1,
            handshake_timeout: Duration::from_millis(1_000),
            handshake_attempts: 3,
            retry_backoff: None,
            idle_timeout: Duration::from_secs(30),
            ticket_ttl: Duration::from_secs(300),
            ticket_cache_cap: 65_536,
            max_pump_passes: 8,
        }
    }

    /// Worker shards the host splits its session table across.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Deadline for the first handshake attempt.
    pub fn handshake_timeout(&self) -> Duration {
        self.handshake_timeout
    }

    /// Total handshake attempts before the session fails with a
    /// timeout (1 = no retries).
    pub fn handshake_attempts(&self) -> u32 {
        self.handshake_attempts
    }

    /// Base retry backoff; attempt `n` waits `backoff × 2^n`.
    pub fn retry_backoff(&self) -> Duration {
        self.retry_backoff
    }

    /// Established sessions idle this long are evicted.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    /// Lifetime of cached session tickets.
    pub fn ticket_ttl(&self) -> Duration {
        self.ticket_ttl
    }

    /// Per-shard ticket-cache capacity; the oldest ticket is dropped
    /// when a new one would exceed it.
    pub fn ticket_cache_cap(&self) -> usize {
        self.ticket_cache_cap
    }

    /// Per-service chain-pump pass cap (backpressure): a session
    /// still moving bytes after this many passes is requeued behind
    /// its peers instead of pumped to fixpoint.
    pub fn max_pump_passes(&self) -> usize {
        self.max_pump_passes
    }
}

/// Chainable builder for [`HostConfig`]; see
/// [`HostConfig::builder`] for the defaults.
#[derive(Debug, Clone)]
pub struct HostConfigBuilder {
    shards: u32,
    handshake_timeout: Duration,
    handshake_attempts: u32,
    /// `None` = follow `handshake_timeout` (the historical behavior).
    retry_backoff: Option<Duration>,
    idle_timeout: Duration,
    ticket_ttl: Duration,
    ticket_cache_cap: usize,
    max_pump_passes: usize,
}

impl HostConfigBuilder {
    /// Worker shards to split the session table across.
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Deadline for the first handshake attempt.
    pub fn handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Total handshake attempts (1 = no retries).
    pub fn handshake_attempts(mut self, attempts: u32) -> Self {
        self.handshake_attempts = attempts;
        self
    }

    /// Base retry backoff (attempt `n` waits `backoff × 2^n`).
    /// Defaults to the handshake timeout when not set.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = Some(backoff);
        self
    }

    /// Idle-eviction deadline for established sessions.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Lifetime of cached session tickets.
    pub fn ticket_ttl(mut self, ttl: Duration) -> Self {
        self.ticket_ttl = ttl;
        self
    }

    /// Per-shard ticket-cache capacity.
    pub fn ticket_cache_cap(mut self, cap: usize) -> Self {
        self.ticket_cache_cap = cap;
        self
    }

    /// Per-service chain-pump pass cap.
    pub fn max_pump_passes(mut self, passes: usize) -> Self {
        self.max_pump_passes = passes;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<HostConfig, HostConfigError> {
        if self.shards == 0 {
            return Err(HostConfigError::ZeroShards);
        }
        if self.shards > SessionId::MAX_SHARDS as u32 {
            return Err(HostConfigError::TooManyShards { got: self.shards });
        }
        if self.handshake_timeout == Duration::ZERO {
            return Err(HostConfigError::ZeroDuration("handshake timeout"));
        }
        if self.handshake_attempts == 0 {
            return Err(HostConfigError::ZeroAttempts);
        }
        if self.idle_timeout == Duration::ZERO {
            return Err(HostConfigError::ZeroDuration("idle timeout"));
        }
        if self.ticket_ttl == Duration::ZERO {
            return Err(HostConfigError::ZeroDuration("ticket TTL"));
        }
        if self.ticket_cache_cap == 0 {
            return Err(HostConfigError::ZeroTicketCap);
        }
        if self.max_pump_passes == 0 {
            return Err(HostConfigError::ZeroPumpPasses);
        }
        let retry_backoff = self.retry_backoff.unwrap_or(self.handshake_timeout);
        if retry_backoff == Duration::ZERO {
            return Err(HostConfigError::ZeroDuration("retry backoff"));
        }
        // The retry path shifts the base by the attempt number; make
        // sure the largest shift the config can produce stays inside
        // u64 nanoseconds.
        let max_shift = self.handshake_attempts.min(63);
        if self.handshake_attempts > 63
            || retry_backoff.0.checked_mul(1u64 << max_shift).is_none()
        {
            return Err(HostConfigError::BackoffOverflow);
        }
        Ok(HostConfig {
            shards: self.shards as u16,
            handshake_timeout: self.handshake_timeout,
            handshake_attempts: self.handshake_attempts,
            retry_backoff,
            idle_timeout: self.idle_timeout,
            ticket_ttl: self.ticket_ttl,
            ticket_cache_cap: self.ticket_cache_cap,
            max_pump_passes: self.max_pump_passes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_match_historical_values() {
        let c = HostConfig::default();
        assert_eq!(c.shards(), 1);
        assert_eq!(c.handshake_timeout(), Duration::from_millis(1_000));
        assert_eq!(c.handshake_attempts(), 3);
        assert_eq!(c.retry_backoff(), Duration::from_millis(1_000));
        assert_eq!(c.idle_timeout(), Duration::from_secs(30));
        assert_eq!(c.ticket_ttl(), Duration::from_secs(300));
        assert_eq!(c.max_pump_passes(), 8);
    }

    #[test]
    fn zero_values_rejected_with_typed_errors() {
        assert_eq!(
            HostConfig::builder().shards(0).build().unwrap_err(),
            HostConfigError::ZeroShards
        );
        assert_eq!(
            HostConfig::builder().handshake_timeout(Duration::ZERO).build().unwrap_err(),
            HostConfigError::ZeroDuration("handshake timeout")
        );
        assert_eq!(
            HostConfig::builder().handshake_attempts(0).build().unwrap_err(),
            HostConfigError::ZeroAttempts
        );
        assert_eq!(
            HostConfig::builder().retry_backoff(Duration::ZERO).build().unwrap_err(),
            HostConfigError::ZeroDuration("retry backoff")
        );
        assert_eq!(
            HostConfig::builder().idle_timeout(Duration::ZERO).build().unwrap_err(),
            HostConfigError::ZeroDuration("idle timeout")
        );
        assert_eq!(
            HostConfig::builder().ticket_ttl(Duration::ZERO).build().unwrap_err(),
            HostConfigError::ZeroDuration("ticket TTL")
        );
        assert_eq!(
            HostConfig::builder().ticket_cache_cap(0).build().unwrap_err(),
            HostConfigError::ZeroTicketCap
        );
        assert_eq!(
            HostConfig::builder().max_pump_passes(0).build().unwrap_err(),
            HostConfigError::ZeroPumpPasses
        );
    }

    #[test]
    fn overflowing_values_rejected() {
        assert_eq!(
            HostConfig::builder().shards(100_000).build().unwrap_err(),
            HostConfigError::TooManyShards { got: 100_000 }
        );
        assert_eq!(
            HostConfig::builder().handshake_attempts(64).build().unwrap_err(),
            HostConfigError::BackoffOverflow
        );
        assert_eq!(
            HostConfig::builder()
                .retry_backoff(Duration(u64::MAX / 2))
                .handshake_attempts(3)
                .build()
                .unwrap_err(),
            HostConfigError::BackoffOverflow
        );
    }

    #[test]
    fn shard_count_bounds() {
        assert!(HostConfig::builder().shards(SessionId::MAX_SHARDS as u32).build().is_ok());
        assert_eq!(
            HostConfig::builder()
                .shards(SessionId::MAX_SHARDS as u32 + 1)
                .build()
                .unwrap_err(),
            HostConfigError::TooManyShards { got: SessionId::MAX_SHARDS as u32 + 1 }
        );
    }

    #[test]
    fn retry_backoff_defaults_to_handshake_timeout() {
        let c = HostConfig::builder()
            .handshake_timeout(Duration::from_millis(250))
            .build()
            .unwrap();
        assert_eq!(c.retry_backoff(), Duration::from_millis(250));
        let c = HostConfig::builder()
            .handshake_timeout(Duration::from_millis(250))
            .retry_backoff(Duration::from_millis(40))
            .build()
            .unwrap();
        assert_eq!(c.retry_backoff(), Duration::from_millis(40));
    }
}

//! The sharded session host: an opaque facade over per-worker
//! [`Shard`] reactors.
//!
//! [`Host`] is the front door. It owns `config.shards()` reactors,
//! each with a private substrate, session table, timer wheel, ready
//! queue, and buffer pool, and routes every operation by the shard
//! index encoded in [`SessionId`]:
//!
//! * **admission** goes through the [`ShardMux`]'s per-shard inbox
//!   rings — deterministic round-robin pinning (or explicit placement
//!   via [`Host::open_on`]);
//! * **steering** after admission needs no table at all: the id *is*
//!   the route;
//! * **telemetry** is recorded per shard (each with its own virtual
//!   clock) and merged into one deterministic trace with
//!   [`mbtls_telemetry::merge_shard_traces`] — stable order by
//!   `(ts_ns, shard)`.
//!
//! Because shards share nothing, any schedule that runs each shard's
//! own events in order produces the same per-shard state and trace;
//! [`Host::run`] drives shards to completion sequentially (the
//! single-core stand-in for parallel workers), while [`Host::step`]
//! interleaves them in global virtual-time order for lock-step
//! drivers. Both yield identical merged traces.

use mbtls_core::driver::Chain;
use mbtls_core::MbError;
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;
use mbtls_telemetry::{Recorder, SharedSink};

use crate::config::HostConfig;
use crate::mux::ShardMux;
use crate::session::{SessionOutcome, Workload};
use crate::shard::Shard;
use crate::slab::SessionId;
use crate::substrate::Substrate;

/// Everything needed to admit one session.
pub struct SessionSpec {
    /// The party chain (client, middleboxes, server), pre-built.
    pub chain: Chain,
    /// Per-link one-way latency in the substrate.
    pub latency: Duration,
    /// Fault injection for the session's links.
    pub faults: FaultConfig,
    /// Post-handshake workload.
    pub workload: Workload,
}

/// Deterministic host statistics. Two runs with the same seed and
/// churn schedule produce identical values (the determinism test
/// compares these alongside the telemetry trace). Fields are private:
/// read through the accessors, aggregate across shards with
/// [`HostCounters::merge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostCounters {
    pub(crate) opened: u64,
    pub(crate) completed: u64,
    pub(crate) timed_out: u64,
    pub(crate) evicted: u64,
    pub(crate) failed: u64,
    pub(crate) retries: u64,
    pub(crate) tickets_expired: u64,
    pub(crate) bytes_moved: u64,
    pub(crate) exchanges_completed: u64,
    pub(crate) handshakes_full: u64,
    pub(crate) handshakes_resumed: u64,
    pub(crate) verify_batches: u64,
    pub(crate) verify_checks: u64,
    pub(crate) handshake_latencies_ns: Vec<u64>,
}

impl HostCounters {
    /// Sessions admitted.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Sessions that completed their workload.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Sessions failed by handshake timeout.
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Sessions evicted idle.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Sessions failed by a party error.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Handshake retries performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Session tickets dropped at expiry or displaced by the cache
    /// cap.
    pub fn tickets_expired(&self) -> u64 {
        self.tickets_expired
    }

    /// Wire bytes pushed into the substrate, all sessions.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Request/response exchanges completed, all sessions.
    pub fn exchanges_completed(&self) -> u64 {
        self.exchanges_completed
    }

    /// Handshakes that completed the full flight (certificate and
    /// key exchange), including resumption attempts the server
    /// rejected (stale or corrupted tickets degrade here).
    pub fn handshakes_full(&self) -> u64 {
        self.handshakes_full
    }

    /// Handshakes abbreviated by ticket or session-id resumption —
    /// no certificate chain sent, no signature checks owed.
    pub fn handshakes_resumed(&self) -> u64 {
        self.handshakes_resumed
    }

    /// Batched signature-verification flushes performed.
    pub fn verify_batches(&self) -> u64 {
        self.verify_batches
    }

    /// Individual signature checks that went through a batched flush
    /// instead of inline verification.
    pub fn verify_checks(&self) -> u64 {
        self.verify_checks
    }

    /// Per-session open→handshake-done latency, in virtual
    /// nanoseconds, in completion order.
    pub fn handshake_latencies_ns(&self) -> &[u64] {
        &self.handshake_latencies_ns
    }

    /// Aggregate per-shard counters into fleet totals. Scalar
    /// counters sum; handshake latencies concatenate in shard order
    /// (deterministic, since each shard's list is in its own
    /// completion order).
    pub fn merge(shards: &[Self]) -> Self {
        let mut total = HostCounters::default();
        for c in shards {
            total.opened += c.opened;
            total.completed += c.completed;
            total.timed_out += c.timed_out;
            total.evicted += c.evicted;
            total.failed += c.failed;
            total.retries += c.retries;
            total.tickets_expired += c.tickets_expired;
            total.bytes_moved += c.bytes_moved;
            total.exchanges_completed += c.exchanges_completed;
            total.handshakes_full += c.handshakes_full;
            total.handshakes_resumed += c.handshakes_resumed;
            total.verify_batches += c.verify_batches;
            total.verify_checks += c.verify_checks;
            total.handshake_latencies_ns.extend_from_slice(&c.handshake_latencies_ns);
        }
        total
    }
}

/// Anything the load generator can drive: a whole [`Host`] or a
/// single [`Shard`] (the scale bench times shards individually).
pub trait Reactor {
    /// Admit one session.
    fn open(&mut self, spec: SessionSpec) -> Result<SessionId, MbError>;
    /// Live sessions.
    fn live(&self) -> usize;
    /// Current virtual time (the latest shard clock for a host).
    fn now(&self) -> SimTime;
    /// True if sessions are queued for service right now.
    fn has_ready(&self) -> bool;
    /// One event-loop turn; false when nothing is left to do.
    fn step(&mut self) -> Result<bool, MbError>;
    /// The next scheduled instant, ignoring the ready queue.
    fn next_event(&mut self) -> Option<SimTime>;
    /// Advance virtual time, firing whatever comes due on the way.
    fn advance_clock(&mut self, t: SimTime);
}

/// The sharded session host facade.
pub struct Host<S: Substrate> {
    shards: Vec<Shard<S>>,
    mux: ShardMux,
}

impl<S: Substrate> Host<S> {
    /// A host with `config.shards()` reactors; `substrate_for` is
    /// called once per shard to build that worker's private
    /// substrate (give each its own seed for independent fault
    /// randomness).
    pub fn new(config: HostConfig, mut substrate_for: impl FnMut(u16) -> S) -> Self {
        let n = config.shards();
        let shards = (0..n).map(|k| Shard::new(k, substrate_for(k), config.clone())).collect();
        Host { shards, mux: ShardMux::new(n) }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> u16 {
        self.shards.len() as u16
    }

    /// One shard reactor (read access).
    pub fn shard(&self, shard: u16) -> &Shard<S> {
        &self.shards[shard as usize]
    }

    /// One shard reactor (mutable — bench drivers run shards
    /// directly to time them individually).
    pub fn shard_mut(&mut self, shard: u16) -> &mut Shard<S> {
        &mut self.shards[shard as usize]
    }

    /// Admit a session; the mux pins it to a shard by deterministic
    /// round-robin and the returned [`SessionId`] encodes the choice.
    pub fn open(&mut self, spec: SessionSpec) -> Result<SessionId, MbError> {
        let shard = self.mux.route_open(spec);
        self.drain_admissions(shard)
    }

    /// Admit a session on an explicit shard (load slicing).
    pub fn open_on(&mut self, shard: u16, spec: SessionSpec) -> Result<SessionId, MbError> {
        if shard >= self.shards() {
            return Err(MbError::unexpected_state("open_on: no such shard"));
        }
        self.mux.route_open_on(shard, spec);
        self.drain_admissions(shard)
    }

    /// Drain `shard`'s inbox ring into the reactor; the id of the
    /// last admission comes back to the caller.
    fn drain_admissions(&mut self, shard: u16) -> Result<SessionId, MbError> {
        let mut last = None;
        while let Some(spec) = self.mux.take_admission(shard) {
            last = Some(self.shards[shard as usize].open(spec)?);
        }
        last.ok_or_else(|| MbError::unexpected_state("admission ring drained empty"))
    }

    /// Live sessions across every shard.
    pub fn live(&self) -> usize {
        self.shards.iter().map(Shard::live).sum()
    }

    /// Fleet-wide statistics: every shard's counters merged.
    pub fn counters(&self) -> HostCounters {
        let per_shard: Vec<HostCounters> =
            self.shards.iter().map(|s| s.counters().clone()).collect();
        HostCounters::merge(&per_shard)
    }

    /// One shard's statistics.
    pub fn shard_counters(&self, shard: u16) -> &HostCounters {
        self.shards[shard as usize].counters()
    }

    /// Finished-session outcomes, shard by shard in shard order
    /// (each shard's slice in its own finish order).
    pub fn take_results(&mut self) -> Vec<(SessionId, SessionOutcome)> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            all.append(&mut shard.take_results());
        }
        all
    }

    /// Buffer-pool statistics summed over shards: `(acquired, served
    /// without allocating)`.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.shards.iter().map(Shard::pool_stats).fold((0, 0), |(a, s), (a2, s2)| {
            (a + a2, s + s2)
        })
    }

    /// Session tickets currently cached, all shards.
    pub fn cached_tickets(&self) -> usize {
        self.shards.iter().map(Shard::cached_tickets).sum()
    }

    /// Shard-0 substrate access — the single-shard convenience for
    /// tests installing adversary hooks. Multi-shard hosts address a
    /// specific worker via [`Host::shard_mut`].
    pub fn substrate_mut(&mut self) -> &mut S {
        self.shards[0].substrate_mut()
    }

    /// Attach one telemetry sink to the shard-0 reactor — the
    /// single-shard convenience. A multi-shard host needs one sink
    /// (and one clock) per worker: use [`Host::record_telemetry`] or
    /// attach per shard via [`Host::shard_mut`].
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        self.shards[0].set_telemetry(sink);
    }

    /// Attach a fresh [`Recorder`] (own clock) to every shard and
    /// return them in shard order. Merge the snapshots with
    /// [`mbtls_telemetry::merge_shard_traces`] for the deterministic
    /// fleet trace.
    pub fn record_telemetry(&mut self) -> Vec<Recorder> {
        self.shards
            .iter_mut()
            .map(|shard| {
                let recorder = Recorder::new();
                shard.set_telemetry(recorder.sink());
                recorder
            })
            .collect()
    }

    /// Run every shard's event loop to completion (sequentially —
    /// the single-core stand-in for parallel workers; shards share
    /// nothing, so the merged outcome is schedule-independent).
    /// Errors if any shard exceeds `deadline` in virtual time.
    pub fn run(&mut self, deadline: SimTime) -> Result<(), MbError> {
        for shard in &mut self.shards {
            shard.run(deadline)?;
        }
        Ok(())
    }

    /// The latest shard clock: the fleet's virtual-time frontier.
    pub fn now(&self) -> SimTime {
        self.shards.iter().map(Shard::now).max().unwrap_or(SimTime::ZERO)
    }

    /// True if any shard has sessions queued for service.
    pub fn has_ready(&self) -> bool {
        self.shards.iter().any(Shard::has_ready)
    }

    /// Service every shard with queued work; if all are quiet,
    /// advance the shard with the earliest pending event (ties break
    /// by shard index). Interleaving in global virtual-time order
    /// keeps lock-step drivers (e.g. the load generator) exact.
    pub fn step(&mut self) -> Result<bool, MbError> {
        let mut serviced = false;
        for shard in &mut self.shards {
            if shard.has_ready() {
                serviced |= shard.step()?;
            }
        }
        if serviced {
            return Ok(true);
        }
        let target = self
            .shards
            .iter_mut()
            .enumerate()
            .filter_map(|(k, shard)| shard.next_event().map(|t| (t, k)))
            .min();
        match target {
            Some((_, k)) => self.shards[k].step(),
            None => Ok(false),
        }
    }

    /// The earliest pending instant across every shard.
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.shards.iter_mut().filter_map(Shard::next_event).min()
    }

    /// Advance every shard's virtual time to `t`, firing whatever
    /// comes due on the way.
    pub fn advance_clock(&mut self, t: SimTime) {
        for shard in &mut self.shards {
            shard.advance_clock(t);
        }
    }
}

impl<S: Substrate> Reactor for Host<S> {
    fn open(&mut self, spec: SessionSpec) -> Result<SessionId, MbError> {
        Host::open(self, spec)
    }

    fn live(&self) -> usize {
        Host::live(self)
    }

    fn now(&self) -> SimTime {
        Host::now(self)
    }

    fn has_ready(&self) -> bool {
        Host::has_ready(self)
    }

    fn step(&mut self) -> Result<bool, MbError> {
        Host::step(self)
    }

    fn next_event(&mut self) -> Option<SimTime> {
        Host::next_event(self)
    }

    fn advance_clock(&mut self, t: SimTime) {
        Host::advance_clock(self, t)
    }
}

impl<S: Substrate> Reactor for Shard<S> {
    fn open(&mut self, spec: SessionSpec) -> Result<SessionId, MbError> {
        Shard::open(self, spec)
    }

    fn live(&self) -> usize {
        Shard::live(self)
    }

    fn now(&self) -> SimTime {
        Shard::now(self)
    }

    fn has_ready(&self) -> bool {
        Shard::has_ready(self)
    }

    fn step(&mut self) -> Result<bool, MbError> {
        Shard::step(self)
    }

    fn next_event(&mut self) -> Option<SimTime> {
        Shard::next_event(self)
    }

    fn advance_clock(&mut self, t: SimTime) {
        Shard::advance_clock(self, t)
    }
}

//! Byte-moving substrates the host multiplexes sessions over.
//!
//! A [`Substrate`] owns the transport under every hosted session and
//! the virtual clock. Two implementations:
//!
//! * [`NetSubstrate`] — one shared deterministic network simulator;
//!   each session gets its own nodes and per-link connections, so
//!   latency, bandwidth, and fault injection apply per session while
//!   one event heap schedules the whole fleet.
//! * [`PipeSubstrate`] — zero-latency in-memory buffers per session;
//!   no transport events, so sessions progress as fast as the host
//!   pumps them. This is the allocation-measurement and CPU-bound
//!   throughput configuration.
//!
//! Both meter bytes moved per session, which the host aggregates
//! into its scale-report statistics.

use mbtls_core::driver::{Chain, ChainLinks, PipeLinks};
use mbtls_core::MbError;
use mbtls_netsim::net::{ConnId, Network, NodeId};
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;
use mbtls_telemetry::SharedSink;

/// What one bounded pump of a session observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PumpOutcome {
    /// Any bytes moved between the chain and the substrate.
    pub moved: bool,
    /// The pass budget ran out while bytes were still moving — the
    /// session must be rescheduled rather than pumped to fixpoint
    /// (per-session backpressure).
    pub saturated: bool,
    /// Wire bytes the session pushed into the substrate.
    pub bytes: u64,
}

/// The transport under a session host.
pub trait Substrate {
    /// Provision transport for session `token` with `links` links.
    fn open(
        &mut self,
        token: usize,
        links: usize,
        latency: Duration,
        faults: &FaultConfig,
    ) -> Result<(), MbError>;

    /// Tear down session `token`'s transport.
    fn close(&mut self, token: usize);

    /// Move bytes between `chain` and session `token`'s links, at
    /// most `max_passes` full chain passes (the backpressure cap).
    fn pump(
        &mut self,
        token: usize,
        chain: &mut Chain,
        max_passes: usize,
    ) -> Result<PumpOutcome, MbError>;

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Advance virtual time (never backwards).
    fn advance_to(&mut self, t: SimTime);

    /// Earliest future transport event, if any.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Token of a session with transport bytes deliverable now, if
    /// any. May repeat tokens; the host dedups via its ready queue.
    fn pop_due(&mut self) -> Option<usize>;

    /// Attach a telemetry sink (clock is kept in lock-step).
    fn set_telemetry(&mut self, sink: SharedSink);
}

/// Per-session simulator state.
struct SessionNet {
    nodes: Vec<NodeId>,
    conns: Vec<ConnId>,
}

/// Substrate over the deterministic network simulator.
pub struct NetSubstrate {
    net: Network,
    sessions: Vec<Option<SessionNet>>,
    /// Connection index → owning session token.
    conn_owner: Vec<Option<usize>>,
}

impl NetSubstrate {
    /// Wrap a simulator seeded for fault randomness.
    pub fn new(seed: u64) -> Self {
        NetSubstrate { net: Network::new(seed), sessions: Vec::new(), conn_owner: Vec::new() }
    }

    /// The underlying network (e.g. for adversary hooks in tests).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }
}

/// [`ChainLinks`] over one session's connections, metering sent
/// bytes.
struct NetChainLinks<'a> {
    net: &'a mut Network,
    nodes: &'a [NodeId],
    conns: &'a [ConnId],
    bytes: &'a mut u64,
}

impl ChainLinks for NetChainLinks<'_> {
    fn recv_rightward(&mut self, link: usize) -> Result<Vec<u8>, MbError> {
        Ok(self.net.recv(self.conns[link], self.nodes[link + 1])?)
    }
    fn recv_leftward(&mut self, link: usize) -> Result<Vec<u8>, MbError> {
        Ok(self.net.recv(self.conns[link], self.nodes[link])?)
    }
    fn send_rightward(&mut self, link: usize, from: usize, data: &[u8]) -> Result<(), MbError> {
        *self.bytes += data.len() as u64;
        Ok(self.net.send(self.conns[link], self.nodes[from], data)?)
    }
    fn send_leftward(&mut self, link: usize, from: usize, data: &[u8]) -> Result<(), MbError> {
        *self.bytes += data.len() as u64;
        Ok(self.net.send(self.conns[link], self.nodes[from], data)?)
    }
}

impl Substrate for NetSubstrate {
    fn open(
        &mut self,
        token: usize,
        links: usize,
        latency: Duration,
        faults: &FaultConfig,
    ) -> Result<(), MbError> {
        if self.sessions.len() <= token {
            self.sessions.resize_with(token + 1, || None);
        }
        let mut nodes = Vec::with_capacity(links + 1);
        for i in 0..=links {
            nodes.push(self.net.add_node(&format!("s{token}p{i}")));
        }
        let mut conns = Vec::with_capacity(links);
        for i in 0..links {
            let conn = self.net.connect_with(nodes[i], nodes[i + 1], latency, None, faults.clone());
            if self.conn_owner.len() <= conn.0 {
                self.conn_owner.resize(conn.0 + 1, None);
            }
            self.conn_owner[conn.0] = Some(token);
            conns.push(conn);
        }
        self.sessions[token] = Some(SessionNet { nodes, conns });
        Ok(())
    }

    fn close(&mut self, token: usize) {
        if let Some(Some(sess)) = self.sessions.get_mut(token).map(Option::take) {
            // Release (not just reset) so the simulator recycles the
            // slots: at a million-session churn the arenas stay sized
            // to the concurrent population, not the all-time total.
            for conn in sess.conns {
                self.net.release_conn(conn);
                self.conn_owner[conn.0] = None;
            }
            for node in sess.nodes {
                self.net.release_node(node);
            }
        }
    }

    fn pump(
        &mut self,
        token: usize,
        chain: &mut Chain,
        max_passes: usize,
    ) -> Result<PumpOutcome, MbError> {
        let sess = self
            .sessions
            .get(token)
            .and_then(Option::as_ref)
            .ok_or_else(|| MbError::unexpected_state("pump on closed substrate session"))?;
        let mut outcome = PumpOutcome::default();
        let mut links = NetChainLinks {
            net: &mut self.net,
            nodes: &sess.nodes,
            conns: &sess.conns,
            bytes: &mut outcome.bytes,
        };
        for pass in 0..max_passes {
            if !chain.pump_with(&mut links)? {
                return Ok(outcome);
            }
            outcome.moved = true;
            outcome.saturated = pass + 1 == max_passes;
        }
        Ok(outcome)
    }

    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn advance_to(&mut self, t: SimTime) {
        self.net.advance_to(t);
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.net.next_event_time()
    }

    fn pop_due(&mut self) -> Option<usize> {
        while let Some(conn) = self.net.pop_due() {
            if let Some(&Some(token)) = self.conn_owner.get(conn.0) {
                return Some(token);
            }
            // Orphaned conn (session already closed): drain so the
            // entry doesn't resurface, then keep looking.
            let _ = conn;
        }
        None
    }

    fn set_telemetry(&mut self, sink: SharedSink) {
        self.net.set_telemetry(sink);
    }
}

/// Substrate over zero-latency in-memory pipes, one [`PipeLinks`]
/// per session. Virtual time only moves when the host advances it
/// (timers still work); bytes arrive the instant they are sent.
#[derive(Default)]
pub struct PipeSubstrate {
    sessions: Vec<Option<PipeLinks>>,
    now: SimTime,
    telemetry: Option<SharedSink>,
}

impl PipeSubstrate {
    /// An empty pipe substrate at time zero.
    pub fn new() -> Self {
        PipeSubstrate::default()
    }
}

/// Metering wrapper: delegates to the session's [`PipeLinks`]
/// (keeping its zero-allocation `_into` paths) while counting sent
/// bytes.
struct MeteredPipeLinks<'a> {
    inner: &'a mut PipeLinks,
    bytes: &'a mut u64,
}

impl ChainLinks for MeteredPipeLinks<'_> {
    fn recv_rightward(&mut self, link: usize) -> Result<Vec<u8>, MbError> {
        self.inner.recv_rightward(link)
    }
    fn recv_leftward(&mut self, link: usize) -> Result<Vec<u8>, MbError> {
        self.inner.recv_leftward(link)
    }
    fn send_rightward(&mut self, link: usize, from: usize, data: &[u8]) -> Result<(), MbError> {
        *self.bytes += data.len() as u64;
        self.inner.send_rightward(link, from, data)
    }
    fn send_leftward(&mut self, link: usize, from: usize, data: &[u8]) -> Result<(), MbError> {
        *self.bytes += data.len() as u64;
        self.inner.send_leftward(link, from, data)
    }
    fn recv_rightward_into(&mut self, link: usize, dst: &mut Vec<u8>) -> Result<bool, MbError> {
        self.inner.recv_rightward_into(link, dst)
    }
    fn recv_leftward_into(&mut self, link: usize, dst: &mut Vec<u8>) -> Result<bool, MbError> {
        self.inner.recv_leftward_into(link, dst)
    }
}

impl Substrate for PipeSubstrate {
    fn open(
        &mut self,
        token: usize,
        links: usize,
        _latency: Duration,
        _faults: &FaultConfig,
    ) -> Result<(), MbError> {
        if self.sessions.len() <= token {
            self.sessions.resize_with(token + 1, || None);
        }
        self.sessions[token] = Some(PipeLinks::new(links));
        Ok(())
    }

    fn close(&mut self, token: usize) {
        if let Some(slot) = self.sessions.get_mut(token) {
            *slot = None;
        }
    }

    fn pump(
        &mut self,
        token: usize,
        chain: &mut Chain,
        max_passes: usize,
    ) -> Result<PumpOutcome, MbError> {
        let links = self
            .sessions
            .get_mut(token)
            .and_then(Option::as_mut)
            .ok_or_else(|| MbError::unexpected_state("pump on closed substrate session"))?;
        let mut outcome = PumpOutcome::default();
        let mut metered = MeteredPipeLinks { inner: links, bytes: &mut outcome.bytes };
        for pass in 0..max_passes {
            if !chain.pump_with(&mut metered)? {
                return Ok(outcome);
            }
            outcome.moved = true;
            outcome.saturated = pass + 1 == max_passes;
        }
        Ok(outcome)
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
        if let Some(sink) = &self.telemetry {
            sink.clock().set_ns(self.now.0);
        }
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        None
    }

    fn pop_due(&mut self) -> Option<usize> {
        None
    }

    fn set_telemetry(&mut self, sink: SharedSink) {
        sink.clock().set_ns(self.now.0);
        self.telemetry = Some(sink);
    }
}

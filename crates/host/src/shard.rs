//! The per-worker reactor: one shard of the session host.
//!
//! A [`Shard`] is the event loop that used to be the whole host, now
//! instantiated once per worker with strictly private state — its own
//! [`Substrate`], generational [`Slab`], hierarchical [`TimerWheel`],
//! ready queue, delivery [`EventRing`], [`BufferPool`], ticket cache,
//! and counters. Shards share *nothing*: on a multi-core deployment
//! each would run on its own core against its own NIC queue, and in
//! this sans-IO build they are driven sequentially with bit-identical
//! results (the determinism argument in DESIGN.md §6g rests on
//! exactly this isolation).
//!
//! Sessions are pinned: the shard index is encoded in every
//! [`SessionId`] the shard mints, the shard's slab rejects foreign
//! ids, and substrate tokens are shard-local slot indices. Transport
//! delivery notifications are routed through the shard's own
//! [`EventRing`] — the single-thread stand-in for the worker's mpsc
//! channel — so the order session logic observes events is the ring
//! order, not an artifact of heap layout.

use std::collections::VecDeque;

use mbtls_core::driver::PendingVerify;
use mbtls_core::MbError;
use mbtls_crypto::ed25519::{self, BatchItem};
use mbtls_netsim::time::SimTime;
use mbtls_telemetry::{EventKind, Party, SharedSink};
use mbtls_tls::session::ResumptionData;

use crate::config::HostConfig;
use crate::host::{HostCounters, SessionSpec};
use crate::mux::EventRing;
use crate::pool::BufferPool;
use crate::session::{HostedSession, Phase, SessionOutcome};
use crate::slab::{SessionId, Slab};
use crate::substrate::Substrate;
use crate::wheel::{Timer, TimerKind, TimerWheel};

/// What one service pass decided about a session.
enum Verdict {
    /// Session ended; record the outcome.
    Finish(SessionOutcome),
    /// Pass cap hit while bytes still moved — requeue behind peers.
    Saturated,
    /// Nothing moved and nothing to do — wait for transport or timer.
    Parked,
    /// Progress was made; pump again.
    Progress,
}

/// One worker reactor: a sans-IO event loop multiplexing the
/// sessions pinned to this shard over its private substrate.
///
/// Constructed by [`Host`](crate::host::Host), or directly when a
/// driver wants to run shards itself (the scale bench times each
/// shard's wall clock separately this way).
pub struct Shard<S: Substrate> {
    shard: u16,
    substrate: S,
    config: HostConfig,
    sessions: Slab<HostedSession>,
    wheel: TimerWheel,
    ready: VecDeque<SessionId>,
    /// Due-now transport notifications, routed ring-first so event
    /// order is the channel order a real worker would observe.
    delivery: EventRing<usize>,
    /// Reused scratch for expired timers (no per-step allocation).
    fired: Vec<Timer>,
    pool: BufferPool,
    telemetry: Option<SharedSink>,
    /// Session-ticket cache ordered by expiry (pushes are monotonic
    /// in virtual time), capped at `config.ticket_cache_cap()`.
    tickets: VecDeque<(SimTime, ResumptionData)>,
    /// Deferred signature-check groups collected from this turn's
    /// serviced sessions, flushed through one
    /// [`ed25519::verify_batch`] call at the end of the turn.
    verify_queue: Vec<(SessionId, usize, PendingVerify)>,
    /// Reused scratch for per-session collection (no per-service
    /// allocation).
    verify_scratch: Vec<(usize, PendingVerify)>,
    results: Vec<(SessionId, SessionOutcome)>,
    counters: HostCounters,
}

impl<S: Substrate> Shard<S> {
    /// Reactor number `shard` over its private `substrate`.
    pub fn new(shard: u16, substrate: S, config: HostConfig) -> Self {
        Shard {
            shard,
            substrate,
            config,
            sessions: Slab::for_shard(shard),
            wheel: TimerWheel::new(),
            ready: VecDeque::new(),
            delivery: EventRing::new(),
            fired: Vec::new(),
            pool: BufferPool::new(),
            telemetry: None,
            tickets: VecDeque::new(),
            verify_queue: Vec::new(),
            verify_scratch: Vec::new(),
            results: Vec::new(),
            counters: HostCounters::default(),
        }
    }

    /// This reactor's shard index.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Attach telemetry. The sink is re-tagged with this shard's
    /// index (so merged traces record the emitting worker) and its
    /// clock is kept in lock-step with this shard's virtual time —
    /// which is why a multi-shard host needs one sink *per shard*,
    /// each with its own clock.
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        let tagged = sink.tagged(self.shard);
        self.substrate.set_telemetry(tagged.clone());
        self.telemetry = Some(tagged);
    }

    /// Current virtual time on this shard.
    pub fn now(&self) -> SimTime {
        self.substrate.now()
    }

    /// Live sessions pinned to this shard.
    pub fn live(&self) -> usize {
        self.sessions.len()
    }

    /// True if `id` names a session this shard currently hosts.
    /// Foreign-shard and stale ids report false.
    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions.contains(id)
    }

    /// Deterministic run statistics so far.
    pub fn counters(&self) -> &HostCounters {
        &self.counters
    }

    /// Outcomes of finished sessions, in finish order.
    pub fn results(&self) -> &[(SessionId, SessionOutcome)] {
        &self.results
    }

    /// Take the finished-session outcomes, leaving the list empty.
    pub fn take_results(&mut self) -> Vec<(SessionId, SessionOutcome)> {
        std::mem::take(&mut self.results)
    }

    /// Buffer-pool statistics: `(acquired, served without
    /// allocating)`.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// Session tickets currently cached.
    pub fn cached_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// Delivery-ring statistics: `(events routed, peak occupancy)`.
    pub fn delivery_ring_stats(&self) -> (u64, usize) {
        (self.delivery.pushed(), self.delivery.high_water())
    }

    /// The substrate (e.g. for adversary hooks in tests).
    pub fn substrate_mut(&mut self) -> &mut S {
        &mut self.substrate
    }

    /// Admit a session: allocate a slab slot, provision transport,
    /// arm the handshake timer, and queue the first service.
    pub fn open(&mut self, mut spec: SessionSpec) -> Result<SessionId, MbError> {
        let now = self.substrate.now();
        let links = spec.chain.parties() - 1;
        // This shard claims deferred signature checks: sessions whose
        // endpoints defer (`ClientConfig::defer_verify`) park until
        // the end-of-turn batched flush resolves them. Chains that
        // verify inline are unaffected.
        spec.chain.set_defer_verify_to_driver(true);
        let id = self
            .sessions
            .try_insert(HostedSession {
                chain: spec.chain,
                workload: spec.workload,
                phase: Phase::Handshaking,
                opened_at: now,
                last_activity: now,
                attempt: 1,
                handshake_ns: 0,
                exchanges_done: 0,
                responded: false,
                server_got: 0,
                client_got: 0,
                bytes_moved: 0,
                queued: false,
            })
            .ok_or_else(|| MbError::unexpected_state("shard session table full"))?;
        if let Err(e) =
            self.substrate.open(id.local() as usize, links, spec.latency, &spec.faults)
        {
            self.sessions.remove(id);
            return Err(e);
        }
        self.counters.opened += 1;
        if let Some(t) = &self.telemetry {
            t.emit(
                Party::Host,
                EventKind::HostSessionOpen {
                    session: id.index() as u64,
                    generation: id.generation() as u64,
                },
            );
        }
        self.wheel.schedule(now.plus(self.config.handshake_timeout()), id, TimerKind::Handshake);
        self.enqueue(id);
        Ok(id)
    }

    fn enqueue(&mut self, id: SessionId) {
        if let Some(sess) = self.sessions.get_mut(id) {
            if !sess.queued {
                sess.queued = true;
                self.ready.push_back(id);
            }
        }
    }

    /// Route every due transport notification through the delivery
    /// ring, then drain the ring into the ready queue.
    fn route_deliveries(&mut self) {
        while let Some(token) = self.substrate.pop_due() {
            self.delivery.push(token);
        }
        while let Some(token) = self.delivery.pop() {
            if let Some(id) = self.sessions.id_at(token as u32) {
                self.enqueue(id);
            }
        }
    }

    /// One event-loop turn. Services the current ready batch; if the
    /// queue drains, advances virtual time to the next transport
    /// event or timer deadline and dispatches it. Returns false when
    /// there is nothing left to do (no live sessions, or — the error
    /// case for callers — live sessions but no future event).
    pub fn step(&mut self) -> Result<bool, MbError> {
        // Service a bounded batch: exactly the sessions queued now,
        // so a saturated session requeues behind this turn's peers.
        let batch = self.ready.len();
        for _ in 0..batch {
            let Some(id) = self.ready.pop_front() else { break };
            match self.sessions.get_mut(id) {
                Some(sess) => sess.queued = false,
                None => continue,
            }
            self.service(id);
        }
        self.flush_verify_batch();
        if !self.ready.is_empty() {
            return Ok(true);
        }
        if self.sessions.is_empty() {
            return Ok(false);
        }
        // Quiet: advance to the next instant anything happens.
        let target = match (self.substrate.next_event_time(), self.wheel.next_wake()) {
            (Some(net), Some(timer)) => net.min(timer),
            (Some(net), None) => net,
            (None, Some(timer)) => timer,
            (None, None) => return Ok(false),
        };
        self.substrate.advance_to(target);
        let now = self.substrate.now();
        // Timers first (deterministic (deadline, seq) order), then
        // transport deliveries in ring order.
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.expire_into(now, &mut fired);
        for timer in &fired {
            self.handle_timer(timer);
        }
        self.fired = fired;
        self.route_deliveries();
        Ok(true)
    }

    /// True if sessions are queued for service without any need to
    /// advance virtual time.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// The next instant anything is scheduled to happen (transport
    /// delivery or timer), ignoring the ready queue.
    pub fn next_event(&mut self) -> Option<SimTime> {
        match (self.substrate.next_event_time(), self.wheel.next_wake()) {
            (Some(net), Some(timer)) => Some(net.min(timer)),
            (net, None) => net,
            (None, timer) => timer,
        }
    }

    /// Advance virtual time to `t` (for externally scheduled work,
    /// e.g. a load generator's next arrival), firing any timers and
    /// transport deliveries that come due on the way.
    pub fn advance_clock(&mut self, t: SimTime) {
        self.substrate.advance_to(t);
        let now = self.substrate.now();
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.expire_into(now, &mut fired);
        for timer in &fired {
            self.handle_timer(timer);
        }
        self.fired = fired;
        self.route_deliveries();
    }

    /// Run the event loop until every session finishes. Errors if
    /// virtual time passes `deadline`, or if the shard goes quiescent
    /// with live sessions (which the timer wheel should make
    /// impossible: every session always has a pending timer).
    pub fn run(&mut self, deadline: SimTime) -> Result<(), MbError> {
        while !self.sessions.is_empty() {
            if self.substrate.now() > deadline {
                return Err(MbError::Timeout("shard run deadline exceeded".into()));
            }
            // A false return is fine if the batch just serviced
            // finished the last session; it is only an error while
            // sessions remain live.
            if !self.step()? && !self.sessions.is_empty() {
                return Err(MbError::unexpected_state("shard quiescent with live sessions"));
            }
        }
        Ok(())
    }

    /// Resolve every deferred signature-check group collected during
    /// this turn's services with one random-linear-combination batch
    /// verification ([`ed25519::verify_batch`]), then wake the
    /// affected sessions. One multi-scalar pass amortizes the
    /// per-signature doubling chain across every handshake the turn
    /// touched — the host-side half of the handshake fast path.
    fn flush_verify_batch(&mut self) {
        if self.verify_queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.verify_queue);
        let items: Vec<BatchItem<'_>> = queue
            .iter()
            .flat_map(|(_, _, pv)| pv.checks.iter())
            .map(|c| BatchItem { pubkey: c.key, msg: &c.msg, sig: c.sig })
            .collect();
        let outcome = ed25519::verify_batch(&items);
        self.counters.verify_batches += 1;
        self.counters.verify_checks += items.len() as u64;
        if let Some(t) = &self.telemetry {
            t.emit(
                Party::Host,
                EventKind::HostVerifyBatch {
                    groups: queue.len() as u64,
                    checks: items.len() as u64,
                },
            );
        }
        // Verdict per group: AND over its slice of the flat batch. A
        // failing group fails its session's endpoint (alert path);
        // passing groups unblock establishment. Either way the
        // session has new work, so requeue it.
        let mut k = 0;
        for (id, party, pv) in &queue {
            let n = pv.checks.len();
            let ok = outcome.valid[k..k + n].iter().all(|&v| v);
            k += n;
            if let Some(sess) = self.sessions.get_mut(*id) {
                sess.chain.resolve_verify(*party, pv.token, ok);
            }
            self.enqueue(*id);
        }
        // Hand the allocation back for the next turn.
        let mut queue = queue;
        queue.clear();
        self.verify_queue = queue;
    }

    /// Pump one session and drive its workload until it parks,
    /// saturates its pass budget, or finishes.
    fn service(&mut self, id: SessionId) {
        let token = id.local() as usize;
        loop {
            let Some(sess) = self.sessions.get_mut(id) else { return };
            let pump =
                match self.substrate.pump(token, &mut sess.chain, self.config.max_pump_passes()) {
                    Ok(p) => p,
                    Err(e) => {
                        self.finish(id, SessionOutcome::Failed(e));
                        return;
                    }
                };
            sess.bytes_moved += pump.bytes;
            self.counters.bytes_moved += pump.bytes;
            // Harvest deferred signature checks surfaced by this pump
            // for the end-of-turn batched verification flush; the
            // session parks until the flush resolves them.
            let mut harvest = std::mem::take(&mut self.verify_scratch);
            sess.chain.take_pending_verifies(&mut harvest);
            for (party, pv) in harvest.drain(..) {
                self.verify_queue.push((id, party, pv));
            }
            self.verify_scratch = harvest;
            let now = self.substrate.now();
            if pump.moved {
                sess.last_activity = now;
            }
            if let Some(e) = sess.chain.failed() {
                self.finish(id, SessionOutcome::Failed(e));
                return;
            }
            let verdict = match sess.phase {
                Phase::Handshaking => Self::drive_handshake(
                    sess,
                    id,
                    now,
                    &self.config,
                    &mut self.wheel,
                    &mut self.pool,
                    &mut self.tickets,
                    &mut self.counters,
                    self.telemetry.as_ref(),
                    pump.moved,
                    pump.saturated,
                ),
                Phase::Established => Self::drive_workload(
                    sess,
                    &mut self.pool,
                    &mut self.counters,
                    pump.moved,
                    pump.saturated,
                ),
            };
            match verdict {
                Verdict::Finish(outcome) => {
                    self.finish(id, outcome);
                    return;
                }
                Verdict::Saturated => {
                    self.enqueue(id);
                    return;
                }
                Verdict::Parked => return,
                Verdict::Progress => continue,
            }
        }
    }

    /// Handshake phase: watch for both endpoints turning ready, then
    /// promote to [`Phase::Established`] and seed the first request.
    #[allow(clippy::too_many_arguments)]
    fn drive_handshake(
        sess: &mut HostedSession,
        id: SessionId,
        now: SimTime,
        config: &HostConfig,
        wheel: &mut TimerWheel,
        pool: &mut BufferPool,
        tickets: &mut VecDeque<(SimTime, ResumptionData)>,
        counters: &mut HostCounters,
        telemetry: Option<&SharedSink>,
        moved: bool,
        saturated: bool,
    ) -> Verdict {
        if !(sess.chain.client.ready() && sess.chain.server.ready()) {
            return if saturated {
                Verdict::Saturated
            } else if moved {
                Verdict::Progress
            } else {
                Verdict::Parked
            };
        }
        sess.phase = Phase::Established;
        sess.last_activity = now;
        let handshake_ns = now.since(sess.opened_at).0;
        sess.handshake_ns = handshake_ns;
        counters.handshake_latencies_ns.push(handshake_ns);
        // Split the handshake tally: abbreviated (ticket/session-id)
        // resumptions skipped certificate transfer and signature
        // checks entirely; rejected or absent tickets degrade to the
        // full flight and count there.
        if sess.chain.client.resumed() {
            counters.handshakes_resumed += 1;
        } else {
            counters.handshakes_full += 1;
        }
        if let Some(t) = telemetry {
            t.emit(
                Party::Host,
                EventKind::HostHandshakeDone {
                    session: id.index() as u64,
                    attempt: sess.attempt as u64,
                    elapsed_ns: handshake_ns,
                },
            );
        }
        if let Some(res) = sess.chain.client.resumption() {
            // Capacity first: the cache never exceeds its cap, and
            // the displaced ticket (always the oldest — the deque is
            // expiry-ordered) counts as expired.
            if tickets.len() >= config.ticket_cache_cap() {
                tickets.pop_front();
                counters.tickets_expired += 1;
                if let Some(t) = telemetry {
                    t.emit(
                        Party::Host,
                        EventKind::HostTicketExpired { remaining: tickets.len() as u64 },
                    );
                }
            }
            let expiry = now.plus(config.ticket_ttl());
            tickets.push_back((expiry, res));
            wheel.schedule(expiry, id, TimerKind::TicketExpiry);
        }
        wheel.schedule(now.plus(config.idle_timeout()), id, TimerKind::Idle);
        if sess.workload.exchanges == 0 {
            return Verdict::Finish(SessionOutcome::Completed {
                exchanges: 0,
                bytes_moved: sess.bytes_moved,
                handshake_ns,
            });
        }
        if let Err(e) = Self::send_request(sess, pool) {
            return Verdict::Finish(SessionOutcome::Failed(e));
        }
        Verdict::Progress
    }

    /// Queue one `request_len`-byte client request from a pooled
    /// buffer.
    fn send_request(sess: &mut HostedSession, pool: &mut BufferPool) -> Result<(), MbError> {
        let mut buf = pool.acquire();
        buf.resize(sess.workload.request_len, 0xA5);
        let result = sess.chain.client.send_app(&buf);
        pool.release(buf);
        result
    }

    /// Established phase: move request bytes into the server, answer
    /// each complete request, and count the response back at the
    /// client; finish after the workload's exchange quota.
    fn drive_workload(
        sess: &mut HostedSession,
        pool: &mut BufferPool,
        counters: &mut HostCounters,
        moved: bool,
        saturated: bool,
    ) -> Verdict {
        let mut acted = false;
        let mut buf = pool.acquire();
        sess.chain.server.recv_app_into(&mut buf);
        if !buf.is_empty() {
            sess.server_got += buf.len();
            acted = true;
        }
        if !sess.responded && sess.server_got >= sess.workload.request_len {
            sess.server_got -= sess.workload.request_len;
            buf.clear();
            buf.resize(sess.workload.response_len, 0x5A);
            if let Err(e) = sess.chain.server.send_app(&buf) {
                pool.release(buf);
                return Verdict::Finish(SessionOutcome::Failed(e));
            }
            sess.responded = true;
            acted = true;
        }
        buf.clear();
        sess.chain.client.recv_app_into(&mut buf);
        if !buf.is_empty() {
            sess.client_got += buf.len();
            acted = true;
        }
        pool.release(buf);
        if sess.responded && sess.client_got >= sess.workload.response_len {
            sess.client_got -= sess.workload.response_len;
            sess.responded = false;
            sess.exchanges_done += 1;
            counters.exchanges_completed += 1;
            acted = true;
            if sess.exchanges_done >= sess.workload.exchanges {
                return Verdict::Finish(SessionOutcome::Completed {
                    exchanges: sess.exchanges_done,
                    bytes_moved: sess.bytes_moved,
                    handshake_ns: sess.handshake_ns,
                });
            }
            if let Err(e) = Self::send_request(sess, pool) {
                return Verdict::Finish(SessionOutcome::Failed(e));
            }
        }
        if saturated {
            Verdict::Saturated
        } else if moved || acted {
            Verdict::Progress
        } else {
            Verdict::Parked
        }
    }

    /// Dispatch one expired timer. Timers are never cancelled, only
    /// lazily discarded: a stale [`SessionId`] (slot freed or reused
    /// under a newer generation) simply no-ops.
    fn handle_timer(&mut self, timer: &Timer) {
        let id = timer.session;
        match timer.kind {
            TimerKind::Handshake | TimerKind::Retry => {
                let Some(sess) = self.sessions.get(id) else { return };
                if !matches!(sess.phase, Phase::Handshaking) {
                    return;
                }
                let attempt = sess.attempt;
                if let Some(t) = &self.telemetry {
                    t.emit(
                        Party::Host,
                        EventKind::HostTimeout {
                            session: id.index() as u64,
                            attempt: attempt as u64,
                        },
                    );
                }
                if attempt < self.config.handshake_attempts() {
                    // Exponential backoff: 2^attempt × base backoff
                    // (overflow ruled out by config validation).
                    let backoff = self.config.retry_backoff().times(1u64 << attempt);
                    if let Some(sess) = self.sessions.get_mut(id) {
                        sess.attempt += 1;
                    }
                    self.counters.retries += 1;
                    if let Some(t) = &self.telemetry {
                        t.emit(
                            Party::Host,
                            EventKind::HostRetryBackoff {
                                session: id.index() as u64,
                                attempt: (attempt + 1) as u64,
                                backoff_ns: backoff.0,
                            },
                        );
                    }
                    let now = self.substrate.now();
                    self.wheel.schedule(now.plus(backoff), id, TimerKind::Retry);
                    // Poke the session: bytes may be waiting that a
                    // pump can still deliver.
                    self.enqueue(id);
                } else {
                    self.finish(id, SessionOutcome::TimedOut);
                }
            }
            TimerKind::Idle => {
                let Some(sess) = self.sessions.get(id) else { return };
                let now = self.substrate.now();
                let idle = now.since(sess.last_activity);
                if idle >= self.config.idle_timeout() {
                    if let Some(t) = &self.telemetry {
                        t.emit(
                            Party::Host,
                            EventKind::HostEvict {
                                session: id.index() as u64,
                                idle_ns: idle.0,
                            },
                        );
                    }
                    self.finish(id, SessionOutcome::Evicted);
                } else {
                    // Activity since arming: re-arm from the last
                    // activity instant.
                    let next = sess.last_activity.plus(self.config.idle_timeout());
                    self.wheel.schedule(next, id, TimerKind::Idle);
                }
            }
            TimerKind::TicketExpiry => {
                // The deque is expiry-ordered (monotonic pushes), so
                // expiry is a pop-front loop — O(expired), not a full
                // retain scan.
                let now = self.substrate.now();
                let mut dropped = 0u64;
                while self.tickets.front().is_some_and(|(expiry, _)| *expiry <= now) {
                    self.tickets.pop_front();
                    dropped += 1;
                }
                if dropped > 0 {
                    self.counters.tickets_expired += dropped;
                    if let Some(t) = &self.telemetry {
                        t.emit(
                            Party::Host,
                            EventKind::HostTicketExpired {
                                remaining: self.tickets.len() as u64,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Retire a session: record the outcome, free its slab slot
    /// (bumping the generation so dangling ids go stale), and tear
    /// down its transport.
    fn finish(&mut self, id: SessionId, outcome: SessionOutcome) {
        if self.sessions.remove(id).is_none() {
            return;
        }
        self.substrate.close(id.local() as usize);
        match &outcome {
            SessionOutcome::Completed { .. } => self.counters.completed += 1,
            SessionOutcome::TimedOut => self.counters.timed_out += 1,
            SessionOutcome::Evicted => self.counters.evicted += 1,
            SessionOutcome::Failed(_) => self.counters.failed += 1,
        }
        if let Some(t) = &self.telemetry {
            t.emit(Party::Host, EventKind::HostSessionClose { session: id.index() as u64 });
        }
        self.results.push((id, outcome));
    }
}

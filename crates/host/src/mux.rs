//! The substrate mux: the routing seam between the shared front door
//! and the per-worker [`Shard`](crate::shard::Shard) reactors.
//!
//! Everything here is sans-IO and single-threaded, but the shapes are
//! deliberately those of a multi-core deployment: an [`EventRing`] is
//! an mpsc-style ring buffer (one per shard) that a real port would
//! replace with a lock-free channel, and [`ShardMux`] is the
//! dispatcher that would run on the acceptor core. Two event flows
//! cross the seam:
//!
//! * **Admission**: [`ShardMux::route_open`] pins each new session to
//!   a shard (deterministic round-robin) and enqueues the spec on
//!   that shard's inbox ring; the owning shard drains its inbox and
//!   mints the [`SessionId`](crate::slab::SessionId) — whose index
//!   bits encode the shard, so every later operation on the id routes
//!   without a lookup table.
//! * **Delivery**: each shard routes its substrate's due-now
//!   delivery notifications through its own [`EventRing`] before
//!   servicing them (see [`Shard::step`](crate::shard::Shard::step)),
//!   so the order in which transport events reach session logic is
//!   exactly the ring order — the same order a real worker would
//!   observe on its channel.
//!
//! Ring statistics ([`EventRing::pushed`], [`EventRing::high_water`])
//! are deterministic and feed the scale report.

use std::collections::VecDeque;

use crate::host::SessionSpec;
use crate::slab::SessionId;

/// An mpsc-shaped ring buffer: FIFO, unbounded in this sans-IO
/// build, with deterministic occupancy statistics. The single-thread
/// stand-in for the per-worker channel of a multi-core deployment.
#[derive(Debug, Default)]
pub struct EventRing<T> {
    buf: VecDeque<T>,
    pushed: u64,
    high_water: usize,
}

impl<T> EventRing<T> {
    /// An empty ring.
    pub fn new() -> Self {
        EventRing { buf: VecDeque::new(), pushed: 0, high_water: 0 }
    }

    /// Enqueue one event.
    pub fn push(&mut self, event: T) {
        self.buf.push_back(event);
        self.pushed += 1;
        self.high_water = self.high_water.max(self.buf.len());
    }

    /// Dequeue the oldest event, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Peak queued occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Routes admissions to their owning shard over per-shard inbox
/// rings.
pub struct ShardMux {
    inboxes: Vec<EventRing<SessionSpec>>,
    next: u16,
}

impl ShardMux {
    /// A mux over `shards` worker inboxes.
    pub fn new(shards: u16) -> Self {
        ShardMux {
            inboxes: (0..shards).map(|_| EventRing::new()).collect(),
            next: 0,
        }
    }

    /// Number of shards behind the mux.
    pub fn shards(&self) -> u16 {
        self.inboxes.len() as u16
    }

    /// The shard that owns `id`, decoded from the id's index bits.
    pub fn shard_of(id: SessionId) -> u16 {
        id.shard()
    }

    /// Pin a new session to a shard (deterministic round-robin) and
    /// enqueue its spec on that shard's inbox. Returns the chosen
    /// shard.
    pub fn route_open(&mut self, spec: SessionSpec) -> u16 {
        let shard = self.next;
        self.next = (self.next + 1) % self.shards();
        self.inboxes[shard as usize].push(spec);
        shard
    }

    /// Enqueue a spec on an explicit shard's inbox (load slicing).
    pub fn route_open_on(&mut self, shard: u16, spec: SessionSpec) {
        self.inboxes[shard as usize].push(spec);
    }

    /// Drain one queued admission for `shard`, if any.
    pub fn take_admission(&mut self, shard: u16) -> Option<SessionSpec> {
        self.inboxes[shard as usize].pop()
    }

    /// Queued admissions for `shard`.
    pub fn pending(&self, shard: u16) -> usize {
        self.inboxes[shard as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_fifo_with_stats() {
        let mut ring = EventRing::new();
        assert!(ring.is_empty());
        ring.push(1);
        ring.push(2);
        ring.push(3);
        assert_eq!(ring.pop(), Some(1));
        ring.push(4);
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert_eq!(ring.pop(), Some(4));
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.pushed(), 4);
        assert_eq!(ring.high_water(), 3);
    }
}

//! Per-session state tracked by the host, and how sessions end.

use mbtls_core::driver::Chain;
use mbtls_core::MbError;
use mbtls_netsim::time::SimTime;

/// The request/response workload a hosted session runs once its
/// handshake completes: the client sends `request_len` bytes, the
/// server answers with `response_len` bytes, `exchanges` times.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Client request size per exchange, bytes.
    pub request_len: usize,
    /// Server response size per exchange, bytes.
    pub response_len: usize,
    /// Request/response round trips before the session closes.
    pub exchanges: u32,
}

impl Default for Workload {
    fn default() -> Self {
        Workload { request_len: 512, response_len: 2048, exchanges: 4 }
    }
}

/// Where a hosted session is in its lifecycle.
pub(crate) enum Phase {
    /// End-to-end handshake still in flight.
    Handshaking,
    /// Handshake done; running the workload.
    Established,
}

/// One multiplexed session: its party chain plus host-side progress
/// bookkeeping.
pub(crate) struct HostedSession {
    pub chain: Chain,
    pub workload: Workload,
    pub phase: Phase,
    pub opened_at: SimTime,
    pub last_activity: SimTime,
    /// Handshake attempt in progress (1 = first try).
    pub attempt: u32,
    /// Open→established latency in virtual ns (0 until established).
    pub handshake_ns: u64,
    pub exchanges_done: u32,
    /// A response is in flight for the current exchange.
    pub responded: bool,
    /// Request bytes the server has received for the current exchange.
    pub server_got: usize,
    /// Response bytes the client has received for the current exchange.
    pub client_got: usize,
    /// Wire bytes this session pushed into the substrate.
    pub bytes_moved: u64,
    /// Currently sitting in the host's ready queue (dedup flag).
    pub queued: bool,
}

/// How a hosted session ended.
#[derive(Debug)]
pub enum SessionOutcome {
    /// Handshake and full workload completed.
    Completed {
        /// Exchanges finished (equals the workload's target).
        exchanges: u32,
        /// Wire bytes the session pushed into the substrate.
        bytes_moved: u64,
        /// Virtual nanoseconds from open to handshake completion.
        handshake_ns: u64,
    },
    /// The handshake retry budget ran out; the host surfaced
    /// [`MbError::Timeout`] instead of hanging forever.
    TimedOut,
    /// Idle past the eviction deadline.
    Evicted,
    /// A party reported a fatal error.
    Failed(MbError),
}

impl SessionOutcome {
    /// True for [`SessionOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed { .. })
    }

    /// The error this outcome surfaces, if it is a failure.
    pub fn as_error(&self) -> Option<MbError> {
        match self {
            SessionOutcome::Completed { .. } => None,
            SessionOutcome::TimedOut => {
                Some(MbError::Timeout("handshake retry budget exhausted".into()))
            }
            SessionOutcome::Evicted => Some(MbError::Timeout("session evicted idle".into())),
            SessionOutcome::Failed(e) => Some(e.clone()),
        }
    }
}

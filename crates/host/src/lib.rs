//! Concurrent session host for the mbTLS reproduction.
//!
//! The paper argues mbTLS's per-hop security model is deployable at
//! middlebox-service scale; this crate supplies the scale half of
//! that claim. A [`SessionHost`] multiplexes thousands of independent
//! mbTLS (or baseline TLS) sessions over one shared byte-moving
//! [`Substrate`] — the deterministic network simulator or zero-copy
//! in-memory pipes — from a single sans-IO event loop.
//!
//! # Architecture
//!
//! - [`slab`] — the session table: a generational slab whose
//!   [`SessionId`]s dangle *detectably* after eviction instead of
//!   aliasing recycled slots.
//! - [`wheel`] — a hierarchical timer wheel driven by virtual time:
//!   handshake timeouts with telemetry-visible retry/backoff, idle
//!   eviction, and session-ticket expiry. This is what turns a
//!   silently dropped handshake flight into a surfaced
//!   `MbError::Timeout` instead of a hung host.
//! - [`substrate`] — the transport abstraction: one simulator (with
//!   per-session latency and fault injection) or per-session pipes.
//! - [`host`] — the event loop: a ready queue batches record pumping
//!   with a per-session pass cap for backpressure, and a shared
//!   [`pool::BufferPool`] keeps the steady state free of per-record
//!   allocation.
//! - [`loadgen`] — a seeded open/close-churn generator; same seed and
//!   schedule ⇒ bit-identical telemetry and counters.

#![warn(missing_docs)]

pub mod host;
pub mod loadgen;
pub mod pool;
pub mod session;
pub mod slab;
pub mod substrate;
pub mod wheel;

pub use host::{HostConfig, HostCounters, SessionHost, SessionSpec};
pub use loadgen::{LoadConfig, LoadGenerator};
pub use pool::BufferPool;
pub use session::{SessionOutcome, Workload};
pub use slab::{SessionId, Slab};
pub use substrate::{NetSubstrate, PipeSubstrate, PumpOutcome, Substrate};
pub use wheel::{Timer, TimerKind, TimerWheel};

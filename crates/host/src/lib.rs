//! Concurrent session host for the mbTLS reproduction.
//!
//! The paper argues mbTLS's per-hop security model is deployable at
//! middlebox-service scale; this crate supplies the scale half of
//! that claim. A [`Host`] splits up to a million independent mbTLS
//! (or baseline TLS) sessions across per-worker [`Shard`] reactors,
//! each a sans-IO event loop over its own byte-moving [`Substrate`]
//! — the deterministic network simulator or zero-copy in-memory
//! pipes. Shards share nothing, so the fleet scales with cores while
//! staying bit-for-bit deterministic.
//!
//! # Architecture
//!
//! - [`config`] — the validated [`HostConfig`] builder: shard count,
//!   timeout/retry/eviction policy, ticket-cache cap; zero and
//!   overflowing knobs are rejected at build time with typed errors.
//! - [`slab`] — the session table: a generational slab whose
//!   [`SessionId`]s dangle *detectably* after eviction instead of
//!   aliasing recycled slots, and carry the owning shard in their
//!   index bits so routing needs no lookup table.
//! - [`wheel`] — a hierarchical timer wheel driven by virtual time:
//!   handshake timeouts with telemetry-visible retry/backoff, idle
//!   eviction, and session-ticket expiry. This is what turns a
//!   silently dropped handshake flight into a surfaced
//!   `MbError::Timeout` instead of a hung host.
//! - [`substrate`] — the transport abstraction: one simulator (with
//!   per-session latency and fault injection) or per-session pipes.
//! - [`shard`] — the per-worker reactor: the event loop, one per
//!   shard, with strictly private state. A ready queue batches record
//!   pumping with a per-session pass cap for backpressure, and a
//!   per-shard [`pool::BufferPool`] keeps the steady state free of
//!   per-record allocation.
//! - [`mux`] — the routing seam: mpsc-shaped per-shard event rings
//!   for admissions and transport deliveries — the single-thread
//!   stand-in for a multi-core deployment's worker channels.
//! - [`host`] — the opaque [`Host`] facade over the shard fleet:
//!   round-robin admission, id-encoded steering, per-shard telemetry
//!   with deterministic merging.
//! - [`loadgen`] — a seeded open/close-churn generator; same seed and
//!   schedule ⇒ bit-identical telemetry and counters, and the same
//!   per-session specs no matter how the load is sliced over shards.

#![warn(missing_docs)]

pub mod config;
pub mod host;
pub mod loadgen;
pub mod mux;
pub mod pool;
pub mod session;
pub mod shard;
pub mod slab;
pub mod substrate;
pub mod wheel;

pub use config::{HostConfig, HostConfigBuilder, HostConfigError};
pub use host::{Host, HostCounters, Reactor, SessionSpec};
pub use loadgen::{ChainMix, LoadConfig, LoadGenerator};
pub use mux::{EventRing, ShardMux};
pub use pool::BufferPool;
pub use session::{SessionOutcome, Workload};
pub use shard::Shard;
pub use slab::{SessionId, Slab};
pub use substrate::{NetSubstrate, PipeSubstrate, PumpOutcome, Substrate};
pub use wheel::{Timer, TimerKind, TimerWheel};

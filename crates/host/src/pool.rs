//! A shared byte-buffer pool.
//!
//! The host services thousands of sessions from one event loop; any
//! per-service allocation multiplies by the session count. Buffers
//! for staging application payloads and drained plaintext are
//! checked out of this pool and returned cleared-but-capacitated, so
//! after warm-up the steady state performs no heap allocation per
//! serviced record (the scale benchmark proves this with a counting
//! allocator).

/// A LIFO pool of `Vec<u8>` buffers.
#[derive(Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Buffers handed out since construction.
    acquired: u64,
    /// Acquisitions served from the free list (no allocation).
    reused: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Check out an empty buffer, reusing a returned one when
    /// available (LIFO, so the hottest buffer comes back first).
    pub fn acquire(&mut self) -> Vec<u8> {
        self.acquired += 1;
        match self.free.pop() {
            Some(buf) => {
                self.reused += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer. Contents are cleared; capacity is kept.
    pub fn release(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.free.push(buf);
    }

    /// `(total acquisitions, acquisitions served without allocating)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.reused)
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_keeps_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[0u8; 4096]);
        let cap = buf.capacity();
        pool.release(buf);
        let buf2 = pool.acquire();
        assert!(buf2.is_empty());
        assert_eq!(buf2.capacity(), cap);
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn lifo_order() {
        let mut pool = BufferPool::new();
        let mut a = pool.acquire();
        let b = pool.acquire();
        a.reserve(100);
        let cap_a = a.capacity();
        pool.release(b);
        pool.release(a);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.acquire().capacity(), cap_a, "last released comes back first");
    }
}

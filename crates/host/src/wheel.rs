//! Hierarchical timer wheel driven by virtual time.
//!
//! Four levels of 64 slots each, with a ~1 ms base tick (2^20 ns —
//! power-of-two so slot math is shifts and masks). Level `l` spans
//! `64^(l+1)` ticks, so the wheel covers ~4.8 virtual hours before
//! spilling into an overflow list. Each level keeps a 64-bit
//! occupancy bitmap so finding the next armed slot is a couple of
//! bit scans, not a walk over 256 buckets.
//!
//! Cancellation is *lazy*: the host never removes a timer, it just
//! lets it fire and discards it if the [`SessionId`] it names has
//! gone stale (the generational slab makes that check O(1)). That
//! keeps `schedule` allocation-free in steady state and avoids
//! per-timer handles entirely.

use mbtls_netsim::time::SimTime;

use crate::slab::SessionId;

/// What a timer means to the host when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Initial handshake deadline for a session.
    Handshake,
    /// Re-armed handshake deadline after a retry backoff.
    Retry,
    /// Idle-eviction check for an established session.
    Idle,
    /// Session-ticket cache expiry sweep.
    TicketExpiry,
}

/// One scheduled timer.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    /// Absolute virtual deadline.
    pub deadline: SimTime,
    /// The session this timer belongs to (checked lazily on fire).
    pub session: SessionId,
    /// What to do when it fires.
    pub kind: TimerKind,
    /// Insertion sequence — tie-breaker so equal-deadline timers fire
    /// in schedule order, keeping runs bit-for-bit reproducible.
    seq: u64,
}

/// Base tick: 2^20 ns ≈ 1.05 ms.
const SLOT0_BITS: u32 = 20;
/// log2(slots per level).
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const LEVELS: usize = 4;
/// Deadlines further out than this go to the overflow list.
const HORIZON_BITS: u32 = SLOT0_BITS + LEVEL_BITS * LEVELS as u32;

fn level_shift(level: usize) -> u32 {
    SLOT0_BITS + LEVEL_BITS * level as u32
}

/// The wheel.
pub struct TimerWheel {
    /// `slots[level][slot]` — timers keyed by their deadline's slot
    /// index at that level's granularity.
    slots: Vec<Vec<Vec<Timer>>>,
    /// One occupancy bit per slot, per level.
    occupancy: [u64; LEVELS],
    /// Timers beyond the wheel horizon (redistributed as time nears).
    overflow: Vec<Timer>,
    /// Last instant `expire_into` ran at.
    current: u64,
    /// Live timer count.
    count: usize,
    /// Next insertion sequence number.
    next_seq: u64,
    /// Reusable drain buffer (capacity circulates with slot vecs).
    scratch: Vec<Timer>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            current: 0,
            count: 0,
            next_seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of pending timers (including lazily-cancelled ones).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arm a timer. Past deadlines are legal and fire on the next
    /// [`TimerWheel::expire_into`] call.
    pub fn schedule(&mut self, deadline: SimTime, session: SessionId, kind: TimerKind) {
        let timer = Timer { deadline, session, kind, seq: self.next_seq };
        self.next_seq += 1;
        self.count += 1;
        self.place(timer);
    }

    fn place(&mut self, timer: Timer) {
        // A deadline already due slots into the current tick so it
        // cannot land "behind" the cursor and wait for a full wrap.
        let d = timer.deadline.0.max(self.current);
        let delta = d - self.current;
        let mut level = LEVELS;
        for l in 0..LEVELS {
            if delta < 1u64 << (level_shift(l) + LEVEL_BITS) {
                level = l;
                break;
            }
        }
        if level == LEVELS {
            self.overflow.push(timer);
            return;
        }
        let slot = ((d >> level_shift(level)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level][slot].push(timer);
        self.occupancy[level] |= 1 << slot;
    }

    /// The earliest instant at which the wheel wants to run. For a
    /// timer sitting in a higher level this is its slot boundary (the
    /// cascade point), not the exact deadline — waking there re-files
    /// the timer into a finer level, so each timer costs at most
    /// [`LEVELS`] wakeups. Timers in the cursor's own slot are
    /// reported exactly.
    pub fn next_wake(&self) -> Option<SimTime> {
        if self.count == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        let mut consider = |t: u64| {
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        };
        for level in 0..LEVELS {
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let shift = level_shift(level);
            let cur_tick = self.current >> shift;
            let cur_slot = (cur_tick & (SLOTS as u64 - 1)) as usize;
            if occ & (1 << cur_slot) != 0 {
                // The cursor's slot: deadlines here are within one
                // slot width of `current`, scan them exactly.
                for timer in &self.slots[level][cur_slot] {
                    consider(timer.deadline.0.max(self.current));
                }
            }
            let mut bits = occ & !(1 << cur_slot);
            while bits != 0 {
                let s = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                // Next absolute tick whose slot index is `s`.
                let ahead = (s + SLOTS as u64 - (cur_tick & (SLOTS as u64 - 1))) % SLOTS as u64;
                consider((cur_tick + ahead) << shift);
            }
        }
        for timer in &self.overflow {
            consider(timer.deadline.0);
        }
        best.map(SimTime)
    }

    /// Advance the wheel to `now`, appending every timer whose
    /// deadline has passed to `fired` in deterministic `(deadline,
    /// schedule-order)` order. Not-yet-due timers crossed by the
    /// advance cascade down to finer levels.
    pub fn expire_into(&mut self, now: SimTime, fired: &mut Vec<Timer>) {
        let now = now.0.max(self.current);
        let prev = self.current;
        // The cursor moves first so re-filed timers cascade relative
        // to the new instant.
        self.current = now;
        let start = fired.len();
        for level in 0..LEVELS {
            let shift = level_shift(level);
            let old_tick = prev >> shift;
            let new_tick = now >> shift;
            let steps = (new_tick - old_tick).min(SLOTS as u64 - 1);
            for tick in old_tick..=old_tick + steps {
                let slot = (tick & (SLOTS as u64 - 1)) as usize;
                if self.occupancy[level] & (1 << slot) == 0 {
                    continue;
                }
                let mut batch = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut self.slots[level][slot], &mut batch);
                self.occupancy[level] &= !(1 << slot);
                for timer in batch.drain(..) {
                    if timer.deadline.0 <= now {
                        self.count -= 1;
                        fired.push(timer);
                    } else {
                        self.place(timer);
                    }
                }
                self.scratch = batch;
            }
        }
        // Overflow: fire what's due, re-file what came within the
        // horizon. Usually empty, so this scan is rarely taken.
        if !self.overflow.is_empty() {
            let mut pending = std::mem::take(&mut self.overflow);
            for timer in pending.drain(..) {
                if timer.deadline.0 <= now {
                    self.count -= 1;
                    fired.push(timer);
                } else if timer.deadline.0 - now < 1 << HORIZON_BITS {
                    self.place(timer);
                } else {
                    self.overflow.push(timer);
                }
            }
        }
        fired[start..].sort_by_key(|t| (t.deadline, t.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::Slab;

    fn sid(n: u32) -> SessionId {
        // Fabricate distinct ids through a throwaway slab.
        let mut slab = Slab::new();
        let mut last = slab.try_insert(()).unwrap();
        for _ in 0..n {
            last = slab.try_insert(()).unwrap();
        }
        last
    }

    fn fire_all(wheel: &mut TimerWheel, now: u64) -> Vec<Timer> {
        let mut fired = Vec::new();
        wheel.expire_into(SimTime(now), &mut fired);
        fired
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime(5_000_000), sid(0), TimerKind::Handshake);
        assert!(fire_all(&mut w, 4_000_000).is_empty());
        let fired = fire_all(&mut w, 5_000_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, TimerKind::Handshake);
        assert!(w.is_empty());
    }

    #[test]
    fn next_wake_guides_to_each_deadline() {
        let mut w = TimerWheel::new();
        let deadlines = [3_000_000u64, 700_000_000, 90_000_000_000];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(SimTime(d), sid(i as u32), TimerKind::Idle);
        }
        let mut fired = Vec::new();
        let mut wakes = 0;
        while let Some(t) = w.next_wake() {
            assert!(t.0 >= w.current, "wake must not run backwards");
            w.expire_into(t, &mut fired);
            wakes += 1;
            assert!(wakes < 64, "wheel must converge in bounded wakeups");
        }
        let got: Vec<u64> = fired.iter().map(|t| t.deadline.0).collect();
        assert_eq!(got, deadlines.to_vec());
    }

    #[test]
    fn equal_deadlines_fire_in_schedule_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime(1_000), sid(7), TimerKind::Idle);
        w.schedule(SimTime(1_000), sid(3), TimerKind::Handshake);
        let fired = fire_all(&mut w, 2_000);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].kind, TimerKind::Idle);
        assert_eq!(fired[1].kind, TimerKind::Handshake);
    }

    #[test]
    fn long_deadline_cascades_down_correctly() {
        // 10 virtual minutes: starts at level 2-3, must cascade and
        // still fire at the exact tick-granularity instant.
        let mut w = TimerWheel::new();
        let deadline = 600_000_000_000u64;
        w.schedule(SimTime(deadline), sid(1), TimerKind::TicketExpiry);
        let mut fired = Vec::new();
        while let Some(t) = w.next_wake() {
            assert!(fired.is_empty());
            assert!(t.0 <= deadline);
            w.expire_into(t, &mut fired);
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].deadline.0, deadline);
        assert!(w.next_wake().is_none());
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new();
        let _ = fire_all(&mut w, 50_000_000);
        w.schedule(SimTime(1_000), sid(0), TimerKind::Retry);
        assert_eq!(w.next_wake(), Some(SimTime(50_000_000)));
        let fired = fire_all(&mut w, 50_000_000);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn beyond_horizon_goes_to_overflow_and_returns() {
        let mut w = TimerWheel::new();
        // ~6 virtual hours: beyond the 4.8 h wheel horizon.
        let deadline = 6 * 3600 * 1_000_000_000u64;
        w.schedule(SimTime(deadline), sid(2), TimerKind::TicketExpiry);
        assert_eq!(w.len(), 1);
        let mut fired = Vec::new();
        let mut guard = 0;
        while let Some(t) = w.next_wake() {
            w.expire_into(t, &mut fired);
            guard += 1;
            assert!(guard < 128);
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].deadline.0, deadline);
    }

    #[test]
    fn interleaved_schedules_and_expiries_stay_sorted() {
        let mut w = TimerWheel::new();
        let mut fired = Vec::new();
        for i in 0..100u64 {
            w.schedule(SimTime((i * 7 % 50) * 1_000_000 + 1), sid(i as u32), TimerKind::Idle);
        }
        w.expire_into(SimTime(50_000_000), &mut fired);
        let batch1 = fired.len();
        assert_eq!(batch1, 100);
        assert!(fired.windows(2).all(|p| p[0].deadline <= p[1].deadline));
        for i in 0..50u64 {
            w.schedule(SimTime(60_000_000 + (i * 13 % 50) * 500_000), sid(i as u32), TimerKind::Retry);
        }
        w.expire_into(SimTime(1_000_000_000), &mut fired);
        assert_eq!(fired.len(), 150);
        assert!(w.is_empty());
        assert!(fired[batch1..].windows(2).all(|p| p[0].deadline <= p[1].deadline));
    }
}

//! Seeded load generator: opens sessions against a [`Host`] (or a
//! single [`Shard`](crate::shard::Shard)) on a deterministic arrival
//! schedule and drives the event loop until the fleet drains.
//!
//! Sessions close as their workloads complete while later arrivals
//! are still opening, so a run exercises exactly the open/close churn
//! the slab and timer wheel exist for. Everything derives from one
//! seed — and, crucially for sharding, each session's randomness
//! derives from the *global session index*, not from a sequential
//! stream: session `i` is byte-identical whether the load is driven
//! through the facade's round-robin or sliced per shard with
//! [`LoadGenerator::slice`]. Two runs with the same [`LoadConfig`]
//! produce bit-identical telemetry traces and
//! [`HostCounters`](crate::host::HostCounters), however the fleet is
//! partitioned.

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::baseline::NaiveKeyShare;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, Relay};
use mbtls_core::middlebox::{Middlebox, MiddleboxConfig};
use mbtls_core::server::MbServerSession;
use mbtls_core::{MbClientConfig, MbError, MbServerConfig, MiddleboxAuthMode};
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;

use mbtls_telemetry::{Party, SharedSink};

use crate::host::{Reactor, SessionSpec};
use crate::session::Workload;

/// Which service-function chain each middlebox-cadence session runs.
///
/// Replaces the old fixed `service_chain: bool` switch: the mix is
/// part of the [`LoadConfig`], and the [`Seeded`](ChainMix::Seeded)
/// variant composes a *different* chain per session, derived from the
/// global session index so shard slices reproduce it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainMix {
    /// One pass-through middlebox, no processors (the lightest path).
    #[default]
    PassThrough,
    /// Every chain session runs the full Slick-style web chain
    /// (filter → cache → compression, three middleboxes).
    SlickWeb,
    /// Seeded per-session composition: session `i` draws a non-empty
    /// prefix of the Slick chain from its index-derived seed, so one
    /// fleet mixes 1-, 2-, and 3-function chains deterministically.
    Seeded,
}

/// Domain-separation salt so the chain-mix draw never aliases the
/// per-session RNG seed derived from the same `(seed, index)` pair.
const CHAIN_MIX_SALT: u64 = 0x00C4_A1A1_1CE5_u64;

impl ChainMix {
    /// The service chain session `index` runs, or `None` for a single
    /// pass-through middlebox. Index-addressed, like everything else
    /// the generator derives, so slices agree with the full run.
    pub fn compose(self, seed: u64, index: u64) -> Option<mbtls_mboxes::ServiceChain> {
        match self {
            ChainMix::PassThrough => None,
            ChainMix::SlickWeb => Some(mbtls_mboxes::ServiceChain::slick_web()),
            ChainMix::Seeded => {
                let full = mbtls_mboxes::ServiceChain::slick_web();
                let n = 1 + (session_seed(seed ^ CHAIN_MIX_SALT, index) as usize % full.len());
                Some(full.prefix(n))
            }
        }
    }
}

/// Shape of a generated load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total sessions to open.
    pub sessions: usize,
    /// Virtual time between consecutive arrivals.
    pub arrival_spacing: Duration,
    /// Every `n`th session gets one middlebox (0 = none ever).
    pub middlebox_every: usize,
    /// Per-link one-way latency for generated sessions.
    pub latency: Duration,
    /// Post-handshake workload per session.
    pub workload: Workload,
    /// Seed for the PKI testbed and every per-session RNG.
    pub seed: u64,
    /// Reconnect storm: prime one session ticket before the run (a
    /// deterministic out-of-band handshake) and hand it to every
    /// generated client, so abbreviated resumption handshakes — no
    /// certificate transfer, no signature checks — are the hot path.
    pub resumption_storm: bool,
    /// In a storm, every `n`th session offers a corrupted (stale)
    /// ticket instead; the server rejects the seal and falls back to
    /// a full handshake (0 = every ticket fresh). Models tickets that
    /// outlived the server's cache.
    pub stale_every: usize,
    /// Endpoints defer certificate/signature checks
    /// (`ClientConfig::defer_verify`) for the shard's end-of-turn
    /// batched verification flush instead of verifying inline.
    pub defer_verify: bool,
    /// Service-chain composition for sessions on the
    /// `middlebox_every` cadence (see [`ChainMix`]).
    pub chain_mix: ChainMix,
    /// Clients declare the whole path read-only and reuse the bridge
    /// keys for every hop (`MbClientConfig::read_only_middleboxes`),
    /// so pass-through middleboxes take the tag-verify forward fast
    /// path. Combining this with a non-trivial `chain_mix` works only
    /// because the chain's processors leave this workload's raw
    /// (non-HTTP) bytes untouched, so their undeclared reseals are
    /// byte-identical; a middlebox that actually modified a record
    /// on aliased keys would fail its session — the data plane
    /// refuses to re-seal different plaintext under an already-spent
    /// AES-GCM nonce.
    pub read_only_path: bool,
    /// How endpoints authenticate the middleboxes in generated
    /// sessions: SGX-attested (paper mbTLS), delegated credentials
    /// (mdTLS-style, DESIGN.md §6j), or key-shared (naive baseline —
    /// the middlebox is a [`NaiveKeyShare`] relay with no identity
    /// and no secondary handshake at all).
    pub auth_mode: MiddleboxAuthMode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 100,
            arrival_spacing: Duration::from_micros(500),
            middlebox_every: 4,
            latency: Duration::from_micros(50),
            workload: Workload::default(),
            seed: 7,
            resumption_storm: false,
            stale_every: 0,
            defer_verify: false,
            chain_mix: ChainMix::PassThrough,
            read_only_path: false,
            auth_mode: MiddleboxAuthMode::SgxAttested,
        }
    }
}

/// splitmix64-style finalizer deriving session `index`'s RNG seed
/// from the run seed. Index-addressed (not stream-positional), so a
/// shard slice reproduces exactly the sessions it would have been
/// dealt by the full run.
fn session_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds session chains from one shared PKI testbed and opens them
/// on schedule. [`LoadGenerator::new`] generates the whole run;
/// [`LoadGenerator::slice`] generates one shard's residue class of
/// it (sessions `i` with `i ≡ shard (mod shards)`), producing specs
/// byte-identical to the full run's.
pub struct LoadGenerator {
    testbed: Testbed,
    client_cfg: Arc<MbClientConfig>,
    /// Storm variant of `client_cfg` whose cached ticket is
    /// corrupted, for the `stale_every` cadence (None outside
    /// storms).
    client_cfg_stale: Option<Arc<MbClientConfig>>,
    server_cfg: Arc<MbServerConfig>,
    config: LoadConfig,
    /// Sink plugged into every generated middlebox's config, so
    /// record-level relay events (decrypt/encrypt/fast-forward) land
    /// in the host's trace (None = middlebox telemetry off).
    telemetry: Option<SharedSink>,
    /// This generator's residue class: `(shard, shards)`.
    shard: u64,
    shards: u64,
    /// Sessions already produced from this slice.
    produced: usize,
}

impl LoadGenerator {
    /// Stand up certificates, trust stores, and attestation once;
    /// every generated session shares them.
    pub fn new(config: LoadConfig) -> Self {
        LoadGenerator::slice(config, 0, 1)
    }

    /// The slice of `config`'s run owned by `shard` out of `shards`:
    /// global sessions `shard, shard + shards, shard + 2·shards, …`.
    /// Each slice builds its own (identical, same-seed) testbed, so
    /// per-shard generators stay shared-nothing.
    pub fn slice(config: LoadConfig, shard: u16, shards: u16) -> Self {
        let testbed = Testbed::new(config.seed);
        // Delegated fleets swap both endpoint configs: the server
        // carries the credential issuer's delegation policy and the
        // client verifies credentials instead of SGX quotes. The
        // key-shared baseline keeps plain endpoint configs — its
        // middleboxes never run a secondary handshake to authorize.
        let server_cfg = Arc::new(match config.auth_mode {
            MiddleboxAuthMode::Delegated => testbed.server_config_delegated().expect("testbed delegated config"),
            MiddleboxAuthMode::SgxAttested | MiddleboxAuthMode::KeyShared => {
                testbed.server_config()
            }
        });
        let mut client_cfg = match config.auth_mode {
            MiddleboxAuthMode::Delegated => testbed.client_config_delegated().expect("testbed delegated config"),
            MiddleboxAuthMode::SgxAttested | MiddleboxAuthMode::KeyShared => {
                testbed.client_config()
            }
        };
        client_cfg.tls.defer_verify = config.defer_verify;
        client_cfg.read_only_middleboxes = config.read_only_path;
        let mut client_cfg_stale = None;
        if config.resumption_storm {
            let ticket = Self::prime_ticket(&testbed, config.seed);
            client_cfg
                .tls
                .resumption_cache
                .insert("server.example".to_string(), ticket.clone());
            if config.stale_every > 0 {
                // A byte flipped mid-ciphertext breaks the ticket's
                // AEAD seal: the server silently falls back to a full
                // handshake, which is exactly what a ticket evicted
                // from the server's rotation would get.
                let mut stale = ticket;
                if let Some(bytes) = &mut stale.ticket {
                    if let Some(mid) = bytes.len().checked_sub(1) {
                        bytes[mid / 2] ^= 0x01;
                    }
                }
                let mut cfg = testbed.client_config();
                cfg.tls.defer_verify = config.defer_verify;
                cfg.tls.resumption_cache.insert("server.example".to_string(), stale);
                client_cfg_stale = Some(Arc::new(cfg));
            }
        }
        LoadGenerator {
            testbed,
            client_cfg: Arc::new(client_cfg),
            client_cfg_stale,
            server_cfg,
            config,
            telemetry: None,
            shard: shard as u64,
            shards: shards.max(1) as u64,
            produced: 0,
        }
    }

    /// One deterministic out-of-band full handshake against the
    /// testbed's server, yielding the session ticket every storm
    /// client resumes from. Derived from a reserved session index so
    /// it can never collide with a generated session's RNG stream.
    fn prime_ticket(testbed: &Testbed, seed: u64) -> mbtls_tls::session::ResumptionData {
        let mut rng = CryptoRng::from_seed(session_seed(seed, u64::MAX));
        let client = MbClientSession::new(
            Arc::new(testbed.client_config()),
            "server.example",
            rng.fork(),
        );
        let server = MbServerSession::new(Arc::new(testbed.server_config()), rng.fork());
        let mut chain = Chain::new(Box::new(client), Vec::new(), Box::new(server));
        chain
            .run_handshake()
            .expect("priming handshake over in-memory pipes cannot fail");
        chain
            .client
            .resumption()
            .expect("testbed server issues tickets; priming handshake must yield one")
    }

    /// Attach a telemetry sink to every middlebox this generator
    /// builds from here on (shares the host's sink and clock, so
    /// relay record events interleave with host lifecycle events).
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        self.telemetry = Some(sink);
    }

    /// The middlebox config matching the run's auth mode.
    fn middlebox_config(&self) -> MiddleboxConfig {
        match self.config.auth_mode {
            MiddleboxAuthMode::Delegated => self.testbed.middlebox_config_delegated().expect("testbed delegated config"),
            MiddleboxAuthMode::SgxAttested | MiddleboxAuthMode::KeyShared => {
                self.testbed.middlebox_config(&self.testbed.mbox_code)
            }
        }
    }

    /// Global index of the next session this slice will produce.
    fn next_index(&self) -> u64 {
        self.shard + self.produced as u64 * self.shards
    }

    /// Sessions of this slice not yet opened.
    pub fn remaining(&self) -> usize {
        let total = self.config.sessions as u64;
        if self.shard >= total {
            return 0;
        }
        // Count of i < total with i ≡ shard (mod shards).
        let slice_total = ((total - self.shard - 1) / self.shards + 1) as usize;
        slice_total - self.produced
    }

    /// When the next session is due to open, if any remain. Arrival
    /// times are global (index × spacing), so sliced shards see the
    /// same schedule the full run would give their sessions.
    pub fn next_arrival(&self) -> Option<SimTime> {
        (self.remaining() > 0)
            .then(|| SimTime::ZERO.plus(self.config.arrival_spacing.times(self.next_index())))
    }

    /// Build the next session's spec (advances the schedule).
    pub fn make_spec(&mut self) -> SessionSpec {
        let i = self.next_index();
        self.produced += 1;
        let mut rng = CryptoRng::from_seed(session_seed(self.config.seed, i));
        let with_middlebox = self.config.middlebox_every > 0
            && (i as usize).is_multiple_of(self.config.middlebox_every);
        let stale = self.client_cfg_stale.is_some()
            && self.config.stale_every > 0
            && (i as usize).is_multiple_of(self.config.stale_every);
        let client_cfg = if stale {
            self.client_cfg_stale.as_ref().unwrap().clone()
        } else {
            self.client_cfg.clone()
        };
        let client = MbClientSession::new(client_cfg, "server.example", rng.fork());
        let server = MbServerSession::new(self.server_cfg.clone(), rng.fork());
        let middles: Vec<Box<dyn Relay>> = if with_middlebox {
            if self.config.auth_mode == MiddleboxAuthMode::KeyShared {
                // Naive baseline: the middlebox is a shared-key relay
                // with no identity — it joins by being on the path,
                // adding zero handshake bytes and zero authorization
                // work (the gap the security matrix demonstrates).
                let mut mb = NaiveKeyShare::new();
                if let Some(sink) = &self.telemetry {
                    mb.set_telemetry(sink.clone(), Party::Middlebox(0));
                }
                vec![Box::new(mb)]
            } else if let Some(chain) = self.config.chain_mix.compose(self.config.seed, i) {
                // A Slick-style chain: one middlebox per function,
                // client side first. The workload's raw (non-HTTP)
                // bytes pass through every element unchanged, so the
                // chain exercises multi-hop relay cost and shared
                // processor state without perturbing the byte counts
                // the reactor's completion accounting relies on.
                chain
                    .build_processors()
                    .into_iter()
                    .enumerate()
                    .map(|(pos, p)| {
                        let mut cfg = self.middlebox_config();
                        cfg.telemetry = self.telemetry.clone();
                        cfg.telemetry_party = Party::Middlebox(pos as u8);
                        Box::new(Middlebox::with_processor(cfg, rng.fork(), p)) as Box<dyn Relay>
                    })
                    .collect()
            } else {
                let mut cfg = self.middlebox_config();
                cfg.telemetry = self.telemetry.clone();
                vec![Box::new(Middlebox::new(cfg, rng.fork()))]
            }
        } else {
            Vec::new()
        };
        SessionSpec {
            chain: Chain::new(Box::new(client), middles, Box::new(server)),
            latency: self.config.latency,
            faults: FaultConfig::none(),
            workload: self.config.workload,
        }
    }

    /// Open every session at its scheduled arrival and run the
    /// reactor until all of them finish (or `deadline` passes in
    /// virtual time). Interleaves arrivals with the event loop so
    /// early sessions complete while later ones are still opening.
    /// Drives a whole [`Host`](crate::host::Host) or one
    /// [`Shard`](crate::shard::Shard) — anything implementing
    /// [`Reactor`].
    pub fn drive<R: Reactor>(&mut self, host: &mut R, deadline: SimTime) -> Result<(), MbError> {
        loop {
            while self.next_arrival().is_some_and(|at| at <= host.now()) {
                let spec = self.make_spec();
                host.open(spec)?;
            }
            if self.remaining() == 0 && host.live() == 0 {
                return Ok(());
            }
            if host.now() > deadline {
                return Err(MbError::Timeout("load run deadline exceeded".into()));
            }
            if host.has_ready() {
                host.step()?;
                continue;
            }
            match (host.next_event(), self.next_arrival()) {
                (Some(event), Some(arrival)) if event <= arrival => {
                    host.step()?;
                }
                (_, Some(arrival)) => {
                    host.advance_clock(arrival);
                }
                (Some(_), None) => {
                    host.step()?;
                }
                (None, None) => {
                    return Err(MbError::unexpected_state(
                        "load generator quiescent with live sessions",
                    ));
                }
            }
        }
    }
}

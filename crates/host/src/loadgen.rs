//! Seeded load generator: opens sessions against a [`SessionHost`]
//! on a deterministic arrival schedule and drives the event loop
//! until the fleet drains.
//!
//! Sessions close as their workloads complete while later arrivals
//! are still opening, so a run exercises exactly the open/close churn
//! the slab and timer wheel exist for. Everything derives from one
//! seed: two runs with the same [`LoadConfig`] produce bit-identical
//! telemetry traces and [`HostCounters`](crate::host::HostCounters).

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, Relay};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_core::{MbClientConfig, MbError, MbServerConfig};
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::time::{Duration, SimTime};
use mbtls_netsim::FaultConfig;

use crate::host::{SessionHost, SessionSpec};
use crate::session::Workload;
use crate::substrate::Substrate;

/// Shape of a generated load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total sessions to open.
    pub sessions: usize,
    /// Virtual time between consecutive arrivals.
    pub arrival_spacing: Duration,
    /// Every `n`th session gets one middlebox (0 = none ever).
    pub middlebox_every: usize,
    /// Per-link one-way latency for generated sessions.
    pub latency: Duration,
    /// Post-handshake workload per session.
    pub workload: Workload,
    /// Seed for the PKI testbed and every per-party RNG.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 100,
            arrival_spacing: Duration::from_micros(500),
            middlebox_every: 4,
            latency: Duration::from_micros(50),
            workload: Workload::default(),
            seed: 7,
        }
    }
}

/// Builds session chains from one shared PKI testbed and opens them
/// on schedule.
pub struct LoadGenerator {
    testbed: Testbed,
    client_cfg: Arc<MbClientConfig>,
    server_cfg: Arc<MbServerConfig>,
    config: LoadConfig,
    rng: CryptoRng,
    opened: usize,
}

impl LoadGenerator {
    /// Stand up certificates, trust stores, and attestation once;
    /// every generated session shares them.
    pub fn new(config: LoadConfig) -> Self {
        let mut testbed = Testbed::new(config.seed);
        let client_cfg = Arc::new(testbed.client_config());
        let server_cfg = Arc::new(testbed.server_config());
        let rng = testbed.rng.fork();
        LoadGenerator { testbed, client_cfg, server_cfg, config, rng, opened: 0 }
    }

    /// Sessions not yet opened.
    pub fn remaining(&self) -> usize {
        self.config.sessions - self.opened
    }

    /// When the next session is due to open, if any remain.
    pub fn next_arrival(&self) -> Option<SimTime> {
        (self.opened < self.config.sessions)
            .then(|| SimTime::ZERO.plus(self.config.arrival_spacing.times(self.opened as u64)))
    }

    /// Build the next session's spec (advances the schedule).
    pub fn make_spec(&mut self) -> SessionSpec {
        let i = self.opened;
        self.opened += 1;
        let with_middlebox =
            self.config.middlebox_every > 0 && i.is_multiple_of(self.config.middlebox_every);
        let client =
            MbClientSession::new(self.client_cfg.clone(), "server.example", self.rng.fork());
        let server = MbServerSession::new(self.server_cfg.clone(), self.rng.fork());
        let middles: Vec<Box<dyn Relay>> = if with_middlebox {
            let cfg = self.testbed.middlebox_config(&self.testbed.mbox_code);
            vec![Box::new(Middlebox::new(cfg, self.rng.fork()))]
        } else {
            Vec::new()
        };
        SessionSpec {
            chain: Chain::new(Box::new(client), middles, Box::new(server)),
            latency: self.config.latency,
            faults: FaultConfig::none(),
            workload: self.config.workload,
        }
    }

    /// Open every session at its scheduled arrival and run the host
    /// until all of them finish (or `deadline` passes in virtual
    /// time). Interleaves arrivals with the host's own event loop so
    /// early sessions complete while later ones are still opening.
    pub fn drive<S: Substrate>(
        &mut self,
        host: &mut SessionHost<S>,
        deadline: SimTime,
    ) -> Result<(), MbError> {
        loop {
            while self.next_arrival().is_some_and(|at| at <= host.now()) {
                let spec = self.make_spec();
                host.open(spec)?;
            }
            if self.remaining() == 0 && host.live() == 0 {
                return Ok(());
            }
            if host.now() > deadline {
                return Err(MbError::Timeout("load run deadline exceeded".into()));
            }
            if host.has_ready() {
                host.step()?;
                continue;
            }
            match (host.next_event(), self.next_arrival()) {
                (Some(event), Some(arrival)) if event <= arrival => {
                    host.step()?;
                }
                (_, Some(arrival)) => {
                    host.advance_clock(arrival);
                }
                (Some(_), None) => {
                    host.step()?;
                }
                (None, None) => {
                    return Err(MbError::unexpected_state(
                        "load generator quiescent with live sessions",
                    ));
                }
            }
        }
    }
}

#!/usr/bin/env bash
# Bench reporters: the seeded crypto-primitive/record-path benches
# (BENCH_dataplane.json), the session-host capacity benches
# (BENCH_scale.json), the handshake fast-path benches
# (BENCH_handshake.json), the read-only-forward / service-chain
# benches (BENCH_chain.json), and the middlebox-authorization
# comparison (BENCH_auth.json), each validated for shape so a
# silently-broken reporter fails loudly.
#
#   scripts/bench_report.sh           full run; writes BENCH_dataplane.json
#                                     (~40 s), BENCH_scale.json (hours:
#                                     the 10k/100k/1M × 1/2/4/8-shard
#                                     matrix, rewritten after every tier),
#                                     BENCH_handshake.json (~10 min),
#                                     BENCH_chain.json (~1 min), and
#                                     BENCH_auth.json (~1 min) at the
#                                     repo root — the committed artifacts
#   scripts/bench_report.sh --smoke   tiny budgets (seconds) writing to
#                                     target/; used by scripts/check.sh
#                                     as the gate
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    mkdir -p target
fi

# validate <file> <required-key>...: non-empty, every key present, and
# parseable as one JSON object (python3 is in the toolchain image;
# fall back to the key check alone if it ever is not).
validate() {
    local out="$1"
    shift
    if [[ ! -s "$out" ]]; then
        echo "FAIL: $out is missing or empty" >&2
        exit 1
    fi
    local key
    for key in "$@"; do
        if ! grep -q "\"$key\"" "$out"; then
            echo "FAIL: $out is malformed — missing \"$key\"" >&2
            exit 1
        fi
    done
    if command -v python3 > /dev/null; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out" || {
            echo "FAIL: $out is not valid JSON" >&2
            exit 1
        }
    fi
}

# Stage 1: data-plane fast path.
OUT="BENCH_dataplane.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_dataplane.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin bench_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" throughput_mb_s aes_gcm_bitsliced_seal aes_gcm_reference_seal \
         endpoint_seal_record middlebox_forward_record \
         allocs_per_record_endpoint allocs_per_record_middlebox
echo "OK: wrote $OUT"

# validate_scale <file>: structural checks specific to the sharded
# BENCH_scale.json schema — every fleet size must carry a
# cores-vs-throughput curve (per-shard walls included) and the
# double-run determinism verdict must be true.
validate_scale() {
    local out="$1"
    if ! command -v python3 > /dev/null; then
        return 0
    fi
    python3 - "$out" <<'PY' || exit 1
import json, sys

report = json.load(open(sys.argv[1]))
assert report.get("model") == "max_shard_wall", "missing throughput model tag"
tiers = report["sessions"]
assert tiers, "no fleet sizes measured"
for tier in tiers:
    curve = tier["curve"]
    assert curve, f"fleet n={tier['n']} has no shard curve"
    for run in curve:
        assert run["shards"] >= 1
        assert len(run["per_shard_wall_ms"]) == run["shards"], \
            f"n={tier['n']}: shard {run['shards']} row lacks per-shard walls"
        assert run["max_shard_wall_ms"] > 0
        assert run["handshakes_per_s"] > 0
        assert run["records_per_s"] > 0
    shard_counts = [run["shards"] for run in curve]
    assert shard_counts == sorted(shard_counts), "curve rows must ascend"
    assert 4 in shard_counts, f"n={tier['n']}: curve is missing the 4-shard row"
allocs = report["allocs_per_record_per_shard"]
assert allocs and all(a == 0.0 for a in allocs), \
    f"steady state allocates: {allocs} allocs/record per shard"
det = report["determinism"]
assert det["identical"] is True, "double-run determinism verdict is false"
assert det["shards"] >= 2, "determinism probe must cover multiple shards"
print(f"scale schema OK: {len(tiers)} fleet size(s), "
      f"curves {shard_counts}, determinism true")
PY
}

# Stage 2: session-host capacity under churn (sharded matrix).
OUT="BENCH_scale.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_scale.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin scale_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" sessions model curve per_shard_wall_ms max_shard_wall_ms \
         handshakes_per_s records_per_s speedup_4_over_1 \
         p50_handshake_ms p99_handshake_ms bytes_per_session \
         allocs_per_record_steady allocs_per_record_per_shard determinism identical
validate_scale "$OUT"
echo "OK: wrote $OUT"

# validate_handshake <file>: structural checks for BENCH_handshake.json
# plus the regression floors — on full runs only, since smoke budgets
# are too small for stable ratios — batched verification must beat
# single by ≥2×, a resumed handshake must cost ≤¼ of a full one, and
# the storm path must beat the all-full baseline at every shard count.
validate_handshake() {
    local out="$1"
    if ! command -v python3 > /dev/null; then
        return 0
    fi
    python3 - "$out" <<'PY' || exit 1
import json, sys

report = json.load(open(sys.argv[1]))
smoke = report["smoke"]
verify = report["verify"]
assert verify, "no verification batch rows"
for row in verify:
    assert row["batch"] >= 2, "batch sizes below 2 measure nothing"
    assert row["single_verifies_per_s"] > 0
    assert row["batched_verifies_per_s"] > 0
batches = [row["batch"] for row in verify]
assert batches == sorted(batches), "verify rows must ascend by batch size"
best = report["best_batch_speedup"]
assert best == max(row["speedup"] for row in verify), \
    "best_batch_speedup disagrees with the verify rows"
cpu = report["handshake_cpu"]
assert cpu["full_us"] > 0 and cpu["resumed_us"] > 0
storm = report["storm"]
assert storm, "no storm curve rows"
shard_counts = [run["shards"] for run in storm]
assert shard_counts == sorted(shard_counts), "storm rows must ascend"
for run in storm:
    assert run["full_handshakes_per_s"] > 0
    assert run["storm_handshakes_per_s"] > 0
    assert 0.0 < run["storm_resumed_share"] <= 1.0
det = report["determinism"]
assert det["identical"] is True, "double-run determinism verdict is false"
assert det["batching"] is True, "determinism probe must run with batching on"
if not smoke:
    assert best >= 2.0, f"batched verify speedup regressed: {best}x < 2x floor"
    assert cpu["resumed_over_full"] <= 0.25, \
        f"resumed handshake too costly: {cpu['resumed_over_full']} of full"
    for run in storm:
        assert run["storm_handshakes_per_s"] > run["full_handshakes_per_s"], \
            f"storm loses to full baseline at {run['shards']} shard(s)"
print(f"handshake schema OK: batches {batches}, best speedup {best}x, "
      f"resumed/full {cpu['resumed_over_full']}, "
      f"storm shards {shard_counts}, determinism true"
      + (" (smoke: floors skipped)" if smoke else ""))
PY
}

# Stage 3: handshake fast path (batched verify, resumption storm).
OUT="BENCH_handshake.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_handshake.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin handshake_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" verify best_batch_speedup handshake_cpu resumed_over_full \
         storm storm_handshakes_per_s storm_resumed_share determinism identical
validate_handshake "$OUT"
echo "OK: wrote $OUT"

# validate_chain <file>: structural checks for BENCH_chain.json plus
# the regression floors — the read-only forward must beat open+reseal
# by ≥1.5× (the whole point of the fast path; in practice it is ~an
# order of magnitude), its steady state must be allocation-free, and
# two same-seed chain runs must produce bit-identical byte streams.
# Unlike the throughput-ratio floors elsewhere, these hold even at
# smoke budgets: skipping a body decrypt wins at any record count,
# and allocs/determinism are exact, not statistical.
validate_chain() {
    local out="$1"
    if ! command -v python3 > /dev/null; then
        return 0
    fi
    python3 - "$out" <<'PY' || exit 1
import json, sys

report = json.load(open(sys.argv[1]))
hops = report["per_hop_mb_s"]
for key in ("endpoint_seal", "middlebox_open_reseal",
            "middlebox_read_only_forward", "raw_tag_verify"):
    assert hops.get(key, 0) > 0, f"per-hop metric {key} missing or zero"
speedup = report["read_only_speedup"]
assert speedup >= 1.5, \
    f"read-only fast path regressed: {speedup}x < 1.5x over open+reseal"
chains = report["chain_mb_s"]
for key in ("middleboxes_1", "middleboxes_2", "middleboxes_3",
            "middleboxes_3_read_only"):
    assert chains.get(key, 0) > 0, f"chain config {key} missing or zero"
amortized = report["amortized_mb_s"]
for key in ("middleboxes_3_resp_4k", "middleboxes_3_resp_64k",
            "middleboxes_3_resp_256k", "middleboxes_3_reuse_x1",
            "middleboxes_3_reuse_x16"):
    assert amortized.get(key, 0) > 0, f"amortized config {key} missing or zero"
# Structural floors (hold at smoke budgets too): the same exchange
# budget on one reused session strictly beats one handshake per
# exchange, and a 256k response strictly beats 4k per byte moved.
assert amortized["middleboxes_3_reuse_x16"] > amortized["middleboxes_3_reuse_x1"], \
    "session reuse does not amortize the handshake"
assert amortized["middleboxes_3_resp_256k"] > amortized["middleboxes_3_resp_4k"], \
    "large responses do not amortize per-record overhead"
allocs = report["allocs_per_record_read_only"]
assert allocs == 0.0, \
    f"read-only steady state allocates: {allocs} allocs/record"
assert report["determinism"] == "identical", \
    "double-run chain determinism verdict is not identical"
print(f"chain schema OK: read-only {speedup}x over reseal, "
      f"{allocs} allocs/record, determinism identical")
PY
}

# Stage 4: read-only forward fast path + service-function chains.
OUT="BENCH_chain.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_chain.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin chain_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" per_hop_mb_s endpoint_seal middlebox_open_reseal \
         middlebox_read_only_forward raw_tag_verify read_only_speedup \
         chain_mb_s amortized_mb_s allocs_per_record_read_only determinism
validate_chain "$OUT"
echo "OK: wrote $OUT"

# validate_auth <file>: structural checks for BENCH_auth.json plus the
# regression floors — delegated credentials must stay strictly cheaper
# than SGX attestation on both handshake bytes and CPU. The byte floor
# is exact (deterministic handshake transcripts) and the CPU floor is
# dominated by the modeled attestation round-trip (~1.75 virtual ms
# charged only to the sgx_attested row), so both hold at smoke budgets.
validate_auth() {
    local out="$1"
    if ! command -v python3 > /dev/null; then
        return 0
    fi
    python3 - "$out" <<'PY' || exit 1
import json, sys

report = json.load(open(sys.argv[1]))
modes = report["modes"]
for name in ("delegated", "sgx_attested", "key_shared"):
    row = modes.get(name)
    assert row, f"auth mode {name} missing"
    assert row["handshake_bytes"] > 0, f"{name}: no handshake bytes counted"
    assert row["cpu_us"] > 0, f"{name}: no CPU measured"
delegated = modes["delegated"]
attested = modes["sgx_attested"]
shared = modes["key_shared"]
assert delegated["handshake_bytes"] < attested["handshake_bytes"], \
    "delegated handshake is not smaller than SGX-attested"
assert delegated["cpu_us"] < attested["cpu_us"], \
    "delegated handshake is not cheaper than SGX-attested"
assert delegated["artifact_bytes"] > 0, "delegated credential has no encoding"
assert shared["artifact_bytes"] == 0, "key-shared mode should carry no artifact"
assert attested["modeled_attestation_us"] > 0, \
    "SGX row is missing the modeled attestation surcharge"
assert delegated["modeled_attestation_us"] == 0
assert shared["modeled_attestation_us"] == 0
assert 0.0 < report["delegated_bytes_ratio"] < 1.0, \
    f"bytes ratio out of range: {report['delegated_bytes_ratio']}"
assert 0.0 < report["delegated_cpu_ratio"] < 1.0, \
    f"CPU ratio out of range: {report['delegated_cpu_ratio']}"
assert report["determinism"] == "identical", \
    "double-run auth handshake determinism verdict is not identical"
print(f"auth schema OK: delegated/attested bytes "
      f"{report['delegated_bytes_ratio']}, cpu {report['delegated_cpu_ratio']}, "
      f"determinism identical")
PY
}

# Stage 5: middlebox-authorization comparison (delegated credentials
# vs SGX attestation vs naive key sharing).
OUT="BENCH_auth.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_auth.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin auth_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" modes delegated sgx_attested key_shared handshake_bytes \
         artifact_bytes measured_cpu_us modeled_attestation_us cpu_us \
         delegated_bytes_ratio delegated_cpu_ratio determinism
validate_auth "$OUT"
echo "OK: wrote $OUT"

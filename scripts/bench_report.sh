#!/usr/bin/env bash
# Data-plane bench reporter: runs the seeded crypto-primitive and
# record-path benches and emits BENCH_dataplane.json, then validates
# the artifact's shape so a silently-broken reporter fails loudly.
#
#   scripts/bench_report.sh           full run (stable numbers, ~10 s);
#                                     writes BENCH_dataplane.json at the
#                                     repo root — the committed artifact
#   scripts/bench_report.sh --smoke   tiny budget (sub-second) writing
#                                     target/BENCH_dataplane.json; used
#                                     by scripts/check.sh as the gate
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_dataplane.json"
ARGS=()
if [[ "${1:-}" == "--smoke" ]]; then
    mkdir -p target
    OUT="target/BENCH_dataplane.json"
    ARGS+=(--smoke)
fi

cargo run -q --release -p mbtls-bench --bin bench_report -- "${ARGS[@]}" --out "$OUT" > /dev/null

if [[ ! -s "$OUT" ]]; then
    echo "FAIL: $OUT is missing or empty" >&2
    exit 1
fi

# Shape check: required keys present, and the file is one JSON object
# (python3 is in the toolchain image; fall back to the key check alone
# if it ever is not).
for key in throughput_mb_s aes_gcm_bitsliced_seal aes_gcm_reference_seal \
           endpoint_seal_record middlebox_forward_record \
           allocs_per_record_endpoint allocs_per_record_middlebox; do
    if ! grep -q "\"$key\"" "$OUT"; then
        echo "FAIL: $OUT is malformed — missing \"$key\"" >&2
        exit 1
    fi
done
if command -v python3 > /dev/null; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT" || {
        echo "FAIL: $OUT is not valid JSON" >&2
        exit 1
    }
fi

echo "OK: wrote $OUT"

#!/usr/bin/env bash
# Bench reporters: the seeded crypto-primitive/record-path benches
# (BENCH_dataplane.json) and the session-host capacity benches
# (BENCH_scale.json), each validated for shape so a silently-broken
# reporter fails loudly.
#
#   scripts/bench_report.sh           full run (stable numbers, ~40 s);
#                                     writes BENCH_dataplane.json and
#                                     BENCH_scale.json at the repo root —
#                                     the committed artifacts
#   scripts/bench_report.sh --smoke   tiny budgets (seconds) writing to
#                                     target/; used by scripts/check.sh
#                                     as the gate
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    mkdir -p target
fi

# validate <file> <required-key>...: non-empty, every key present, and
# parseable as one JSON object (python3 is in the toolchain image;
# fall back to the key check alone if it ever is not).
validate() {
    local out="$1"
    shift
    if [[ ! -s "$out" ]]; then
        echo "FAIL: $out is missing or empty" >&2
        exit 1
    fi
    local key
    for key in "$@"; do
        if ! grep -q "\"$key\"" "$out"; then
            echo "FAIL: $out is malformed — missing \"$key\"" >&2
            exit 1
        fi
    done
    if command -v python3 > /dev/null; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out" || {
            echo "FAIL: $out is not valid JSON" >&2
            exit 1
        }
    fi
}

# Stage 1: data-plane fast path.
OUT="BENCH_dataplane.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_dataplane.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin bench_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" throughput_mb_s aes_gcm_bitsliced_seal aes_gcm_reference_seal \
         endpoint_seal_record middlebox_forward_record \
         allocs_per_record_endpoint allocs_per_record_middlebox
echo "OK: wrote $OUT"

# Stage 2: session-host capacity under churn.
OUT="BENCH_scale.json"
ARGS=()
if [[ "$SMOKE" == 1 ]]; then
    OUT="target/BENCH_scale.json"
    ARGS+=(--smoke)
fi
cargo run -q --release -p mbtls-bench --bin scale_report -- "${ARGS[@]}" --out "$OUT" > /dev/null
validate "$OUT" sessions handshakes_per_s records_per_s \
         p50_handshake_ms p99_handshake_ms bytes_per_session \
         allocs_per_record_steady determinism identical
echo "OK: wrote $OUT"

#!/usr/bin/env bash
# Full local gate: invariant lint, lint-clean build, tests, the
# telemetry smoke test, and a smoke run of the data-plane bench
# reporter. CI-equivalent; run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

# Workspace invariant checker first: sans-IO purity, secret hygiene,
# panic-freedom, constant-time discipline. Fails on any unannotated
# finding; the JSON-lines report feeds dashboards/CI artifacts.
mkdir -p target
cargo run -q -p mbtls-lint --release -- --json target/lint-report.jsonl

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
scripts/telemetry_smoke.sh

# Bench-reporter smoke: proves BENCH_dataplane.json can be produced
# and is well-formed. Numbers from this run are noisy by design; the
# committed artifact comes from a full `scripts/bench_report.sh` run.
scripts/bench_report.sh --smoke

echo "all checks passed"

#!/usr/bin/env bash
# Full local gate: invariant lint, lint-clean build, tests, and the
# telemetry smoke test. CI-equivalent; run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

# Workspace invariant checker first: sans-IO purity, secret hygiene,
# panic-freedom, constant-time discipline. Fails on any unannotated
# finding; the JSON-lines report feeds dashboards/CI artifacts.
mkdir -p target
cargo run -q -p mbtls-lint --release -- --json target/lint-report.jsonl

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
scripts/telemetry_smoke.sh

echo "all checks passed"

#!/usr/bin/env bash
# Full local gate: invariant lint, lint-clean build, tests, the
# telemetry smoke test, and a smoke run of the data-plane bench
# reporter. CI-equivalent; run before pushing.
#
#   --lint-strict   additionally cap whole-file lint waivers at the
#                   committed baseline below. Per-line `lint:allow`
#                   annotations are always permitted; file-level
#                   `lint:allow-file` opt-outs may only shrink, so a
#                   new one fails this stage until the baseline is
#                   deliberately lowered here alongside the fix.
set -euo pipefail
cd "$(dirname "$0")/.."

# No file-level waivers remain: the last one (the const-time opt-out
# in crates/crypto/src/aes_ref.rs) was retired when the reference AES
# oracle moved behind `cfg(any(test, feature = "reference-oracle"))`
# and the linter learned to skip file-level test-gated modules.
FILE_WAIVER_BASELINE=0

LINT_ARGS=(--json target/lint-report.jsonl)
if [[ "${1:-}" == "--lint-strict" ]]; then
    LINT_ARGS+=(--max-file-waivers "$FILE_WAIVER_BASELINE")
    shift
fi

# Workspace invariant checker first: sans-IO purity, secret hygiene,
# panic-freedom, constant-time discipline. Fails on any unannotated
# finding; the JSON-lines report feeds dashboards/CI artifacts.
mkdir -p target
cargo run -q -p mbtls-lint --release -- "${LINT_ARGS[@]}"

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
scripts/telemetry_smoke.sh

# Bench-reporter smoke: proves BENCH_dataplane.json (data-plane) and
# BENCH_scale.json (session-host capacity) can be produced and are
# well-formed. Numbers from this run are noisy by design; the
# committed artifacts come from a full `scripts/bench_report.sh` run.
scripts/bench_report.sh --smoke

echo "all checks passed"

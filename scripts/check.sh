#!/usr/bin/env bash
# Full local gate: lint-clean build, tests, and the telemetry smoke
# test. CI-equivalent; run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
scripts/telemetry_smoke.sh

echo "all checks passed"

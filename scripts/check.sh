#!/usr/bin/env bash
# Full local gate, run as named stages with per-stage timing:
#
#   lint        mbtls-lint workspace invariants (sans-IO, secret
#               hygiene, panic-freedom, const-time, shard-isolation);
#               JSON-lines report to target/lint-report.jsonl
#   clippy      cargo clippy --workspace --all-targets -D warnings
#   build       cargo build --release --workspace
#   test        cargo test -q --workspace
#   telemetry   scripts/telemetry_smoke.sh
#   bench       scripts/bench_report.sh --smoke
#
# CI-equivalent; run before pushing.
#
#   --lint-strict   additionally (a) cap whole-file lint waivers at the
#                   committed baseline below and (b) ratchet findings
#                   against lint-baseline.jsonl, so a *new* finding
#                   fails even when it lands pre-annotated in a file
#                   that already carries allowances. Per-line
#                   `lint:allow` annotations are always permitted for
#                   findings already in the baseline; file-level
#                   `lint:allow-file` opt-outs may only shrink. After a
#                   deliberate, reviewed addition, regenerate the
#                   baseline by copying target/lint-report.jsonl over
#                   lint-baseline.jsonl in the same change.
set -euo pipefail
cd "$(dirname "$0")/.."

# No file-level waivers remain: the last one (the const-time opt-out
# in crates/crypto/src/aes_ref.rs) was retired when the reference AES
# oracle moved behind `cfg(any(test, feature = "reference-oracle"))`
# and the linter learned to skip file-level test-gated modules.
FILE_WAIVER_BASELINE=0

LINT_ARGS=(--json target/lint-report.jsonl)
if [[ "${1:-}" == "--lint-strict" ]]; then
    LINT_ARGS+=(--max-file-waivers "$FILE_WAIVER_BASELINE" --baseline lint-baseline.jsonl)
    shift
fi

# Run one named stage, timing it so slow stages are visible in CI
# logs without profiling runs.
stage() {
    local name=$1
    shift
    local start=$SECONDS
    echo "--- stage: $name"
    "$@"
    echo "--- stage: $name ok ($((SECONDS - start))s)"
}

mkdir -p target
stage lint      cargo run -q -p mbtls-lint --release -- "${LINT_ARGS[@]}"
stage clippy    cargo clippy --workspace --all-targets -- -D warnings
stage build     cargo build --release --workspace
stage test      cargo test -q --workspace
stage telemetry scripts/telemetry_smoke.sh
# Bench-reporter smoke: proves BENCH_dataplane.json (data-plane),
# BENCH_scale.json (session-host capacity), BENCH_handshake.json
# (handshake fast path), BENCH_chain.json (read-only forward /
# service chains), and BENCH_auth.json (middlebox-authorization
# comparison) can be produced and are well-formed. Numbers from
# this run are noisy by design; the committed artifacts come from a
# full `scripts/bench_report.sh` run.
stage bench     scripts/bench_report.sh --smoke

echo "all checks passed"

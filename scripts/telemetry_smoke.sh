#!/usr/bin/env bash
# Telemetry smoke test: run one seeded mbTLS session over the network
# simulator with a JsonLinesSink attached and check that
#   1. every emitted line parses as a JSON object,
#   2. the trace is identical when the same seed is replayed,
#   3. the trace carries the expected protocol phases.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-0x7E1E}"
OUT="$(mktemp)"
OUT2="$(mktemp)"
trap 'rm -f "$OUT" "$OUT2"' EXIT

# The bin itself validates each line with validate_json_line and
# exits nonzero on the first malformed one.
cargo run -q --release -p mbtls-bench --bin telemetry_trace "$SEED" > "$OUT"
cargo run -q --release -p mbtls-bench --bin telemetry_trace "$SEED" > "$OUT2"

if ! cmp -s "$OUT" "$OUT2"; then
    echo "FAIL: identical seeds produced different traces" >&2
    diff "$OUT" "$OUT2" | head >&2
    exit 1
fi

for phase in session_start session_handshake_done session_transfer_done \
             client_hello_sent handshake_complete key_delivery; do
    if ! grep -q "\"$phase\"" "$OUT"; then
        echo "FAIL: trace is missing $phase" >&2
        exit 1
    fi
done

echo "OK: $(wc -l < "$OUT") JSON lines, deterministic under seed $SEED"

//! Offline vendored stub of the tiny `rand` API surface this
//! workspace uses: `rngs::StdRng`, `RngCore`, and `SeedableRng`.
//!
//! The container building this repository has no network access to
//! crates.io, so the workspace supplies its own implementation behind
//! the same names. `StdRng` here is a ChaCha20-based generator: the
//! byte stream differs from upstream `rand`'s `StdRng`, but every
//! consumer in this workspace only requires determinism from a seed,
//! never a specific stream.

#![warn(missing_docs)]

/// The core RNG interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded via SplitMix64, matching
    /// the upstream trait's documented behaviour of deriving the full
    /// seed deterministically).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Build from OS entropy. The sandboxed build has no OS entropy
    /// source guarantee, so this mixes the current time and an
    /// allocation address — adequate for the non-reproducible
    /// convenience path, not for production key generation.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        let probe = Box::new(0u8);
        let addr = &*probe as *const u8 as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(32))
    }
}

/// RNG namespace (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A ChaCha20-based deterministic generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        /// Bytes of `buf` already handed out.
        used: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            self.buf = chacha20_block(&self.key, self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.used = 0;
        }

        fn take(&mut self, n: usize) -> &[u8] {
            if self.used + n > 64 {
                self.refill();
            }
            let out = &self.buf[self.used..self.used + n];
            self.used += n;
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            }
            let mut rng = StdRng {
                key,
                counter: 0,
                buf: [0u8; 64],
                used: 64,
            };
            rng.refill();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            u32::from_le_bytes(self.take(4).try_into().unwrap())
        }

        fn next_u64(&mut self) -> u64 {
            u64::from_le_bytes(self.take(8).try_into().unwrap())
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                if self.used == 64 {
                    self.refill();
                }
                let n = (dest.len() - filled).min(64 - self.used);
                dest[filled..filled + n].copy_from_slice(&self.buf[self.used..self.used + n]);
                self.used += n;
                filled += n;
            }
        }
    }

    /// One ChaCha20 block (RFC 8439) for `key` at `counter`, with a
    /// zero nonce — the stream position is carried entirely in the
    /// 64-bit counter, which is ample for a test RNG.
    fn chacha20_block(key: &[u32; 8], counter: u64) -> [u8; 64] {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let mut w = state;

        #[inline(always)]
        fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            w[a] = w[a].wrapping_add(w[b]);
            w[d] = (w[d] ^ w[a]).rotate_left(16);
            w[c] = w[c].wrapping_add(w[d]);
            w[b] = (w[b] ^ w[c]).rotate_left(12);
            w[a] = w[a].wrapping_add(w[b]);
            w[d] = (w[d] ^ w[a]).rotate_left(8);
            w[c] = w[c].wrapping_add(w[d]);
            w[b] = (w[b] ^ w[c]).rotate_left(7);
        }

        for _ in 0..10 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let v = w[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut x = [0u8; 100];
        let mut y = [0u8; 100];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha20_rfc8439_sanity() {
        // The keystream must not be trivially biased: bytes over a
        // long pull should cover most of the value space.
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 4096];
        rng.fill_bytes(&mut buf);
        let mut seen = [false; 256];
        for &b in &buf {
            seen[b as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}

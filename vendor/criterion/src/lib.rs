//! Offline vendored stub of the `criterion` API surface this
//! workspace uses.
//!
//! The build container cannot reach crates.io, so the bench targets
//! link against this minimal harness instead. It measures wall-clock
//! time with an adaptive iteration count and prints a one-line
//! mean-per-iteration (plus throughput when declared) per benchmark —
//! no statistical analysis, plots, or baselines. The API is
//! call-compatible with the subset the `benches/` files use.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Declared per-iteration workload, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's input parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.mean_per_iter();
        let mut line = format!(
            "{}/{}: {} per iter ({} iters)",
            self.name,
            id.0,
            fmt_duration(per_iter),
            bencher.total_iters
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Bytes(b) => (b, "B"),
                Throughput::Elements(e) => (e, "elem"),
            };
            if per_iter > Duration::ZERO {
                let rate = count as f64 / per_iter.as_secs_f64();
                line.push_str(&format!(", {:.1} M{}/s", rate / 1e6, unit));
            }
        }
        println!("{line}");
    }
}

/// Times a closure over an adaptively chosen number of iterations.
pub struct Bencher {
    sample_size: usize,
    total_iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            total_iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Measure `f`. A calibration pass picks an iteration count that
    /// keeps total measurement time near 100 ms regardless of the
    /// routine's cost, bounded by the group's sample size for slow
    /// routines.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: one untimed warm-up, then time a single call.
        std::hint::black_box(f());
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let iters = iters.min(self.sample_size.max(1) as u64 * 10);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.total_iters = iters;
    }

    fn mean_per_iter(&self) -> Duration {
        if self.total_iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.total_iters as u32
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(64));
        let mut count = 0u64;
        group.bench_function("add", |b| b.iter(|| count = count.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::from_parameter(4096), &4096usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}

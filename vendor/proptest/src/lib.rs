//! Offline vendored stub of the `proptest` API surface this workspace
//! uses.
//!
//! The build container has no route to crates.io, so this crate
//! supplies the same names the tests import: `Strategy`, `any`,
//! `proptest::collection::vec`, `proptest::array::uniformN`,
//! `prop::sample::Index`, regex-subset string strategies, and the
//! `proptest!` / `prop_assert!` family of macros.
//!
//! It is a *generator*, not a shrinker: each property runs a fixed
//! number of deterministically seeded cases (seeded from the test's
//! module path and name), and failures surface as ordinary panics
//! with the failing inputs printed by the assertion itself. That is a
//! weaker debugging experience than upstream proptest but an
//! identical pass/fail contract for CI.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case runner configuration and RNG.

    /// Runner configuration (subset of upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the from-scratch crypto in
            // this workspace makes debug-mode cases expensive, so the
            // offline stub trims the default while keeping per-test
            // overrides (`with_cases`) intact.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — a tiny deterministic RNG for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over a string — used by the `proptest!` macro to derive
    /// a stable per-test seed from the test's path.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;

    /// A value generator (subset of upstream `Strategy`: generation
    /// only, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

/// Types with a canonical "any value" strategy (subset of upstream
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The strategy returned by the `uniformN` constructors.
    pub struct ArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// A 12-element array of values from `element`.
    pub fn uniform12<S: Strategy>(element: S) -> ArrayStrategy<S, 12> {
        ArrayStrategy(element)
    }

    /// A 32-element array of values from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> ArrayStrategy<S, 32> {
        ArrayStrategy(element)
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// A stand-in for "an index into a collection whose size is not
    /// yet known": stores a unit-interval position and projects it
    /// onto `[0, len)` on demand.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Index(f64);

    impl Index {
        /// Project onto `[0, len)`. Panics if `len == 0`, matching
        /// upstream behaviour.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.unit_f64())
        }
    }
}

mod regex_subset {
    //! A generator for the small regex dialect the workspace's string
    //! strategies use: literal characters, character classes with
    //! ranges and `&&[^...]` subtraction, and `{m}` / `{m,n}`
    //! repetition counts.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    enum Piece {
        Literal(char),
        Class { alphabet: Vec<char>, min: usize, max: usize },
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        // `chars` is positioned just after the opening '['.
        let mut include: Vec<char> = Vec::new();
        let mut exclude: Vec<char> = Vec::new();
        let mut subtracting = false;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '&' if chars.peek() == Some(&'&') => {
                    // `&&[^...]` — class subtraction.
                    chars.next(); // second '&'
                    assert_eq!(chars.next(), Some('['), "expected [ after && in class");
                    assert_eq!(chars.next(), Some('^'), "only negated subtraction supported");
                    subtracting = true;
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    let lit = match esc {
                        'r' => '\r',
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    };
                    if subtracting { exclude.push(lit) } else { include.push(lit) }
                }
                first => {
                    // Range `a-z` when '-' is followed by a non-']'.
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next(); // '-'
                        match look.peek() {
                            Some(&end) if end != ']' => {
                                chars.next(); // '-'
                                chars.next(); // end
                                let target: &mut Vec<char> =
                                    if subtracting { &mut exclude } else { &mut include };
                                let mut ch = first;
                                loop {
                                    target.push(ch);
                                    if ch >= end {
                                        break;
                                    }
                                    ch = char::from_u32(ch as u32 + 1).unwrap();
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    if subtracting { exclude.push(first) } else { include.push(first) }
                }
            }
        }
        include.retain(|c| !exclude.contains(c));
        assert!(!include.is_empty(), "empty character class");
        include
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let base = match c {
                '[' => Piece::Class { alphabet: parse_class(&mut chars), min: 1, max: 1 },
                '\\' => Piece::Literal(match chars.next().expect("dangling escape") {
                    'r' => '\r',
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }),
                lit => Piece::Literal(lit),
            };
            // Optional `{m}` / `{m,n}` quantifier.
            if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = spec.parse().unwrap();
                        (m, m)
                    }
                };
                let alphabet = match base {
                    Piece::Class { alphabet, .. } => alphabet,
                    Piece::Literal(l) => vec![l],
                };
                pieces.push(Piece::Class { alphabet, min, max });
            } else {
                pieces.push(base);
            }
        }
        pieces
    }

    fn generate_from(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            match piece {
                Piece::Literal(c) => out.push(c),
                Piece::Class { alphabet, min, max } => {
                    let span = (max - min) as u64;
                    let n = min + rng.below(span + 1) as usize;
                    for _ in 0..n {
                        out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from(self, rng)
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};

    /// Module-path alias mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{array, collection, sample, strategy};
    }
}

/// Assert a condition inside a property (panics with the formatted
/// message on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` body
/// runs `cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            const __SEED: u64 = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __SEED ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_valid_strings() {
        let mut rng = crate::test_runner::TestRng::new(5);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Za-z][A-Za-z0-9-]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let v = Strategy::generate(&"[ -~&&[^\r\n]]{0,40}", &mut rng);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
            let t = Strategy::generate(&"/[a-z0-9/._-]{0,30}", &mut rng);
            assert!(t.starts_with('/'));
        }
    }

    proptest! {
        /// The macro itself: args bind, multiple properties coexist.
        #[test]
        fn macro_smoke(x in 1u8..=255, v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn tuples_and_map(pair in (any::<u16>(), 0u64..50).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!(pair <= u16::MAX as u64 + 49);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_override_applies(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(10) < 10);
        }
    }
}

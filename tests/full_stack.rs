//! Cross-crate integration: the entire stack — crypto, PKI, SGX,
//! netsim, TLS, mbTLS, HTTP, middlebox apps — in single scenarios.

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, NetChain, Relay};
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_http::message::{Request, RequestParser, Response, ResponseParser};
use mbtls_mboxes::ids::IdsMode;
use mbtls_mboxes::{HeaderInsertionProxy, IntrusionDetector};
use mbtls_netsim::time::Duration;
use mbtls_netsim::{FaultConfig, Network};

/// A full "enterprise" deployment: the client's traffic traverses an
/// attested IDS and an attested header proxy (both client-side),
/// over lossy virtual links, to an mbTLS server. HTTP flows through;
/// the IDS sees plaintext and blocks an attack; headers get inserted;
/// everything survives 1% packet loss.
#[test]
fn enterprise_chain_over_lossy_network() {
    let tb = Testbed::new(0xE57A);
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(1),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(2));
    let sigs: [&[u8]; 1] = [b"' OR 1=1 --"];
    let ids = Middlebox::with_processor(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(3),
        Box::new(IntrusionDetector::new(&sigs, IdsMode::Block)),
    );
    let proxy = Middlebox::with_processor(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(4),
        Box::new(HeaderInsertionProxy::new("Via", "1.1 enterprise-proxy")),
    );
    // Proxy first (parses/serializes HTTP), IDS innermost so its
    // block-page replacement goes straight to the server.
    let middles: Vec<Box<dyn Relay>> = vec![Box::new(proxy), Box::new(ids)];
    let chain = Chain::new(Box::new(client), middles, Box::new(server));

    let mut net = Network::new(0xE57A);
    let latencies = vec![Duration::from_millis(3); 3];
    let faults = vec![FaultConfig::lossy(0.01); 3];
    let mut nc = NetChain::new(&mut net, chain, &latencies, &faults);
    nc.run_until(Duration::from_secs(60), |c| {
        c.client.ready() && c.server.ready()
    })
    .expect("handshake over lossy links");

    // Clean request: passes the IDS, gains the Via header.
    nc.chain
        .client
        .send_app(&Request::get("/report", "server.example").encode())
        .unwrap();
    let mut got = Vec::new();
    for _ in 0..500 {
        let progressed = nc.tick().expect("tick");
        got.extend(nc.chain.server.recv_app());
        if got.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if !progressed {
            break;
        }
    }
    let mut parser = RequestParser::new();
    parser.feed(&got);
    let req = parser.next_request().unwrap().expect("request parsed");
    assert_eq!(req.target, "/report");
    assert_eq!(req.header("Via"), Some("1.1 enterprise-proxy"));

    // Attack request: a well-formed POST whose body carries the
    // signature; the IDS replaces the payload before the origin.
    let attack = Request {
        method: "POST".into(),
        target: "/login".into(),
        headers: vec![("Host".into(), "server.example".into())],
        body: b"user=x' OR 1=1 --&pw=y".to_vec(),
    };
    nc.chain.client.send_app(&attack.encode()).unwrap();
    let mut got = Vec::new();
    for _ in 0..500 {
        let progressed = nc.tick().expect("tick");
        got.extend(nc.chain.server.recv_app());
        if got.ends_with(b"]") || !progressed {
            break;
        }
    }
    assert_eq!(got, b"[blocked by IDS]");
}

/// Client-side and server-side middleboxes in one session: a legacy
/// client, a filtering box announcing to the server, plus the full
/// HTTP request/response cycle with body rewriting on the way back.
#[test]
fn mixed_http_roundtrip() {
    use mbtls_core::driver::{Endpoint, LegacyClient};
    let tb = Testbed::new(0x111);
    let mut rng = CryptoRng::from_seed(5);
    let mut client = LegacyClient::new(
        mbtls_tls::ClientConnection::new(
            Arc::new(mbtls_tls::config::ClientConfig::new(tb.server_trust.clone())),
            "server.example",
            &mut rng,
        ),
        rng.fork(),
    );
    let mut server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(6));
    let mut mb = Middlebox::with_processor(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(7),
        Box::new(HeaderInsertionProxy::new("X-Edge", "pop-syd").tagging_responses()),
    );

    for _ in 0..60 {
        let b = client.take();
        mb.feed_from_client(&b).unwrap();
        let b = mb.take_toward_server();
        server.feed_incoming(&b).unwrap();
        let b = server.take_outgoing();
        mb.feed_from_server(&b).unwrap();
        let b = mb.take_toward_client();
        client.feed(&b).unwrap();
        if client.ready() && server.is_ready() && mb.has_keys() {
            break;
        }
    }
    assert!(mb.has_keys(), "server-side middlebox joined");

    // Request gains X-Edge; response gains X-Proxied.
    client
        .send_app(&Request::get("/asset.js", "server.example").encode())
        .unwrap();
    let mut got = Vec::new();
    for _ in 0..20 {
        let b = client.take();
        mb.feed_from_client(&b).unwrap();
        let b = mb.take_toward_server();
        server.feed_incoming(&b).unwrap();
        got.extend(server.recv());
        if got.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let mut parser = RequestParser::new();
    parser.feed(&got);
    let req = parser.next_request().unwrap().expect("request");
    assert_eq!(req.header("X-Edge"), Some("pop-syd"));

    server
        .send(&Response::ok(b"console.log('hi')").encode())
        .unwrap();
    let mut got = Vec::new();
    for _ in 0..20 {
        let b = server.take_outgoing();
        mb.feed_from_server(&b).unwrap();
        let b = mb.take_toward_client();
        client.feed(&b).unwrap();
        got.extend(client.recv_app());
        if !got.is_empty() {
            break;
        }
    }
    let mut parser = ResponseParser::new();
    parser.feed(&got);
    let resp = parser.next_response().unwrap().expect("response");
    assert_eq!(resp.header("X-Proxied"), Some("1"));
    assert_eq!(resp.body, b"console.log('hi')");
}

/// The whole stack across 5 parties: mbTLS client, 3 middleboxes,
/// mbTLS server; 1 MB of data each way; per-hop ciphertexts all
/// distinct.
#[test]
fn five_party_megabyte_transfer() {
    let tb = Testbed::new(0x5EAF);
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(11),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(12));
    let middles: Vec<Box<dyn Relay>> = (0..3)
        .map(|i| {
            Box::new(Middlebox::new(
                tb.middlebox_config(&tb.mbox_code),
                CryptoRng::from_seed(20 + i),
            )) as Box<dyn Relay>
        })
        .collect();
    let mut chain = Chain::new(Box::new(client), middles, Box::new(server));
    chain.run_handshake().expect("5-party handshake");

    let blob: Vec<u8> = (0..1_000_000u32).map(|i| (i % 249) as u8).collect();
    let got = chain.client_to_server(&blob, blob.len()).unwrap();
    assert_eq!(got, blob);
    let got = chain.server_to_client(&blob, blob.len()).unwrap();
    assert_eq!(got, blob);
}

//! Cross-crate adversarial scenarios over the network simulator:
//! the paper's §3.1 on-path adversary exercising its capabilities
//! against live mbTLS sessions (complements the unit-level attacks in
//! `mbtls-core::attacks`).

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_netsim::net::{Dir, Network};
use mbtls_netsim::time::{Duration, SimTime};

/// Drive a two-party session over one netsim connection until both
/// ready; returns the network + handles for adversarial follow-up.
struct LiveSession {
    net: Network,
    client: MbClientSession,
    server: MbServerSession,
    conn: mbtls_netsim::net::ConnId,
    client_node: mbtls_netsim::net::NodeId,
    server_node: mbtls_netsim::net::NodeId,
}

fn establish(seed: u64) -> LiveSession {
    let tb = Testbed::new(seed);
    let mut net = Network::new(seed);
    let client_node = net.add_node("client");
    let server_node = net.add_node("server");
    let conn = net.connect_with(
        client_node,
        server_node,
        Duration::from_millis(5),
        None,
        mbtls_netsim::FaultConfig::none(),
    );
    let mut client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(seed + 1),
    );
    let mut server =
        MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(seed + 2));

    for _ in 0..100 {
        let b = client.take_outgoing();
        if !b.is_empty() {
            net.send(conn, client_node, &b).unwrap();
        }
        let b = server.take_outgoing();
        if !b.is_empty() {
            net.send(conn, server_node, &b).unwrap();
        }
        if let Some(t) = net.next_event_time() {
            net.advance_to(t);
        }
        let b = net.recv(conn, server_node).unwrap();
        if !b.is_empty() {
            server.feed_incoming(&b).unwrap();
        }
        let b = net.recv(conn, client_node).unwrap();
        if !b.is_empty() {
            client.feed_incoming(&b).unwrap();
        }
        if client.is_ready() && server.is_ready() {
            break;
        }
    }
    assert!(client.is_ready() && server.is_ready(), "session established");
    LiveSession {
        net,
        client,
        server,
        conn,
        client_node,
        server_node,
    }
}

#[test]
fn tap_sees_only_ciphertext() {
    let mut s = establish(0xAD01);
    s.net.tap(s.conn, Dir::AtoB);
    s.client.send(b"SECRET-SESSION-PAYLOAD").unwrap();
    let b = s.client.take_outgoing();
    s.net.send(s.conn, s.client_node, &b).unwrap();
    s.net.advance_to(SimTime(10_000_000_000));
    let b = s.net.recv(s.conn, s.server_node).unwrap();
    s.server.feed_incoming(&b).unwrap();
    assert_eq!(s.server.recv(), b"SECRET-SESSION-PAYLOAD");
    // The adversary's capture never contains the plaintext.
    for (_, chunk) in s.net.tap_contents(s.conn, Dir::AtoB) {
        assert!(
            !chunk.windows(6).any(|w| w == b"SECRET"),
            "plaintext leaked to the wire"
        );
    }
}

#[test]
fn in_flight_tamper_detected_by_receiver() {
    let mut s = establish(0xAD02);
    s.net.tamper_next(s.conn, Dir::AtoB, |data| {
        let n = data.len();
        data[n - 2] ^= 0x01;
    });
    s.client.send(b"integrity matters").unwrap();
    let b = s.client.take_outgoing();
    s.net.send(s.conn, s.client_node, &b).unwrap();
    s.net.advance_to(SimTime(10_000_000_000));
    let b = s.net.recv(s.conn, s.server_node).unwrap();
    let result = s.server.feed_incoming(&b);
    assert!(result.is_err(), "tampered record must fail authentication");
}

#[test]
fn injected_garbage_kills_session_not_process() {
    let mut s = establish(0xAD03);
    // The adversary injects a syntactically valid record with garbage
    // ciphertext into the stream.
    let mut forged = vec![23u8, 3, 3, 0, 32];
    forged.extend(vec![0xEE; 32]);
    s.net.inject(s.conn, Dir::AtoB, &forged).unwrap();
    s.net.advance_to(SimTime(10_000_000_000));
    let b = s.net.recv(s.conn, s.server_node).unwrap();
    let result = s.server.feed_incoming(&b);
    assert!(result.is_err(), "forged record rejected");
    // Subsequent legitimate client data is also rejected (the session
    // is dead — fail-closed, no silent recovery that could mask the
    // injection).
    s.client.send(b"after the attack").unwrap();
    let b = s.client.take_outgoing();
    s.net.send(s.conn, s.client_node, &b).unwrap();
    s.net.advance_to(SimTime(20_000_000_000));
    let b = s.net.recv(s.conn, s.server_node).unwrap();
    assert!(s.server.feed_incoming(&b).is_err());
}

#[test]
fn connection_reset_surfaces_cleanly() {
    let mut s = establish(0xAD04);
    s.net.reset(s.conn);
    s.client.send(b"into the void").unwrap();
    let b = s.client.take_outgoing();
    let send_result = s.net.send(s.conn, s.client_node, &b);
    assert!(send_result.is_err(), "writes to a reset connection fail");
}

#[test]
fn observed_handshake_reveals_middlebox_support_but_not_keys() {
    // The MiddleboxSupport extension is visible in the clear (like any
    // ClientHello extension); the adversary learns the client speaks
    // mbTLS — by design — but nothing else.
    let tb = Testbed::new(0xAD05);
    let mut net = Network::new(0xAD05);
    let c = net.add_node("client");
    let sv = net.add_node("server");
    let conn = net.connect(c, sv);
    net.tap(conn, Dir::AtoB);
    let mut client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(0xAD06),
    );
    let hello_bytes = client.take_outgoing();
    net.send(conn, c, &hello_bytes).unwrap();
    let tapped = net.tap_contents(conn, Dir::AtoB);
    let all: Vec<u8> = tapped.into_iter().flat_map(|(_, d)| d).collect();
    // Extension code point 0xFF77 (MiddleboxSupport) appears.
    assert!(
        all.windows(2).any(|w| w == [0xFF, 0x77]),
        "extension visible to on-path observers (enables discovery)"
    );
}

//! The paper's §5 prototype, reproduced: a simple mbTLS HTTP proxy
//! performing header insertion, serving a client that fetches pages
//! from a web server — with the proxy's code identity verified by
//! remote attestation before it is allowed into the session.
//!
//! Run with: `cargo run -p mbtls-bench --example http_proxy`

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_http::message::{Request, RequestParser, Response};
use mbtls_mboxes::HeaderInsertionProxy;

fn main() {
    let tb = Testbed::new(7);
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(71),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(72));
    let proxy = Middlebox::with_processor(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(73),
        Box::new(HeaderInsertionProxy::new("Via", "1.1 mbtls-proxy").tagging_responses()),
    );

    let mut chain = Chain::new(Box::new(client), vec![Box::new(proxy)], Box::new(server));
    chain.run_handshake().expect("handshake");
    println!("session established through the attested HTTP proxy\n");

    // Fetch three pages; a tiny HTTP server loop answers each.
    for path in ["/", "/news", "/about"] {
        let wire = Request::get(path, "server.example").encode();
        let server_got = chain
            .client_to_server(&wire, wire.len() + 16)
            .expect("request");
        let mut parser = RequestParser::new();
        parser.feed(&server_got);
        let req = parser.next_request().unwrap().expect("complete request");
        println!(
            "server saw: {} {} (Via: {})",
            req.method,
            req.target,
            req.header("Via").unwrap_or("<none — proxy did not run!>")
        );
        assert_eq!(req.header("Via"), Some("1.1 mbtls-proxy"));

        let body = format!("<html>content of {}</html>", req.target);
        let resp = Response::ok(body.as_bytes()).encode();
        let client_got = chain
            .server_to_client(&resp, resp.len() + 16)
            .expect("response");
        let text = String::from_utf8_lossy(&client_got);
        let tagged = text.contains("X-Proxied: 1");
        println!(
            "client got {} bytes for {path} (X-Proxied header present: {tagged})\n",
            client_got.len()
        );
    }
    println!("done: every request carried the proxy's Via header, end-to-end encrypted per hop");
}

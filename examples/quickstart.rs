//! Quickstart: an mbTLS session between a client and a server with
//! one on-path middlebox that joins in-band, attests its code, and
//! processes application data — the whole protocol in ~100 lines.
//!
//! Run with: `cargo run -p mbtls-bench --example quickstart`

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;

fn main() {
    // 1. Environment: a web PKI, a middlebox-service PKI, and a
    //    simulated SGX attestation service. `Testbed` bundles the
    //    boilerplate; see its source for the individual pieces.
    let tb = Testbed::new(42);

    // 2. The three parties. The client requires middleboxes to attest
    //    the published "mbtls-proxy v1.0" enclave measurement (set up
    //    inside Testbed::client_config).
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(1),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(2));
    let middlebox = Middlebox::new(tb.middlebox_config(&tb.mbox_code), CryptoRng::from_seed(3));

    // 3. Wire them together over in-memory pipes and run the
    //    handshake: primary TLS client↔server, secondary TLS
    //    client↔middlebox (discovered in-band via the MiddleboxSupport
    //    extension), then per-hop key distribution.
    let mut chain = Chain::new(Box::new(client), vec![Box::new(middlebox)], Box::new(server));
    chain.run_handshake().expect("mbTLS handshake");
    println!("handshake complete: client and server ready, middlebox keyed");

    // 4. Application data flows through the middlebox, re-encrypted
    //    under a unique key on every hop (P1C/P4).
    let request = b"GET /hello HTTP/1.1\r\nHost: server.example\r\n\r\n";
    let got = chain
        .client_to_server(request, request.len())
        .expect("request delivery");
    println!("server received {} bytes: {:?}", got.len(), String::from_utf8_lossy(&got));

    let response = b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\nhello mbTLS!";
    let got = chain
        .server_to_client(response, response.len())
        .expect("response delivery");
    println!("client received {} bytes: {:?}", got.len(), String::from_utf8_lossy(&got));
}

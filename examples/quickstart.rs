//! Quickstart: an mbTLS session between a client and a server with
//! one on-path middlebox that joins in-band, attests its code, and
//! processes application data — the whole protocol in ~100 lines.
//!
//! Run with: `cargo run -p mbtls-bench --example quickstart`

use std::sync::Arc;

use mbtls_core::attacks::{PakAttestor, Testbed};
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_core::{MbClientConfig, MbServerConfig, MiddleboxConfig};
use mbtls_crypto::rng::CryptoRng;
use mbtls_telemetry::{EventKind, Recorder};
use mbtls_tls::config::AttestationPolicy;

fn main() {
    // 1. Environment: a web PKI, a middlebox-service PKI, and a
    //    simulated SGX attestation service. `Testbed` bundles the
    //    boilerplate; see its source for the individual pieces.
    let tb = Testbed::new(42);

    // A telemetry recorder captures every protocol event for
    // inspection after the session (step 5).
    let recorder = Recorder::new();
    let sink = recorder.sink();

    // 2. The three parties, configured through the validating
    //    builders. The client requires middleboxes to attest the
    //    published "mbtls-proxy v1.0" enclave measurement.
    let attestation = AttestationPolicy {
        root: tb.attestation_root,
        acceptable: vec![tb.mbox_code.measure()],
    };
    let client_cfg =
        MbClientConfig::builder(tb.server_trust.clone(), tb.middlebox_trust.clone())
            .middlebox_attestation(attestation.clone())
            .telemetry(sink.clone())
            .build()
            .expect("client config");
    let server_tls = mbtls_tls::config::ServerConfig::new(tb.server_key.clone(), [0x7E; 32]);
    let server_cfg = MbServerConfig::builder(server_tls, tb.middlebox_trust.clone())
        .middlebox_attestation(attestation)
        .telemetry(sink.clone())
        .build()
        .expect("server config");
    let mbox_cfg = MiddleboxConfig::builder("proxy.msp.example", tb.mbox_key.clone())
        .attestor(Arc::new(PakAttestor {
            pak: tb.pak.clone(),
            measurement: tb.mbox_code.measure(),
        }))
        .telemetry(sink, 0)
        .build()
        .expect("middlebox config");

    let client = MbClientSession::new(Arc::new(client_cfg), "server.example", CryptoRng::from_seed(1));
    let server = MbServerSession::new(Arc::new(server_cfg), CryptoRng::from_seed(2));
    let middlebox = Middlebox::new(mbox_cfg, CryptoRng::from_seed(3));

    // 3. Wire them together over in-memory pipes and run the
    //    handshake: primary TLS client↔server, secondary TLS
    //    client↔middlebox (discovered in-band via the MiddleboxSupport
    //    extension), then per-hop key distribution.
    let mut chain = Chain::new(Box::new(client), vec![Box::new(middlebox)], Box::new(server));
    chain.run_handshake().expect("mbTLS handshake");
    println!("handshake complete: client and server ready, middlebox keyed");

    // 4. Application data flows through the middlebox, re-encrypted
    //    under a unique key on every hop (P1C/P4).
    let request = b"GET /hello HTTP/1.1\r\nHost: server.example\r\n\r\n";
    let got = chain
        .client_to_server(request, request.len())
        .expect("request delivery");
    println!("server received {} bytes: {:?}", got.len(), String::from_utf8_lossy(&got));

    let response = b"HTTP/1.1 200 OK\r\nContent-Length: 12\r\n\r\nhello mbTLS!";
    let got = chain
        .server_to_client(response, response.len())
        .expect("response delivery");
    println!("client received {} bytes: {:?}", got.len(), String::from_utf8_lossy(&got));

    // 5. The telemetry trace shows what just happened, per party.
    let trace = recorder.take();
    let deliveries = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::KeyDelivery { .. }))
        .count();
    let records = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RecordEncrypt { .. }))
        .count();
    println!(
        "trace: {} events, {deliveries} key deliveries, {records} per-hop record encryptions",
        trace.len()
    );
}

//! A Flywheel-style compression proxy (the paper's motivating
//! "compression proxy" middlebox class, §1): the proxy compresses
//! response bodies in flight; the client transparently decompresses.
//! This is arbitrary computation over plaintext — the workload that
//! distinguishes mbTLS from pattern-matching-only schemes (§2.2).
//!
//! Run with: `cargo run -p mbtls-bench --example flywheel_compression`

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_http::message::{Request, Response};
use mbtls_mboxes::{CompressionProxy, DecompressingClient};

fn main() {
    let tb = Testbed::new(12);
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(121),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(122));
    let proxy = Middlebox::with_processor(
        tb.middlebox_config(&tb.mbox_code),
        CryptoRng::from_seed(123),
        Box::new(CompressionProxy::new(256)),
    );
    let mut chain = Chain::new(Box::new(client), vec![Box::new(proxy)], Box::new(server));
    chain.run_handshake().expect("handshake");
    println!("session established through the compression proxy\n");
    println!("{:<12} {:>10} {:>12} {:>8}", "page", "original", "over-the-air", "saved");

    let mut decompressor = DecompressingClient::new();
    for (path, repeat) in [("/small", 5usize), ("/medium", 80), ("/large", 600)] {
        let req = Request::get(path, "server.example").encode();
        chain.client_to_server(&req, req.len()).expect("request");

        let body: Vec<u8> = (0..repeat)
            .flat_map(|i| format!("<tr><td>row {i}</td><td>data-{i}</td></tr>\n").into_bytes())
            .collect();
        let original_len = body.len();
        let resp = Response::ok(&body).encode();
        chain.server.send_app(&resp).expect("send response");

        let mut wire_bytes = 0usize;
        let mut decoded = Vec::new();
        for _ in 0..100 {
            chain.pump().expect("pump");
            let bytes = chain.client.recv_app();
            wire_bytes += bytes.len();
            if !bytes.is_empty() {
                decoded.extend(decompressor.feed(&bytes));
            }
            if !decoded.is_empty() {
                break;
            }
        }
        let got = decoded.pop().expect("response decoded");
        assert_eq!(got.body, body, "decompressed body matches the original");
        let saved = 100.0 * (1.0 - wire_bytes as f64 / resp.len() as f64);
        println!(
            "{:<12} {:>9}B {:>11}B {:>7.1}%",
            path, original_len, wire_bytes, saved
        );
    }
    println!("\nbodies verified byte-identical after decompression");
}

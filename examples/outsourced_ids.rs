//! Outsourced middleboxes on untrusted infrastructure — the paper's
//! headline scenario. An intrusion-detection middlebox runs on a
//! third-party provider's machine inside a (simulated) SGX enclave:
//!
//! 1. the endpoints verify the IDS's *code identity* via remote
//!    attestation before giving it session keys (P3B), and
//! 2. the infrastructure provider, despite full control of the host,
//!    cannot read the session keys out of memory (P1A).
//!
//! Run with: `cargo run -p mbtls-bench --example outsourced_ids`

use std::sync::Arc;

use mbtls_core::attacks::Testbed;
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::Chain;
use mbtls_core::middlebox::Middlebox;
use mbtls_core::server::MbServerSession;
use mbtls_crypto::rng::CryptoRng;
use mbtls_mboxes::ids::IdsMode;
use mbtls_mboxes::IntrusionDetector;
use mbtls_sgx::{CodeIdentity, Enclave, HostInspector};

fn run_session(tb: &Testbed, code: &CodeIdentity, seed: u64) -> (bool, Vec<u8>) {
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(seed),
    );
    let server = MbServerSession::new(Arc::new(tb.server_config()), CryptoRng::from_seed(seed + 1));
    let sigs: [&[u8]; 2] = [b"DROP TABLE", b"/etc/passwd"];
    let ids = Middlebox::with_processor(
        tb.middlebox_config(code),
        CryptoRng::from_seed(seed + 2),
        Box::new(IntrusionDetector::new(&sigs, IdsMode::Block)),
    );
    let mut chain = Chain::new(Box::new(client), vec![Box::new(ids)], Box::new(server));
    chain.run_handshake().expect("handshake");
    let got = chain
        .client_to_server(b"id=1; DROP TABLE users;--", 16)
        .expect("delivery");
    let blocked = got == b"[blocked by IDS]";
    // Pull the middlebox back out to obtain its sensitive state.
    let mbox = chain.middles.pop().unwrap();
    drop(mbox); // state inspected via the enclave path below instead
    (blocked, got)
}

fn main() {
    let tb = Testbed::new(99);

    // --- 1. Attestation gate -------------------------------------
    println!("== code-identity verification (P3B) ==");
    let (blocked, _) = run_session(&tb, &tb.mbox_code, 990);
    println!("genuine IDS code:    joined session, attack blocked = {blocked}");
    assert!(blocked);

    let backdoored = CodeIdentity::new("mbtls-proxy", "1.0-backdoored", b"strong-ciphers-only");
    let (blocked, got) = run_session(&tb, &backdoored, 995);
    println!(
        "backdoored IDS code: refused keys (attestation mismatch); traffic passed unfiltered \
         end-to-end = {}",
        !blocked && got != b"[blocked by IDS]"
    );
    assert!(!blocked);

    // --- 2. The infrastructure provider's view (P1A) --------------
    println!("\n== host memory inspection by the infrastructure provider (P1A) ==");
    let mut rng = CryptoRng::from_seed(77);
    let mut svc = mbtls_sgx::AttestationService::new(&mut rng);
    let pak = svc.provision_platform(&mut rng);
    let mut platform = mbtls_sgx::Platform::new(pak, &mut rng);

    // Pretend these are the hop keys the IDS holds.
    let hop_keys = b"hop-keys:0123456789abcdef0123456789abcdef".to_vec();

    // Deployment A: plain process — keys land in ordinary memory.
    platform
        .memory
        .write_unprotected("ids-heap", hop_keys.clone());
    let inspector = HostInspector::new(&mut platform.memory);
    let found = !inspector.scan_for(b"hop-keys:").is_empty();
    println!("without enclave: provider memory scan finds keys = {found}");
    assert!(found);

    // Deployment B: inside an enclave on a fresh machine — the
    // provider sees only the encrypted page image.
    let pak2 = svc.provision_platform(&mut rng);
    let mut platform2 = mbtls_sgx::Platform::new(pak2, &mut rng);
    let _enclave = Enclave::create(&mut platform2, &tb.mbox_code.clone(), hop_keys);
    let inspector = HostInspector::new(&mut platform2.memory);
    let found = !inspector.scan_for(b"hop-keys:").is_empty();
    println!("with enclave:    provider memory scan finds keys = {found}");
    assert!(!found);

    println!("\noutsourcing works: the provider runs the box but never sees inside it");
}

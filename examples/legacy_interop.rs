//! Legacy interoperability (paper property P5, experiment §5.1): an
//! mbTLS client with an mbTLS proxy talks to *unmodified* TLS 1.2
//! servers, including one that enforces strict record handling.
//!
//! Run with: `cargo run -p mbtls-bench --example legacy_interop`

use std::sync::Arc;

use mbtls_core::attacks::{PakAttestor, Testbed};
use mbtls_core::client::MbClientSession;
use mbtls_core::driver::{Chain, LegacyServer};
use mbtls_core::middlebox::{Middlebox, MiddleboxConfig};
use mbtls_crypto::rng::CryptoRng;
use mbtls_tls::ServerConnection;

fn main() {
    let tb = Testbed::new(5);

    println!("== mbTLS client + mbTLS proxy → stock TLS 1.2 server ==");
    let client = MbClientSession::new(
        Arc::new(tb.client_config()),
        "server.example",
        CryptoRng::from_seed(51),
    );
    let proxy = Middlebox::new(tb.middlebox_config(&tb.mbox_code), CryptoRng::from_seed(52));
    let legacy = LegacyServer::new(
        ServerConnection::new(Arc::new(mbtls_tls::config::ServerConfig::new(
            tb.server_key.clone(),
            [5u8; 32],
        ))),
        CryptoRng::from_seed(53),
    );
    let mut chain = Chain::new(Box::new(client), vec![Box::new(proxy)], Box::new(legacy));
    chain.run_handshake().expect("handshake with legacy server");
    println!("handshake OK: the legacy server ignored the MiddleboxSupport extension");
    let got = chain
        .client_to_server(b"GET / HTTP/1.1\r\nHost: server.example\r\n\r\n", 10)
        .expect("request");
    println!("legacy server received the request ({} bytes) — bridge keys line up\n", got.len());

    println!("== legacy TLS client → mbTLS server with a server-side middlebox ==");
    let legacy_client = mbtls_core::driver::LegacyClient::new(
        mbtls_tls::ClientConnection::new(
            Arc::new(mbtls_tls::config::ClientConfig::new(tb.server_trust.clone())),
            "server.example",
            &mut CryptoRng::from_seed(54),
        ),
        CryptoRng::from_seed(55),
    );
    let announcer = Middlebox::new(tb.middlebox_config(&tb.mbox_code), CryptoRng::from_seed(56));
    let mb_server = mbtls_core::server::MbServerSession::new(
        Arc::new(tb.server_config()),
        CryptoRng::from_seed(57),
    );
    let mut chain = Chain::new(
        Box::new(legacy_client),
        vec![Box::new(announcer)],
        Box::new(mb_server),
    );
    chain.run_handshake().expect("handshake with legacy client");
    println!("handshake OK: middlebox announced itself and joined on the server side");
    let got = chain
        .client_to_server(b"hello from a 2008-era client", 28)
        .expect("request");
    println!("mbTLS server received: {:?}\n", String::from_utf8_lossy(&got));

    println!("== strict legacy server: announcement is fatal, client must retry ==");
    let mut strict_cfg =
        mbtls_tls::config::ServerConfig::new(tb.server_key.clone(), [5u8; 32]);
    strict_cfg.strict_unknown_records = true;
    let strict = LegacyServer::new(
        ServerConnection::new(Arc::new(strict_cfg)),
        CryptoRng::from_seed(58),
    );
    let legacy_client = mbtls_core::driver::LegacyClient::new(
        mbtls_tls::ClientConnection::new(
            Arc::new(mbtls_tls::config::ClientConfig::new(tb.server_trust.clone())),
            "server.example",
            &mut CryptoRng::from_seed(59),
        ),
        CryptoRng::from_seed(60),
    );
    let announcer = Middlebox::new(tb.middlebox_config(&tb.mbox_code), CryptoRng::from_seed(61));
    let mut chain = Chain::new(
        Box::new(legacy_client),
        vec![Box::new(announcer)],
        Box::new(strict),
    );
    let result = chain.run_handshake();
    println!("handshake failed as the paper predicts: {:?}", result.err().map(|e| e.to_string()));

    println!("\nretry with the announcement cached off:");
    let legacy_client = mbtls_core::driver::LegacyClient::new(
        mbtls_tls::ClientConnection::new(
            Arc::new(mbtls_tls::config::ClientConfig::new(tb.server_trust.clone())),
            "server.example",
            &mut CryptoRng::from_seed(62),
        ),
        CryptoRng::from_seed(63),
    );
    let cached_cfg = MiddleboxConfig::builder("proxy.msp.example", tb.mbox_key.clone())
        .attestor(Arc::new(PakAttestor {
            pak: tb.pak.clone(),
            measurement: tb.mbox_code.measure(),
        }))
        .cached_no_support(true) // the middlebox remembers
        .build()
        .expect("middlebox config");
    let quiet = Middlebox::new(cached_cfg, CryptoRng::from_seed(64));
    let mut strict_cfg =
        mbtls_tls::config::ServerConfig::new(tb.server_key.clone(), [5u8; 32]);
    strict_cfg.strict_unknown_records = true;
    let strict = LegacyServer::new(
        ServerConnection::new(Arc::new(strict_cfg)),
        CryptoRng::from_seed(65),
    );
    let mut chain = Chain::new(
        Box::new(legacy_client),
        vec![Box::new(quiet)],
        Box::new(strict),
    );
    chain.run_handshake().expect("retry succeeds");
    println!("retry OK: middlebox relayed silently");
}
